"""Regenerate Table 1: memory-bandwidth breakdown by data path."""

from repro.experiments import tab01_membw_breakdown


def test_tab01_membw_breakdown(regenerate):
    result = regenerate(tab01_membw_breakdown.run)
    write = result.data["write"]
    assert sum(write.values()) > 0.99  # shares cover all traffic

"""Regenerate Table 2: CPU composition of table-cache management."""

from repro.experiments import tab02_cpu_breakdown


def test_tab02_cpu_breakdown(regenerate):
    result = regenerate(tab02_cpu_breakdown.run)
    breakdown = result.data["breakdown"]
    assert (
        breakdown["table cache tree indexing"]
        > breakdown["table cache content access"]
    )

"""Regenerate §7.6: read and write-commit latency."""

from repro.experiments import latency


def test_latency(regenerate):
    result = regenerate(latency.run)
    assert result.data["fidr_us"] < result.data["baseline_us"]

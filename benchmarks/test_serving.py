"""Benchmark of the concurrent asyncio serving layer.

Not a paper figure — this tracks the Python serving stack's own
throughput: a fleet of pipelined clients driving one
:class:`~repro.net.aserver.AsyncProtocolServer` over real TCP sockets,
with every read verified byte-exact.  Reported numbers are the load
generator's client-side view (ops/s, MB/s, p50/p99 latency) plus the
server's own ``repro.stats/v1`` snapshot scraped over the wire with
the protocol's STATS op.
"""

import pytest

from repro.datared.compression import ModeledCompressor
from repro.systems.server import StorageServer, SystemKind
from repro.workloads.loadgen import LoadGenConfig, run_against


def build_storage(kind):
    return StorageServer.build(
        kind, num_buckets=4096, cache_lines=256,
        compressor=ModeledCompressor(0.5),
    )


@pytest.mark.parametrize("kind", [SystemKind.FIDR, SystemKind.BASELINE])
def test_serving_mixed_workload(regenerate, kind):
    """16 concurrent clients, 50/50 read/write mix, 4 workers."""
    config = LoadGenConfig(
        clients=16, ops_per_client=60, read_fraction=0.5,
        chunks_per_op=2, lbas_per_client=24, seed=1337,
    )

    def experiment():
        result = run_against(
            build_storage(kind), config, queue_depth=64, workers=4
        )
        assert result.verified_reads == result.read_ops
        return result

    result = regenerate(experiment)
    assert result.total_ops == 16 * 60
    assert result.throughput_ops > 0
    # The server-side numbers arrive as the scraped STATS snapshot —
    # the single stats schema every consumer shares.
    snapshot = result.server_stats
    assert snapshot is not None and snapshot["schema"] == "repro.stats/v1"
    gauges = snapshot["gauges"]
    assert gauges["engine.logical_bytes"] > 0
    assert 0.0 <= gauges["engine.dedup_ratio"] <= 1.0
    assert gauges["server.responses_sent"] >= result.total_ops


def test_serving_write_burst(regenerate):
    """Write-only burst against a small queue: exercises backpressure
    while measuring sustained ingest."""
    config = LoadGenConfig(
        clients=8, ops_per_client=80, read_fraction=0.0,
        chunks_per_op=4, lbas_per_client=32, seed=99,
    )

    def experiment():
        return run_against(
            build_storage(SystemKind.FIDR), config,
            queue_depth=8, workers=2,
        )

    result = regenerate(experiment)
    assert result.write_ops == 8 * 80
    snapshot = result.server_stats
    assert snapshot is not None
    assert snapshot["gauges"]["server.max_queue_depth"] <= 8

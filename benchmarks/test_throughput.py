"""Throughput baseline for the stage-split parallel data path.

Not a paper figure — this measures the software pipeline itself: batched
writes through :meth:`~repro.datared.dedup.DedupEngine.write_many` and
batched reads through the parallel decompression path, serial versus a
:class:`~repro.parallel.StagePool` at 1/2/4/8 worker threads, with real
SHA-256 and real zlib (the two stages that release the GIL).

Besides printing the table, the run writes ``BENCH_throughput.json`` at
the repository root: write/read MB/s and per-batch p50/p99 latency for
every thread count, plus ``cpu_count`` so the numbers can be judged in
context — on a single-core host threading cannot beat serial, and the
honest expectation there is parity (the slice-amortized pool keeps
overhead low), not speedup.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.datared.compression import ZlibCompressor
from repro.datared.dedup import DedupEngine
from repro.parallel import StagePool
from repro.perf import bench_meta

CHUNK = 4096
BATCH_CHUNKS = 64
PARALLELISMS = [1, 2, 4, 8]
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_BATCHES = 6 if SMOKE else 48
#: Each setting is measured this many times and the fastest run is kept
#: — the same noise-stripping ``timeit`` uses; scheduler stalls show up
#: as one-sided slowdowns, never speedups.
ROUNDS = 1 if SMOKE else 3
DUPLICATE_FRACTION = 0.25
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def make_workload(seed: int = 0xF1D8) -> List[List[bytes]]:
    """Batches of half-random/half-zero chunks with a duplicate pool —
    compressible enough that zlib does real work, unique enough that
    most chunks reach the compressor."""
    rng = random.Random(seed)
    pool = [
        rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2) for _ in range(8)
    ]
    batches = []
    for _ in range(NUM_BATCHES):
        batch = []
        for _ in range(BATCH_CHUNKS):
            if rng.random() < DUPLICATE_FRACTION:
                batch.append(pool[rng.randrange(len(pool))])
            else:
                batch.append(rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2))
        batches.append(batch)
    return batches


@dataclass
class PipelineRun:
    """Measured behaviour of one parallelism setting."""

    parallelism: int
    write_mb_s: float
    read_mb_s: float
    write_p50_ms: float
    write_p99_ms: float
    read_p50_ms: float
    read_p99_ms: float
    digest: bytes = field(repr=False)
    stats: tuple = field(repr=False)


def run_pipeline(parallelism: int, batches: List[List[bytes]]) -> PipelineRun:
    with StagePool(parallelism) as pool:
        engine = DedupEngine(
            num_buckets=1 << 14, compressor=ZlibCompressor(), pool=pool
        )
        # Warm the pool so one-time worker-thread spawn cost (clearly
        # visible as a first-batch latency spike on small runs) doesn't
        # pollute the steady-state measurement.
        pool.map(hashlib.sha256, [b"\0" * 64] * (parallelism * 8))
        write_latencies = []
        lba = 0
        for batch in batches:
            requests = []
            for data in batch:
                requests.append((lba, data))
                lba += engine.chunker.blocks_per_chunk
            start = time.perf_counter()
            engine.write_many(requests)
            write_latencies.append((time.perf_counter() - start) * 1e3)
        engine.flush()

        read_latencies = []
        readback = hashlib.sha256()
        for batch_index in range(NUM_BATCHES):
            read_lba = batch_index * BATCH_CHUNKS * engine.chunker.blocks_per_chunk
            start = time.perf_counter()
            report = engine.read(read_lba, BATCH_CHUNKS)
            read_latencies.append((time.perf_counter() - start) * 1e3)
            readback.update(report.data)

        moved = NUM_BATCHES * BATCH_CHUNKS * CHUNK
        stats = engine.stats
        return PipelineRun(
            parallelism=parallelism,
            write_mb_s=moved / 1e6 / (sum(write_latencies) / 1e3),
            read_mb_s=moved / 1e6 / (sum(read_latencies) / 1e3),
            write_p50_ms=_percentile(write_latencies, 0.50),
            write_p99_ms=_percentile(write_latencies, 0.99),
            read_p50_ms=_percentile(read_latencies, 0.50),
            read_p99_ms=_percentile(read_latencies, 0.99),
            digest=readback.digest(),
            stats=(
                stats.logical_bytes,
                stats.stored_bytes,
                stats.unique_chunks,
                stats.duplicate_chunks,
            ),
        )


@dataclass
class ThroughputResult:
    """All settings' runs plus the serial reference, render-able."""

    runs: List[PipelineRun]

    @property
    def serial(self) -> PipelineRun:
        return self.runs[0]

    def speedup(self, run: PipelineRun) -> float:
        return run.write_mb_s / self.serial.write_mb_s

    def read_speedup(self, run: PipelineRun) -> float:
        return run.read_mb_s / self.serial.read_mb_s

    def render(self) -> str:
        lines = [
            "stage-split pipeline throughput "
            f"(cpu_count={os.cpu_count()}, "
            f"{NUM_BATCHES}x{BATCH_CHUNKS} chunks of {CHUNK} B"
            f"{', smoke' if SMOKE else ''})",
            "  threads  write MB/s  read MB/s  "
            "wr p50/p99 ms  rd p50/p99 ms  speedup",
        ]
        for run in self.runs:
            lines.append(
                f"  {run.parallelism:>7}  {run.write_mb_s:>10.1f}  "
                f"{run.read_mb_s:>9.1f}  "
                f"{run.write_p50_ms:>6.2f}/{run.write_p99_ms:<6.2f}  "
                f"{run.read_p50_ms:>6.2f}/{run.read_p99_ms:<6.2f}  "
                f"{self.speedup(run):>6.2f}x"
            )
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "benchmark": "parallel-pipeline-throughput",
            "meta": bench_meta(),
            "cpu_count": os.cpu_count(),
            "smoke": SMOKE,
            "chunk_size": CHUNK,
            "batch_chunks": BATCH_CHUNKS,
            "num_batches": NUM_BATCHES,
            "rounds": ROUNDS,
            "duplicate_fraction": DUPLICATE_FRACTION,
            "note": (
                "speedup is relative to parallelism=1 on this host; "
                "thread fan-out only pays off when cpu_count > 1"
            ),
            "results": [
                {
                    "parallelism": run.parallelism,
                    "write_mb_s": round(run.write_mb_s, 2),
                    "read_mb_s": round(run.read_mb_s, 2),
                    "write_p50_ms": round(run.write_p50_ms, 3),
                    "write_p99_ms": round(run.write_p99_ms, 3),
                    "read_p50_ms": round(run.read_p50_ms, 3),
                    "read_p99_ms": round(run.read_p99_ms, 3),
                    "write_speedup_vs_serial": round(self.speedup(run), 3),
                    "read_speedup_vs_serial": round(self.read_speedup(run), 3),
                }
                for run in self.runs
            ],
        }


def test_pipeline_throughput(regenerate):
    """Serial vs. 2/4/8-thread stage pools over the identical workload;
    every setting must produce byte- and stats-identical results."""
    batches = make_workload()

    def best_of_rounds(parallelism: int) -> PipelineRun:
        # Per-metric best, like ``timeit``: write and read figures come
        # from whichever round was fastest at each (a scheduler stall in
        # one round's read phase must not taint its write figure or vice
        # versa).  Digests and stats are identical across rounds.
        runs = [run_pipeline(parallelism, batches) for _ in range(ROUNDS)]
        by_write = max(runs, key=lambda run: run.write_mb_s)
        by_read = max(runs, key=lambda run: run.read_mb_s)
        return PipelineRun(
            parallelism=parallelism,
            write_mb_s=by_write.write_mb_s,
            read_mb_s=by_read.read_mb_s,
            write_p50_ms=by_write.write_p50_ms,
            write_p99_ms=by_write.write_p99_ms,
            read_p50_ms=by_read.read_p50_ms,
            read_p99_ms=by_read.read_p99_ms,
            digest=by_write.digest,
            stats=by_write.stats,
        )

    def experiment():
        return ThroughputResult(
            [best_of_rounds(p) for p in PARALLELISMS]
        )

    result = regenerate(experiment)

    serial = result.serial
    assert serial.parallelism == 1
    for run in result.runs[1:]:
        # The whole point of the design: parallelism changes wall-clock
        # only.  Bytes read back and reduction stats are identical.
        assert run.digest == serial.digest
        assert run.stats == serial.stats

    RESULT_PATH.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    # Regression floor for the CI gate: the slice-amortized pool must
    # not make the pipeline materially slower even on one core.
    slowest = min(result.speedup(run) for run in result.runs)
    assert slowest > 0.8, (
        f"parallel pipeline {1 / slowest:.2f}x slower than serial "
        f"(see {RESULT_PATH.name})"
    )
    # Read-side parity: batches below READ_FANOUT_MIN_CHUNKS decompress
    # inline regardless of pool width, so a parallel engine's reads must
    # track the serial engine's within measurement noise (this caught
    # the PR-2 regression where 64-chunk reads paid slice dispatch).
    slowest_read = min(result.read_speedup(run) for run in result.runs)
    assert slowest_read > 0.8, (
        f"parallel read path {1 / slowest_read:.2f}x slower than serial "
        f"(see {RESULT_PATH.name})"
    )

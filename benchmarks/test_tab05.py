"""Regenerate Table 5: Cache HW-Engine resources and throughput."""

from repro.experiments import tab05_cache_engine


def test_tab05_cache_engine(regenerate):
    result = regenerate(tab05_cache_engine.run)
    large = result.data["Except SSD, large tree"]
    assert large["geometry"].on_chip_levels == 13

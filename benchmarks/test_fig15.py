"""Regenerate Figure 15: cost scalability."""

from repro.experiments import fig15_cost_scaling


def test_fig15_cost_scaling(regenerate):
    result = regenerate(fig15_cost_scaling.run)
    savings = result.data["savings"]
    assert savings[(500e12, 25e9)] > savings[(500e12, 75e9)] > 0.4

"""Regenerate Figure 13: Cache HW-Engine throughput scaling."""

from repro.experiments import fig13_tree


def test_fig13_tree(regenerate):
    result = regenerate(fig13_tree.run)
    write_m = result.data["write-m"]["series"]
    assert write_m[4] > 1.5 * write_m[1]  # multi-update speedup

"""Benchmark harness support.

Each ``benchmarks/test_*.py`` regenerates one paper table or figure: it
runs the experiment once under pytest-benchmark (timing the full
pipeline) and prints the regenerated rows next to the paper's values.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment once, print its rendered output, return it."""

    def _run(experiment, *args, **kwargs):
        result = benchmark.pedantic(
            experiment, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _run

"""Regenerate Figure 4: baseline DRAM bandwidth wall."""

from repro.experiments import fig04_membw


def test_fig04_membw(regenerate):
    result = regenerate(fig04_membw.run)
    projections = result.data["projections"]
    assert projections["Write-only"] > 170e9  # exceeds the socket
    assert projections["Write-only"] > projections["Mixed read/write"]

"""Regenerate the beyond-paper extension studies."""

import pytest

from repro.experiments import (
    ext_cdc,
    ext_multitenant,
    ext_pipeline_des,
    ext_read_offload,
)


def test_ext_read_offload(regenerate):
    result = regenerate(ext_read_offload.run)
    throughputs = result.data["throughputs"]
    assert (
        throughputs["FIDR + NVMe read offload"] > throughputs["FIDR (paper)"]
    )


def test_ext_multitenant(regenerate):
    result = regenerate(ext_multitenant.run)
    assert (
        result.data["prioritized"]["mail"] > result.data["plain"]["mail"]
    )


def test_ext_cdc(regenerate):
    result = regenerate(ext_cdc.run)
    assert result.data["cdc"]["dedup"] > result.data["fixed"]["dedup"]


def test_ext_pipeline_des(regenerate):
    result = regenerate(ext_pipeline_des.run)
    for values in result.data.values():
        assert values["saturated"] == pytest.approx(values["solver"], rel=0.06)


def test_ext_gc(regenerate):
    from repro.experiments import ext_gc

    result = regenerate(ext_gc.run)
    series = result.data["series"]
    assert series[0.3]["dead_fraction"] < series[1.0]["dead_fraction"]


def test_ablations(regenerate):
    from repro.experiments import ablations

    result = regenerate(ablations.run)
    assert len(result.tables) == 4


def test_ext_sensitivity(regenerate):
    from repro.experiments import ext_sensitivity

    result = regenerate(ext_sensitivity.run)
    speedups = result.data["speedups"]
    assert all(value > 2.0 for value in speedups.values())

"""Regenerate Table 4: FIDR NIC FPGA resource utilization."""

from repro.experiments import tab04_nic_resources


def test_tab04_nic_resources(regenerate):
    result = regenerate(tab04_nic_resources.run)
    assert result.data["mixed"].luts < result.data["write-only"].luts

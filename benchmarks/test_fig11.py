"""Regenerate Figure 11: FIDR's host-memory-bandwidth reduction."""

from repro.experiments import fig11_membw


def test_fig11_membw(regenerate):
    result = regenerate(fig11_membw.run)
    reductions = result.data["reductions"]
    assert max(reductions.values()) > 0.6
    assert reductions["read-mixed"] > 0.8

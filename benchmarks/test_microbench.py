"""Micro-benchmarks of the core data structures.

Not paper figures — these track the Python implementation's own
performance (ops/s of the dedup write path, tree indexes, table cache),
useful for spotting regressions while extending the library.
"""

import random

import pytest

from repro.cache.btree import BPlusTree
from repro.cache.hwtree import SpeculativeTreeEngine, TreeOp
from repro.cache.table_cache import TableCache
from repro.datared.compression import ModeledCompressor
from repro.datared.dedup import DedupEngine
from repro.datared.hash_pbn import HashPbnTable, InMemoryBucketStore
from repro.datared.hashing import fingerprint


@pytest.fixture
def rng():
    return random.Random(11)


def test_dedup_write_path(benchmark, rng):
    """Chunks through the full write flow (hash, table, pack, map)."""
    engine = DedupEngine(num_buckets=1 << 12, compressor=ModeledCompressor(0.5))
    pool = [rng.randbytes(4096) for _ in range(64)]

    state = {"lba": 0}

    def write_block():
        lba = state["lba"]
        state["lba"] += 8
        engine.write(lba, pool[lba % len(pool)])

    benchmark(write_block)


def test_btree_search(benchmark, rng):
    tree = BPlusTree(order=16)
    keys = rng.sample(range(1_000_000), 20_000)
    for key in keys:
        tree.insert(key, key)
    probe = iter(keys * 100)
    benchmark(lambda: tree.search(next(probe)))


def test_speculative_tree_batch(benchmark, rng):
    engine = SpeculativeTreeEngine(window=4)
    counter = iter(range(100_000_000))

    def batch():
        engine.execute(
            [TreeOp("insert", next(counter) * 7919 % 1_000_003, 1)
             for _ in range(64)]
        )

    benchmark(batch)


def test_table_cache_access(benchmark, rng):
    cache = TableCache(InMemoryBucketStore(), capacity_lines=256)
    table = HashPbnTable(1 << 12, store=cache)
    digests = [fingerprint(str(i).encode()) for i in range(4096)]
    probe = iter(digests * 1000)
    benchmark(lambda: table.lookup(next(probe)))


def test_sha256_fingerprint(benchmark, rng):
    data = rng.randbytes(4096)
    benchmark(lambda: fingerprint(data))

"""Regenerate Figure 16: cost breakdown at 75 GB/s, 500 TB."""

from repro.experiments import fig16_cost_breakdown


def test_fig16_cost_breakdown(regenerate):
    result = regenerate(fig16_cost_breakdown.run)
    totals = result.data["totals"]
    assert totals["FIDR"] < totals["baseline (partial)"]

"""Regenerate Figure 3: IO amplification of large chunking."""

from repro.experiments import fig03_large_chunking


def test_fig03_large_chunking(regenerate):
    result = regenerate(fig03_large_chunking.run)
    mail = result.data["mail"]
    assert mail[32768] > 10.0  # the paper's headline RMW penalty
    assert mail[4096] == 1.0

"""Regenerate Figure 14: overall per-socket throughput by technique."""

from repro.experiments import fig14_throughput


def test_fig14_throughput(regenerate):
    result = regenerate(fig14_throughput.run)
    speedups = result.data["speedups"]
    best_write = max(
        speedups[key]["+multi-update tree"]
        for key in ("write-h", "write-m", "write-l")
    )
    assert best_write > 2.5  # the paper's up-to-3.3x claim

"""Regenerate Table 3: workload construction (targets vs realized)."""

from repro.experiments import tab03_workloads


def test_tab03_workloads(regenerate):
    result = regenerate(tab03_workloads.run)
    for comparison in result.comparisons:
        if "dedup" in comparison.label:
            assert abs(comparison.relative_error) < 0.05

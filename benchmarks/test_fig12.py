"""Regenerate Figure 12: FIDR's CPU-utilization reduction."""

from repro.experiments import fig12_cpu


def test_fig12_cpu(regenerate):
    result = regenerate(fig12_cpu.run)
    reductions = result.data["reductions"]
    assert all(value > 0.3 for value in reductions.values())
    assert reductions["read-mixed"] == min(reductions.values())

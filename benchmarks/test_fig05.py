"""Regenerate Figure 5: baseline CPU wall and composition."""

from repro.experiments import fig05_cpu


def test_fig05_cpu(regenerate):
    result = regenerate(fig05_cpu.run)
    write = result.data["Write-only"]
    assert write["cores"] > 22  # more than a 22-core socket
    assert write["mgmt"] > 0.8  # memory/IO management dominates

#!/usr/bin/env python3
"""Quickstart: a deduplicating, compressing storage server in ten lines.

Builds a FIDR server, writes some data with duplicates, reads it back
verified, and prints what data reduction achieved and what the hardware
did — the smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

import os
import random

from repro import StorageServer, SystemKind

CHUNK = 4096


def main() -> None:
    rng = random.Random(7)
    server = StorageServer.build(
        SystemKind.FIDR, num_buckets=4096, cache_lines=256
    )

    # A small content pool makes duplicates: half of these 4-KB writes
    # repeat earlier content, like a mail store or VM image would.
    pool = [rng.randbytes(CHUNK // 2) + b"\x00" * (CHUNK // 2) for _ in range(32)]
    written = {}
    for _ in range(400):
        lba = rng.randrange(1000)
        data = pool[rng.randrange(len(pool))] if rng.random() < 0.5 else (
            rng.randbytes(CHUNK // 2) + b"\x00" * (CHUNK // 2)
        )
        server.write(lba, data)  # acked immediately (NIC buffer)
        written[lba] = data
    server.flush()

    # Reads are verified byte-for-byte.
    for lba, expected in written.items():
        assert server.read(lba, 1) == expected
    print(f"verified {len(written)} LBAs read back exactly")

    stats = server.reduction_stats
    print(f"deduplication removed {stats.dedup_ratio:.0%} of chunks")
    print(f"compression stored uniques at {stats.compression_ratio:.0%} size")
    print(f"overall: {stats.reduction_factor:.1f}x less flash written")

    report = server.report()
    print(f"host DRAM traffic: {report.memory_amplification():.2f} B per client B")
    print(f"PCIe peer-to-peer share: {report.pcie.p2p_fraction():.0%}")
    print(f"table cache hit rate: {report.cache_stats.hit_rate:.0%}")


if __name__ == "__main__":
    main()

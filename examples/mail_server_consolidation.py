#!/usr/bin/env python3
"""Scenario: consolidating mail-server storage behind inline reduction.

A datacenter operator wants one storage server to absorb a mail-heavy
write stream (high duplication, small scattered writes — the workload
the paper's intro motivates).  This example replays an FIU-style mail
workload through both architectures and answers the operator's
questions:

* how much flash does reduction actually save on this data?
* can the server keep up — where do CPU and DRAM saturate?
* what does FIDR's offloading change at the target line rate?

Run:  python examples/mail_server_consolidation.py
"""

from repro.analysis import format_table, gbps, pct, solve_throughput
from repro.datared import ModeledCompressor
from repro.hw.specs import TARGET_SERVER
from repro.systems import BaselineSystem, FidrSystem
from repro.workloads import WORKLOADS, build_workload, replay

TARGET = 75e9  # the per-socket line rate we want to sustain


def main() -> None:
    # Table 3's Write-H: mail trace, 88% duplicate content.
    spec = WORKLOADS["write-h"]
    trace = build_workload(spec, num_chunks=16_000, replicas=2, seed=1)
    print(f"workload: {trace.name} — {trace.write_count:,} 4-KB writes, "
          f"{trace.content_dedup_ratio():.0%} duplicate content\n")

    reports = {}
    for label, cls in (("baseline", BaselineSystem), ("FIDR", FidrSystem)):
        system = cls(
            server=TARGET_SERVER,
            num_buckets=1 << 15,
            cache_lines=1024,
            compressor=ModeledCompressor(spec.comp_ratio),
        )
        reports[label] = replay(system, trace).report

    # 1. Flash savings (identical for both — same functional reduction).
    reduction = reports["FIDR"].reduction
    print(f"flash written: {pct(1 / reduction.reduction_factor)} of the "
          f"logical stream ({reduction.reduction_factor:.1f}x reduction)\n")

    # 2. Where each architecture saturates.
    rows = []
    for label, report in reports.items():
        solved = solve_throughput(
            report,
            use_cache_engine=(label == "FIDR"),
            tree_window=4,
        )
        rows.append([
            label,
            f"{report.memory_amplification():.2f}",
            f"{report.cores_required(TARGET):.0f}",
            gbps(solved.throughput),
            solved.bottleneck,
        ])
    print(format_table(
        headers=["system", "DRAM B/client B", f"cores @{gbps(TARGET)}",
                 "max per-socket throughput", "bottleneck"],
        rows=rows,
        title="architecture comparison on the mail workload",
    ))

    base = solve_throughput(reports["baseline"]).throughput
    fidr = solve_throughput(
        reports["FIDR"], use_cache_engine=True, tree_window=4
    ).throughput
    print(f"\nFIDR sustains {fidr / base:.1f}x the baseline's per-socket "
          f"throughput on this workload")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: sizing the Cache HW-Engine's speculation window (§5.5.1).

The crash/replay optimization lets several tree updates run
concurrently.  How wide should the window be, and when does it stop
paying?  This study sweeps the window across cache-miss regimes using
both the functional engine (measuring *real* crash rates on a live
B+-tree) and the timing model (throughput), reproducing Figure 13's
regimes and showing where each constraint binds.

Run:  python examples/tree_concurrency_study.py
"""

import random

from repro.analysis import format_table, gbps, pct
from repro.cache import CacheEngineModel, SpeculativeTreeEngine, TreeOp


def functional_crash_rates(window: int, tree_keys: int) -> float:
    """Measured mis-speculation rate on a live tree of ``tree_keys``."""
    rng = random.Random(window * 1000 + tree_keys)
    key_space = tree_keys * 100
    engine = SpeculativeTreeEngine(window=window)
    engine.execute(
        [TreeOp("insert", rng.randrange(key_space), 1) for _ in range(tree_keys)]
    )
    churn = min(8000, tree_keys)
    mixed = [TreeOp("delete", rng.randrange(key_space)) for _ in range(churn)]
    mixed += [TreeOp("insert", rng.randrange(key_space), 1) for _ in range(churn)]
    rng.shuffle(mixed)
    engine.execute(mixed)
    return engine.crash_rate


def main() -> None:
    # 1. Throughput vs window across miss regimes (timing model).
    model = CacheEngineModel()
    rows = []
    for label, miss in (("hot cache (10% miss)", 0.10),
                        ("warm cache (19% miss)", 0.19),
                        ("cold cache (47% miss)", 0.47)):
        row = [label]
        for window in (1, 2, 4, 8):
            solved = model.analytic_throughput(miss, window=window)
            row.append(f"{solved.throughput / 1e9:.0f}")
        solved = model.analytic_throughput(miss, window=4)
        row.append(solved.bottleneck)
        rows.append(row)
    print(format_table(
        headers=["regime", "w=1 (GB/s)", "w=2", "w=4", "w=8", "binding @w=4"],
        rows=rows,
        title="engine throughput vs speculation window",
    ))
    print("\nwindow 4 is where the commit port takes over — wider windows"
          "\nbuy nothing, which is why the paper stops there.\n")

    # 2. Real crash rates on a live tree: conflicts need two in-flight
    # updates to land on the same leaf, so the rate falls inversely with
    # tree size.
    rows = []
    for tree_keys in (2_000, 16_000, 64_000):
        row = [f"{tree_keys:,}-key tree"]
        for window in (1, 2, 4):
            row.append(pct(functional_crash_rates(window, tree_keys)))
        rows.append(row)
    print(format_table(
        headers=["tree size", "crash rate w=1", "w=2", "w=4"],
        rows=rows,
        title="measured crash/replay rates (functional tree)",
    ))
    print("\nthe rate shrinks with tree size; the prototype's 100-GB cache"
          "\nindex has ~1.5M leaves, which is where the paper's <0.1% lives.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: a durable storage server surviving a metadata crash.

Combines three pieces a downstream adopter would compose:

* the §6.2 storage protocol (clients speak framed write/read requests),
* the FIDR reduction stack behind it, built with a
  :class:`~repro.systems.config.DurabilityPolicy` that arms the
  group-commit metadata journal and periodic checkpoints,
* crash recovery through the factory — after a "crash" that destroys
  every in-memory table, ``build_engine(cfg, recover_from=...)`` rebuilds
  the engine from the surviving containers + journal and clients keep
  reading their data, including a pre-crash CoW snapshot.

Run:  python examples/durable_protocol_server.py
"""

import copy
import random

from repro.datared.journal import RecoveryImage
from repro.net import ProtocolClient, ProtocolServer
from repro.systems import FidrSystem
from repro.systems.config import DurabilityPolicy, SystemConfig
from repro.systems.factory import build_engine
from repro.systems.server import StorageServer

CHUNK = 4096

#: One config drives both lives of the server: the journaled first run
#: and the post-crash rebuild (recovery through the factory guarantees
#: the recovered engine gets identical codec/index/shard wiring).
CONFIG = SystemConfig(
    durability=DurabilityPolicy(journal=True, checkpoint_every_commits=8),
)


def main() -> None:
    rng = random.Random(11)
    dataset = {}
    pool = [rng.randbytes(CHUNK) for _ in range(24)]

    # First life: a journaled FIDR server behind the wire protocol.
    # ``with`` is the lifecycle API — close() drains staged writes and
    # fences the final group commit even on an exception path.
    with StorageServer(
        FidrSystem(config=CONFIG, num_buckets=4096, cache_lines=256)
    ) as storage:
        endpoint = ProtocolServer(storage)
        client = ProtocolClient(endpoint.handle_bytes)

        # What a crash leaves behind: the journal's ``on_durable`` hook
        # fires at every group-commit fence, *before* the commit's
        # deferred container frees apply — so image + containers here
        # are byte-for-byte the surviving disk state at that instant.
        engine = storage.system.engine
        journal = engine.journal
        crash_state = {}

        def capture(image: bytes, stable: int) -> None:
            crash_state["image"] = image
            crash_state["containers"] = copy.deepcopy(engine.containers)

        journal.on_durable = capture
        for _ in range(300):
            lba = rng.randrange(600)
            data = pool[rng.randrange(len(pool))] if rng.random() < 0.6 else (
                rng.randbytes(CHUNK)
            )
            client.write(lba, data)
            dataset[lba] = data

        # Pin the current state: an O(1) copy-on-write snapshot, taken
        # over the wire (SNAP is a v2 op).
        pinned = client.create_snapshot("pre-update")
        frozen = dict(dataset)

        # Keep writing after the snapshot; the pinned view must not move.
        for _ in range(200):
            lba = rng.randrange(600)
            data = rng.randbytes(CHUNK)
            client.write(lba, data)
            dataset[lba] = data
        storage.flush()  # group-commit fence: everything so far is durable
        acked = dict(dataset)

        # One more batch, whose fence the "crash" below will tear: these
        # writes are in flight — a client was never acknowledged — so
        # recovery may keep or discard them, but only as a whole batch.
        tail = {}
        for _ in range(12):
            lba = rng.randrange(600)
            data = rng.randbytes(CHUNK)
            client.write(lba, data)
            dataset[lba] = data
            tail[lba] = data
        storage.flush()

        print(f"served {endpoint.requests_served} requests; journal holds "
              f"{journal.records_written:,} records in {journal.commits} "
              f"commits / {journal.checkpoints} checkpoints "
              f"({journal.size_bytes / 1024:.1f} KiB); snapshot pinned "
              f"{pinned} chunks")

    # --- crash: every in-memory table evaporates; what survives is the
    # hook-captured durable journal image and the container payloads ---
    image = crash_state["image"]
    torn = image[: len(image) - 11]  # the tail fence was mid-write
    recovered = build_engine(
        CONFIG,
        num_buckets=4096,
        recover_from=RecoveryImage(
            journal=torn, containers=crash_state["containers"]
        ),
    )
    report = recovered.recovery
    print(f"recovery from a torn journal: clean={report.clean}, "
          f"replayed {report.records_replayed} records from "
          f"checkpoint={report.from_checkpoint}, reclaimed "
          f"{report.orphans_reclaimed} orphaned placements "
          f"(unacked tail discarded, as designed)")

    with recovered:
        verified = rolled_back = 0
        for lba, data in dataset.items():
            got = recovered.read(lba, 1).data
            if lba not in tail:
                # Acknowledged before the torn fence: must be byte-exact.
                assert got == data, f"corruption at acknowledged LBA {lba}"
                verified += 1
                continue
            # In the torn batch: whole-batch semantics — either the new
            # value (the fence survived) or the pre-batch acknowledged
            # state (rolled back), never a byte mash of the two.
            old = acked.get(lba, bytes(CHUNK))  # unwritten reads as zeros
            assert got in (data, old), f"mangled in-flight LBA {lba}"
            if got != data:
                rolled_back += 1
        snap_ok = sum(
            1 for lba, data in frozen.items()
            if recovered.snapshot_contains("pre-update", lba)
            and recovered.read_snapshot("pre-update", lba).data == data
        )
        print(f"verified {verified} acknowledged LBAs byte-exact after "
              f"recovery ({rolled_back}/{len(tail)} in-flight writes "
              f"rolled back whole); snapshot 'pre-update' still serves "
              f"{snap_ok} pinned chunks; dedup identity intact: rewriting "
              f"old content deduplicates -> "
              f"{recovered.write(4096, pool[0]).chunks[0].duplicate}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: a durable storage server surviving a metadata crash.

Combines three pieces a downstream adopter would compose:

* the §6.2 storage protocol (clients speak framed write/read requests),
* the FIDR reduction stack behind it,
* the metadata journal — after a "crash" that destroys every in-memory
  table, the journal and the surviving containers rebuild the engine and
  clients keep reading their data.

Run:  python examples/durable_protocol_server.py
"""

import random

from repro.datared import MetadataJournal, ModeledCompressor, recover_engine
from repro.net import ProtocolClient, ProtocolServer
from repro.systems import FidrSystem
from repro.systems.server import StorageServer

CHUNK = 4096


def build_journaled_server():
    """A FIDR server whose engine journals every metadata mutation."""
    journal = MetadataJournal()
    system = FidrSystem(
        num_buckets=4096, cache_lines=256, compressor=ModeledCompressor(0.5)
    )
    system.engine.observer = journal
    return StorageServer(system), journal, system


def main() -> None:
    rng = random.Random(11)
    storage, journal, system = build_journaled_server()
    endpoint = ProtocolServer(storage)
    client = ProtocolClient(endpoint.handle_bytes)

    # Clients write through the wire protocol; acks are immediate.
    dataset = {}
    pool = [rng.randbytes(CHUNK) for _ in range(24)]
    for _ in range(500):
        lba = rng.randrange(600)
        data = pool[rng.randrange(len(pool))] if rng.random() < 0.6 else (
            rng.randbytes(CHUNK)
        )
        client.write(lba, data)
        dataset[lba] = data
    storage.flush()
    print(f"served {endpoint.requests_served} requests; journal holds "
          f"{journal.records_written:,} records "
          f"({journal.size_bytes / 1024:.1f} KiB)")

    # --- crash: all metadata evaporates; containers + journal survive ---
    containers = system.engine.containers
    image = journal.to_bytes()
    torn = image[: len(image) - 11]  # the tail record was mid-write
    recovered, clean = recover_engine(
        torn, containers, ModeledCompressor(0.5), num_buckets=4096
    )
    print(f"recovery from a torn journal: clean={clean} "
          f"(tail record discarded, as designed)")

    verified = 0
    for lba, data in dataset.items():
        pbn = recovered.lba_map.get(lba)
        if pbn is None:
            continue  # lost with the torn tail — but never corrupted
        assert recovered.read(lba, 1).data == data, f"corruption at {lba}"
        verified += 1
    print(f"verified {verified}/{len(dataset)} LBAs byte-exact after "
          f"recovery; dedup identity intact: rewriting old content "
          f"deduplicates -> "
          f"{recovered.write(4096, pool[0]).chunks[0].duplicate}")


if __name__ == "__main__":
    main()

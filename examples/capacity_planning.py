#!/usr/bin/env python3
"""Scenario: pricing a PB-scale storage tier (§7.8's cost model).

Given a target effective capacity and per-socket throughput, compare
three ways to build it — raw flash, the baseline reducer (which must
fall back to partial reduction past its ceiling), and FIDR — and show
how the trade-off moves across the design space.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import StorageCostModel, format_table, pct

GB = 1e9
TB = 1e12


def main() -> None:
    model = StorageCostModel()

    # A concrete build: 500 TB effective capacity at 75 GB/s per socket.
    capacity, throughput = 500 * TB, 75 * GB
    reference = model.no_reduction_cost(capacity)
    baseline = model.baseline_cost(throughput, capacity, per_socket_cap=25 * GB)
    fidr = model.fidr_cost(throughput, capacity)

    rows = []
    for label, breakdown in (("raw flash", reference),
                             ("baseline (partial reduction)", baseline),
                             ("FIDR", fidr)):
        rows.append([
            label,
            f"${breakdown.total / 1000:,.0f}k",
            pct(breakdown.savings_vs(reference)) if breakdown is not reference else "-",
        ])
    print(format_table(
        headers=["build", "cost", "saving vs raw flash"],
        rows=rows,
        title=f"pricing {capacity / TB:.0f} TB effective at {throughput / GB:.0f} GB/s",
    ))

    # The design space: how the FIDR saving moves with scale.
    print()
    sweep_rows = []
    for cap in (100 * TB, 250 * TB, 500 * TB, 1000 * TB):
        row = [f"{cap / TB:.0f} TB"]
        for tput in (25 * GB, 50 * GB, 75 * GB):
            saving = model.fidr_cost(tput, cap).savings_vs(
                model.no_reduction_cost(cap)
            )
            row.append(pct(saving))
        sweep_rows.append(row)
    print(format_table(
        headers=["capacity", "saving @25 GB/s", "@50 GB/s", "@75 GB/s"],
        rows=sweep_rows,
        title="FIDR cost saving across the design space",
    ))

    print("\nreading the table: reduction hardware scales with throughput,"
          "\nsaved flash scales with capacity — big, fast tiers still win.")

    # Bill of materials: what a 300 GB/s, 500 TB FIDR tier actually buys.
    from repro.analysis import plan_deployment
    from repro.experiments import DEFAULT_SCALE, get_report

    report = get_report("fidr", "write-h", DEFAULT_SCALE, server="target")
    plan = plan_deployment(report, 300 * GB, 500 * TB)
    print()
    print(format_table(
        headers=["item", "count / value"],
        rows=plan.summary_rows(),
        title=(
            f"bill of materials: 300 GB/s, 500 TB effective "
            f"({plan.per_socket_throughput / GB:.0f} GB/s per socket, "
            f"bottleneck: {plan.bottleneck})"
        ),
    ))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: one FIDR storage server, a fleet of concurrent clients.

The paper's server terminates many client links on its NIC protocol
engine and absorbs them through a bounded NIC buffer (§6.2, §7.6).
This example is that front-end in asyncio:

* an :class:`~repro.net.aserver.AsyncProtocolServer` wrapping a FIDR
  reduction stack, request queue bounded at 32 entries,
* twelve pipelined v2 clients plus one legacy v1 client, all driven by
  the load generator with a 50/50 read/write mix,
* every read verified byte-exact against what the generator wrote, and
  client-side throughput/latency percentiles reported next to the
  server's own queue/backpressure metrics.

Run:  python examples/concurrent_server.py
"""

import asyncio

from repro.datared.compression import ModeledCompressor
from repro.net.aserver import AsyncProtocolClient, AsyncProtocolServer
from repro.systems.config import SystemConfig
from repro.systems.server import StorageServer, SystemKind
from repro.workloads.loadgen import LoadGenConfig, drive

CHUNK = 4096


async def legacy_client_session(server):
    """A v1 peer on the same port: old frames, FIFO acks, still served."""
    async with await AsyncProtocolClient.connect(
        server.host, server.port, version=1
    ) as client:
        blob = bytes(range(256)) * (CHUNK // 256)
        await client.write(10_000, blob)
        assert await client.read(10_000, 1) == blob
    return "v1 legacy client: write + verified read OK"


async def main() -> None:
    storage = StorageServer.build(
        SystemKind.FIDR,
        num_buckets=4096,
        cache_lines=256,
        compressor=ModeledCompressor(0.5),
        # Fan the GIL-releasing pipeline stages (hashing, compression)
        # across two worker threads; results are identical at any value.
        config=SystemConfig(parallelism=2),
    )
    config = LoadGenConfig(
        clients=12, ops_per_client=40, read_fraction=0.5,
        chunks_per_op=2, lbas_per_client=24, seed=2026,
    )
    async with AsyncProtocolServer(
        storage, queue_depth=32, workers=4
    ) as server:
        print(f"serving on {server.host}:{server.port} "
              f"(queue_depth=32, workers=4)")
        result, legacy = await asyncio.gather(
            drive(server.host, server.port, config,
                  chunk_size=storage.chunk_size),
            legacy_client_session(server),
        )
        print(legacy)
        print()
        print(result.render())
        print()
        # One scrape of the v2 STATS op: the same repro.stats/v1 shape
        # the loadgen, the benchmarks, and `python -m repro.obs top`
        # all consume — no side-channel into server internals.
        async with await AsyncProtocolClient.connect(
            server.host, server.port
        ) as observer:
            snapshot = await observer.stats()
        gauges = snapshot["gauges"]
        print(f"server-side view ({snapshot['schema']} over the wire)")
        print(f"  connections      {gauges['server.connections_total']:.0f} "
              f"({gauges['server.connections_open']:.0f} still open)")
        print(f"  responses        {gauges['server.responses_sent']:.0f} "
              f"({gauges['server.bytes_out'] / 1e6:.2f} MB out, "
              f"{gauges['server.bytes_in'] / 1e6:.2f} MB in)")
        print(f"  queue high-water {gauges['server.max_queue_depth']:.0f}/32 "
              "(bounded: readers pause when full)")
        print(f"  v1 downgrades    "
              f"{snapshot['counters']['proto.v1_downgrades_total']} "
              "(the legacy session above)")
    stats = storage.reduction_stats
    print(f"  reduction        {stats.logical_bytes / 1e6:.1f} MB logical "
          f"-> {stats.live_stored_bytes / 1e6:.1f} MB stored "
          f"(dedup+compress through the same serving path)")
    assert result.verified_reads == result.read_ops, "read-back mismatch"


if __name__ == "__main__":
    asyncio.run(main())

"""FIDR reproduction: scalable fine-grain inline data reduction.

A from-scratch Python implementation of the storage system described in
*FIDR: A Scalable Storage System for Fine-Grain Inline Data Reduction
with Efficient Memory Handling* (Ajdari et al., MICRO-52, 2019), with a
mechanistic performance model replacing the FPGA/NIC prototype (see
DESIGN.md for the substitution rationale).

Top-level facade::

    from repro import StorageServer, SystemKind

    server = StorageServer.build(SystemKind.FIDR)
    server.write(lba=0, payload=b"..." * 1024)
    data = server.read(lba=0, num_chunks=1)

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel.
``repro.hw``
    Device models: CPU, DRAM, PCIe (with peer-to-peer), NVMe SSDs,
    FPGA engines, the FIDR NIC, and an FPGA resource estimator.
``repro.datared``
    Functional data reduction: chunking, SHA-256 fingerprints,
    Hash-PBN / LBA-PBA tables, compression, containers, dedup engine.
``repro.cache``
    Table caching: software B+-tree, speculative HW tree (Algorithms
    1-2), LRU/free-list machinery, Cache HW-Engine timing model.
``repro.systems``
    End-to-end baseline (CIDR-extended) and FIDR systems with full
    device accounting.
``repro.workloads``
    FIU-like trace synthesis and the paper's Table-3 workload recipe.
``repro.obs``
    Runtime observability: metrics registry, trace spans, the
    ``repro.stats/v1`` snapshot behind the STATS op and
    ``python -m repro.obs top`` (DESIGN.md §5.5).
``repro.analysis``
    Projection, bottleneck-throughput and cost models.
``repro.experiments``
    One module per paper table/figure.
"""

from .datared import DedupEngine, EngineStats, WriteOptions
from .errors import AlignmentError, CapacityError, ProtocolError, ReproError
from .obs.metrics import MetricsRegistry, get_registry
from .systems import BaselineSystem, FidrSystem, StorageServer, SystemKind  # noqa: E501

__version__ = "1.0.0"

__all__ = [
    "AlignmentError",
    "BaselineSystem",
    "CapacityError",
    "DedupEngine",
    "EngineStats",
    "FidrSystem",
    "MetricsRegistry",
    "ProtocolError",
    "ReproError",
    "StorageServer",
    "SystemKind",
    "WriteOptions",
    "get_registry",
    "__version__",
]

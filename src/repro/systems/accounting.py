"""Cross-device accounting: labels, reports, projections.

Defines the canonical path/task labels both systems charge against, so
experiments can diff them row by row, and :class:`SystemReport`, the
read-only view the experiments consume (Figures 4, 5, 11, 12; Tables 1
and 2 are all projections over one report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cache.table_cache import CacheStats
from ..datared.dedup import ReductionStats
from ..hw.cpu import CpuLedger
from ..hw.memory import MemoryLedger
from ..hw.pcie import PcieTopology
from ..hw.specs import ServerSpec

__all__ = ["MemPath", "CpuTask", "FIG5B_GROUPS", "TABLE2_GROUPS", "SystemReport"]


class MemPath:
    """Host-DRAM path labels (Table 1's rows)."""

    NIC_HOST = "NIC <-> host memory"
    PREDICTION = "host memory (unique prediction)"
    FPGA = "host memory <-> FPGAs"
    TABLE_CACHE = "table cache management"
    DATA_SSD = "host memory <-> data SSD"
    METADATA = "metadata messages"  #: FIDR's digests/flags/indexes (tiny)
    HOT_READ = "hot read cache"  #: §8 extension: cached hot blocks in DRAM


class CpuTask:
    """Host-CPU task labels (Figure 5b / Table 2 categories)."""

    NETWORK = "network handling"
    PREDICTOR = "unique chunk predictor"
    SCHEDULER = "accelerator batch scheduling"
    DMA = "accelerator DMA management"
    TREE = "table cache tree indexing"
    TABLE_SSD = "table SSD access"
    CONTENT = "table cache content access"
    REPLACEMENT = "table cache item replacement"
    LBA_MAP = "LBA-PBA map maintenance"
    DATA_SSD = "data SSD IO stack"
    DEVICE_MANAGER = "FIDR device manager"
    CONTENT_UPDATE = "table cache content update"


#: Coalescing map for Figure 5b's two-way split: memory/IO-management
#: overhead vs. everything else.
FIG5B_GROUPS: Dict[str, str] = {
    CpuTask.PREDICTOR: "memory/IO management",
    CpuTask.SCHEDULER: "memory/IO management",
    CpuTask.DMA: "memory/IO management",
    CpuTask.TREE: "memory/IO management",
    CpuTask.TABLE_SSD: "memory/IO management",
    CpuTask.REPLACEMENT: "memory/IO management",
    CpuTask.NETWORK: "other",
    CpuTask.CONTENT: "other",
    CpuTask.LBA_MAP: "other",
    CpuTask.DATA_SSD: "other",
    CpuTask.DEVICE_MANAGER: "other",
    CpuTask.CONTENT_UPDATE: "other",
}

#: The table-caching component set Table 2 normalizes within.
TABLE2_GROUPS = (
    CpuTask.TREE,
    CpuTask.TABLE_SSD,
    CpuTask.CONTENT,
    CpuTask.REPLACEMENT,
)


@dataclass
class SystemReport:
    """Snapshot of everything one system charged while running a workload.

    All projection methods are linear in the target throughput, exactly
    like the paper's measure-two-points-and-project methodology (§3.2).
    """

    name: str
    server: ServerSpec
    logical_write_bytes: float
    logical_read_bytes: float
    memory: MemoryLedger
    cpu: CpuLedger
    pcie: PcieTopology
    cache_stats: CacheStats
    reduction: ReductionStats
    tree_node_visits: int = 0
    engine_tree_updates: int = 0  #: updates handled by the Cache HW-Engine
    predictor_accuracy: Optional[float] = None
    nic_buffer_hit_rate: Optional[float] = None

    @property
    def logical_bytes(self) -> float:
        return self.logical_write_bytes + self.logical_read_bytes

    # -- memory (Figures 4 and 11, Table 1) ------------------------------------------
    def memory_bw_demand(self, throughput: float) -> float:
        """Host-DRAM bandwidth (bytes/s) at a client throughput."""
        return self.memory.bandwidth_demand(throughput, self.logical_bytes)

    def memory_amplification(self) -> float:
        """Host-DRAM bytes per client byte."""
        return self.memory.amplification(self.logical_bytes)

    def memory_breakdown(self) -> Dict[str, float]:
        """Per-path shares (Table 1's bandwidth columns)."""
        return self.memory.breakdown()

    def memory_utilization(self, throughput: float) -> float:
        return self.memory_bw_demand(throughput) / self.server.dram.peak_bw

    # -- CPU (Figures 5 and 12, Table 2) --------------------------------------------------
    def cores_required(self, throughput: float) -> float:
        return self.cpu.cores_required(
            throughput, self.logical_bytes, self.server.cpu.frequency_hz
        )

    def cpu_breakdown(self) -> Dict[str, float]:
        return self.cpu.breakdown()

    def cpu_group_breakdown(self) -> Dict[str, float]:
        """Figure 5b's management-vs-other split."""
        return self.cpu.grouped_breakdown(FIG5B_GROUPS)

    def table2_breakdown(self) -> Dict[str, float]:
        """CPU shares within the table-caching component (Table 2),
        normalized over the whole CPU budget like the paper does."""
        return {
            task: share
            for task, share in self.cpu_breakdown().items()
            if task in TABLE2_GROUPS
        }

    # -- ceilings (Figure 14's solver inputs) ---------------------------------------------
    def max_throughput_memory(self) -> float:
        """Client throughput at which DRAM bandwidth saturates."""
        return self.server.dram.peak_bw / self.memory_amplification()

    def max_throughput_cpu(self) -> float:
        """Client throughput at which all cores saturate."""
        cycles_per_byte = self.cpu.cycles_per_byte(self.logical_bytes)
        if cycles_per_byte == 0:
            return float("inf")
        return self.server.cpu.total_cycles_per_s / cycles_per_byte

    def max_throughput_pcie(self) -> float:
        """Client throughput at which the socket's PCIe IO saturates.

        Conservative: counts every byte entering or leaving the root
        complex against the socket budget.
        """
        per_byte = self.pcie.root_complex_bytes / self.logical_bytes
        if per_byte == 0:
            return float("inf")
        return self.server.socket_pcie_bw / per_byte

"""The FIDR system (paper §5, Figure 6).

All three ideas are wired in:

a. **Hash offloading to the NIC** — chunks are fingerprinted in the NIC;
   only 32-byte digests reach the host, and the predictor disappears.
b. **In-NIC buffering + PCIe peer-to-peer** — client data never touches
   host DRAM on the write path: NIC → Compression Engine → data SSD runs
   under one PCIe switch.  The read path is data SSD → Decompression
   Engine → NIC, also peer-to-peer.
c. **Hybrid table caching** — tree indexing, free-list/eviction handling
   and table-SSD queues run on the Cache HW-Engine; host DRAM holds the
   cached bucket *content* and the CPU only scans it.

Write flow (Figure 6a, steps 1-10) and read flow (Figure 6b, steps 1-8)
follow the paper's numbering in the code comments.
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.table_cache import CacheIndex, HwTreeIndex
from ..datared.chunking import Chunk
from ..datared.compression import Compressor
from ..obs.metrics import MetricsRegistry
from ..datared.container import Container
from ..hw.fpga import CompressionEngine, DecompressionEngine
from ..hw.nic import FidrNic
from ..hw.pcie import HOST, PcieTopology
from ..hw.specs import ServerSpec
from .accounting import CpuTask, MemPath
from .base import ReductionSystem
from .config import SystemConfig

__all__ = ["FidrSystem"]

_NIC = "fidr-nic"
_COMP = "compression-engine"
_DECOMP = "decompression-engine"
_DATA_SSD = "data-ssd"
_CACHE_ENGINE = "cache-hw-engine"
_TABLE_SSD = "table-ssd"


class FidrSystem(ReductionSystem):
    """FIDR: NIC hashing + P2P transfers + hybrid table caching."""

    TABLE_QUEUE_OWNER = "engine"
    name = "FIDR"

    def __init__(
        self,
        server: Optional[ServerSpec] = None,
        config: Optional[SystemConfig] = None,
        num_buckets: int = 1 << 15,
        cache_lines: int = 1024,
        compressor: Optional[Compressor] = None,
        tree_window: int = 4,
        hw_cache_engine: bool = True,
    ):
        """``hw_cache_engine=False`` builds the Figure-14 intermediate
        configuration: NIC hashing and P2P transfers enabled, but table
        caching still fully host-side (software B+-tree, host NVMe
        queues for the table SSDs)."""
        self._tree_window = tree_window
        self.hw_cache_engine = hw_cache_engine
        if not hw_cache_engine:
            self.TABLE_QUEUE_OWNER = "host"
            self.name = "FIDR (NIC+P2P only, software table cache)"
        super().__init__(
            server=server,
            config=config,
            num_buckets=num_buckets,
            cache_lines=cache_lines,
            compressor=compressor,
        )
        # The NIC's hash core models the engine's own fingerprinter, so
        # the digests it ships match whatever algorithm the codec policy
        # selected (idea a end-to-end, whichever plugin is configured).
        self.nic = FidrNic(
            self.server.nic, fingerprinter=self.engine.fingerprinter
        )
        self.compression = CompressionEngine(
            compressor=self.engine.compressor, spec=self.server.fpga
        )
        self.decompression = DecompressionEngine(
            compressor=self.engine.compressor, spec=self.server.fpga
        )
        self.engine.registry.register_collector(self._publish_fidr_metrics)

    def _publish_fidr_metrics(self, registry: MetricsRegistry) -> None:
        """Collector: NIC read-buffer effectiveness as a gauge."""
        rate = self._nic_buffer_hit_rate()
        registry.gauge("system.nic.buffer_hit_rate").set(
            rate if rate is not None else 0.0
        )

    # -- wiring --------------------------------------------------------------------
    def _build_topology(self) -> PcieTopology:
        # §5.6: NIC + Compression Engine + data SSDs share a switch so
        # the write path is pure peer-to-peer; the Cache HW-Engine and
        # table SSDs share the second switch.
        topology = PcieTopology(
            num_switches=2, root_complex_bw=self.server.socket_pcie_bw
        )
        for device in (_NIC, _COMP, _DECOMP, _DATA_SSD):
            topology.attach(device, switch=0)
        for device in (_CACHE_ENGINE, _TABLE_SSD):
            topology.attach(device, switch=1)
        return topology

    def _make_index(self) -> CacheIndex:
        if not self.hw_cache_engine:
            from ..cache.table_cache import BTreeIndex

            return BTreeIndex()
        return HwTreeIndex(window=self._tree_window)

    # -- write flow (Figure 6a) ------------------------------------------------------------
    def _enqueue(self, chunk: Chunk) -> None:
        """Step 1: buffer (and hash) the chunk in the NIC itself."""
        self.nic.buffer_write(chunk.lba, chunk.data)

    def _process_batch(self, chunks: List[Chunk]) -> None:
        costs = self.config.cpu
        count = len(chunks)

        # Step 2: NIC ships digests to the device manager.
        staged = self.nic.ship_digests(count)
        digest_bytes = self.config.digest_bytes * count
        self.pcie.transfer(_NIC, HOST, digest_bytes)
        self.memory.write(MemPath.METADATA, digest_bytes)
        self.memory.read(MemPath.METADATA, digest_bytes)
        self.cpu.charge(
            CpuTask.DEVICE_MANAGER, costs.device_manager_per_chunk * count
        )

        # Step 3: device manager sends bucket indexes to the Cache
        # HW-Engine (tiny messages, §5.6).
        self.pcie.transfer(HOST, _CACHE_ENGINE, self.config.bucket_index_bytes * count)

        # Steps 4-5: the engine resolves cache lines (tree + fetches run
        # on the engine); the host scans the cached content in DRAM.
        # Idea (a) end-to-end: the digests the NIC computed on ingest are
        # handed to the engine, which skips its host-side hash stage — a
        # chunk is re-fingerprinted only when its buffer entry was
        # superseded by a newer same-LBA write (the entry then carries
        # the *newer* payload's digest, which is not this chunk's).
        staged_by_lba = {entry.lba: entry for entry in staged}
        digests = []
        for chunk in chunks:
            entry = staged_by_lba.get(chunk.lba)
            if entry is not None and entry.data == chunk.data:
                digests.append(entry.digest)
            else:
                digests.append(self.engine.fingerprinter.digest(chunk.data))
        outcomes, delta = self._dedup_batch(chunks, digests=digests)
        self._charge_table_cache(delta)
        self.pcie.transfer(_CACHE_ENGINE, HOST, self.config.bucket_index_bytes * count)

        # Step 6: uniqueness flags back to the NIC.
        self.pcie.transfer(HOST, _NIC, self.config.flag_bytes * count)

        # Step 7: the NIC schedules a batch of unique chunks and sends it
        # peer-to-peer to the Compression Engine.
        flags = []
        unique_bytes = 0
        for chunk, outcome in zip(chunks, outcomes):
            entry = staged_by_lba.get(chunk.lba)
            if entry is None:
                continue  # superseded by a newer write to the same LBA
            if entry.data != chunk.data:
                # The buffer entry is a *newer* write to this LBA that
                # belongs to a later batch.  It must stay buffered (and
                # readable via LBA Lookup) until that batch commits, or
                # reads in between would see the stale mapping.
                continue
            is_unique = not outcome.duplicate
            flags.append((entry, is_unique))
            if is_unique:
                unique_bytes += len(chunk.data)
        self.nic.schedule_unique(flags)
        self.pcie.transfer(_NIC, _COMP, unique_bytes)  # P2P: no host DRAM
        self.compression.traffic.pcie_in += unique_bytes
        self.compression.traffic.payload_processed += unique_bytes

        # Step 8: compressed sizes + metadata to the host (tiny).
        unique_count = sum(1 for _, is_unique in flags if is_unique)
        metadata = self.config.batch_metadata_bytes * unique_count
        if metadata:
            self.pcie.transfer(_COMP, HOST, metadata)
            self.memory.write(MemPath.METADATA, metadata)
            self.memory.read(MemPath.METADATA, metadata)

        # Step 10: update cached table content for the new uniques and
        # the LBA-PBA map (host-side metadata work).
        self.cpu.charge(CpuTask.LBA_MAP, costs.lba_map_update * count)
        self.cpu.charge(
            CpuTask.CONTENT_UPDATE, costs.cache_content_update * unique_count
        )

    def _charge_table_cache(self, delta) -> None:
        """Hybrid split (§5.5): content stays host-side, machinery moves
        to the engine — the host never pays tree/SSD/eviction cycles.
        With ``hw_cache_engine=False`` the host pays them all, exactly
        like the baseline."""
        costs = self.config.cpu
        self.memory.read(MemPath.TABLE_CACHE, delta.host_bytes_read)
        self.memory.write(MemPath.TABLE_CACHE, delta.host_bytes_written)
        self.cpu.charge(CpuTask.CONTENT, costs.bucket_scan * delta.content_scans)
        if not self.hw_cache_engine:
            self.cpu.charge(
                CpuTask.TREE, costs.tree_node_visit * delta.tree_node_visits
            )
            table_ssd_ops = delta.table_ssd_reads + delta.table_ssd_writes
            self.cpu.charge(CpuTask.TABLE_SSD, costs.table_ssd_io * table_ssd_ops)
            self.cpu.charge(CpuTask.REPLACEMENT, costs.eviction * delta.evictions)
        # Fetched/flushed buckets move table SSD ↔ host DRAM directly
        # (engine-issued DMA through the root complex, §5.6).
        self.pcie.transfer(_TABLE_SSD, HOST, delta.table_ssd_read_bytes)
        self.pcie.transfer(HOST, _TABLE_SSD, delta.table_ssd_write_bytes)

    def _on_container_seal(self, container: Container) -> None:
        """Step 9: the data SSD pulls the batch from the Compression
        Engine's memory, peer-to-peer."""
        size = container.fill_bytes
        self.compression.traffic.pcie_out += size
        self.compression.traffic.board_dram += 2 * size  # land + DMA out
        self.pcie.transfer(_COMP, _DATA_SSD, size)
        self.data_array.drives[
            container.container_id % len(self.data_array)
        ].account_write(size)
        # NVMe queues for data SSDs stay host-side (§6.1).
        self.cpu.charge(CpuTask.DATA_SSD, self.config.cpu.data_ssd_io)

    # -- read flow (Figure 6b) ----------------------------------------------------------------
    def _read_chunk(self, lba: int) -> bytes:
        costs = self.config.cpu

        # Steps 1-2: LBA Lookup against the in-NIC write buffer.
        buffered = self.nic.lookup_read(lba)
        if buffered is not None:
            return buffered

        # Step 3-4: LBA to the host; LBA-PBA lookup.
        self.pcie.transfer(_NIC, HOST, 8)
        self.cpu.charge(CpuTask.LBA_MAP, costs.lba_map_lookup)
        self.cpu.charge(CpuTask.DEVICE_MANAGER, costs.device_manager_per_chunk)

        report = self.engine.read(lba, 1)
        stored = report.stored_bytes_read
        logical = len(report.data)

        if stored:
            # Steps 5-7: SSD → Decompression Engine → NIC, all P2P.
            self.data_array.drives[lba % len(self.data_array)].account_read(stored)
            self.cpu.charge(CpuTask.DATA_SSD, costs.data_ssd_read_io)
            self.pcie.transfer(_DATA_SSD, _DECOMP, stored)
            self.decompression.traffic.pcie_in += stored
            self.decompression.traffic.pcie_out += logical
            self.decompression.traffic.payload_processed += logical
            self.pcie.transfer(_DECOMP, _NIC, logical)
        # Step 8: NIC sends the data to the client.
        self.nic.send_read_data(report.data)
        return report.data

    # -- reporting ---------------------------------------------------------------------------------
    def _nic_buffer_hit_rate(self) -> Optional[float]:
        total = self.nic.read_buffer_hits + self.nic.read_buffer_misses
        if total == 0:
            return None
        return self.nic.read_buffer_hits / total

"""Calibration constants for the system-level performance model.

Every absolute scale factor lives here (DESIGN.md §4).  The *flows* —
which bytes cross host DRAM, which tasks run on the CPU — are structural
(Figures 2 and 6); these constants only set the per-event costs, each
fitted once against a specific measured point in the paper:

* CPU cycle costs are fitted so the baseline write-only profile lands at
  the paper's scale (≈67 Xeon cores at 75 GB/s, Figure 5a) with the
  reported composition (predictor ≈33%, table-cache management ≈52%,
  Figure 5b; Table 2's split within table caching), and so FIDR's
  residual orchestration matches Figure 12's reductions.
* Device constants (SSD queue costs, scan costs) are plausible
  micro-architecture values cross-checked against those same shares.

All cycle figures are cycles on a 2.2-GHz Xeon core.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..datared import codecs as _codecs
from ..datared import hashing as _hashing
from ..datared.compression import Compressor
from ..datared.hashing import Fingerprinter

__all__ = ["CodecPolicy", "CpuCosts", "DurabilityPolicy", "SystemConfig"]


@dataclass(frozen=True)
class DurabilityPolicy:
    """Crash-consistency policy for the engines a config builds.

    ``journal=True`` arms a group-commit
    :class:`~repro.datared.journal.MetadataJournal` on the engine (one
    per shard for sharded configs): metadata records stage per batch and
    are fenced — one modeled fsync — at the end of every public mutating
    op, so every acknowledged write survives
    ``build_engine(cfg, recover_from=...)`` replay (DESIGN.md §5.10).

    ``checkpoint_every_commits`` additionally writes a compact
    checkpoint image every N commits and truncates the replay-dead
    prefix, bounding recovery time; ``None`` journals forever (explicit
    :meth:`~repro.datared.dedup.DedupEngine.checkpoint` calls still
    work).  The default policy is journal-off: the pre-durability
    engines, byte-for-byte.
    """

    journal: bool = False
    checkpoint_every_commits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.checkpoint_every_commits is not None:
            if not self.journal:
                raise ValueError(
                    "checkpoint_every_commits requires journal=True"
                )
            if self.checkpoint_every_commits < 1:
                raise ValueError("checkpoint_every_commits must be >= 1")


@dataclass(frozen=True)
class CpuCosts:
    """Per-event host-CPU cycle costs."""

    # -- shared data-path costs -------------------------------------------------
    #: Network/protocol handling per 4-KB chunk received or sent by the
    #: host-managed NIC path (descriptor handling, protocol decode).
    nic_per_chunk: float = 300.0
    #: DMA descriptor + doorbell management per accelerator transfer
    #: batch entry (the baseline pays this per chunk twice: to and from
    #: the reduction FPGA).
    dma_per_chunk: float = 200.0
    #: LBA-PBA map update (two-level mapping write) per chunk.
    lba_map_update: float = 450.0
    #: LBA-PBA map lookup per chunk read.
    lba_map_lookup: float = 250.0
    #: Data-SSD NVMe submission/completion per container (amortized over
    #: ~1000 chunks, so cheap per chunk; §6.1 keeps these queues on the
    #: host in both systems).
    data_ssd_io: float = 5000.0
    #: Data-SSD NVMe per 4-KB read (the read path issues one per chunk;
    #: §7.5 notes this stack stays on the CPU even in FIDR).
    data_ssd_read_io: float = 2200.0

    # -- baseline-only costs ---------------------------------------------------------
    #: The CIDR unique-chunk predictor, per chunk (content sampling,
    #: filter probe/update, batch grouping).  Fit: 32.7% of baseline
    #: write-only CPU (Figure 5b).
    predictor_per_chunk: float = 3000.0
    #: Batch scheduling around the integrated hash+compress FPGA.
    batch_scheduler_per_chunk: float = 250.0

    # -- table-cache management (host-side in the baseline) ----------------------------
    #: Per B+-tree node visited (pointer chase + key compare, mostly
    #: cache misses).  Fit: Table 2's 43.9% tree-indexing share.
    tree_node_visit: float = 450.0
    #: Table-SSD NVMe submission/completion per 4-KB bucket IO through
    #: the host software stack.  Fit: Table 2's 24.7% share.
    table_ssd_io: float = 5200.0
    #: Scanning one cached 4-KB bucket's entries in host memory.  Fit:
    #: Table 2's 6.3% content-access share.  Paid in *both* systems —
    #: FIDR deliberately keeps content scanning on the CPU (§5.1).
    bucket_scan: float = 330.0
    #: LRU/free-list bookkeeping per eviction.  Fit: Table 2's 1.0%.
    eviction: float = 500.0

    # -- FIDR-only costs ---------------------------------------------------------------
    #: FIDR device-manager orchestration per chunk (batched mailbox
    #: work: digests in, bucket indexes out, flags back; §5.3).  Fit:
    #: FIDR's residual CPU in Figure 12.
    device_manager_per_chunk: float = 1200.0
    #: Updating cached table content for newly written uniques (step 10).
    cache_content_update: float = 150.0


@dataclass(frozen=True)
class CodecPolicy:
    """Which data-reduction plugins a system builds its engine with.

    The typed front door to the :mod:`repro.datared.codecs` and
    :mod:`repro.datared.hashing` registries: names plus construction
    parameters, resolved when the system is built.  ``on_missing``
    decides what happens when the named plugin is registered but its
    backing library is absent (``zstd``/``lz4``/``blake3`` without the
    ``codecs`` extras): ``"error"`` (default) raises
    :class:`~repro.errors.MissingDependencyError`, ``"fallback"``
    silently degrades to the always-available defaults (``zlib`` /
    ``sha256``) with a :class:`RuntimeWarning` — the CLI mode, where a
    best-effort run beats a crash.  Unknown *names* always raise: a
    typo is a bug, not a missing wheel.
    """

    codec: str = "zlib"
    fingerprint: str = "sha256"
    #: Compression level for codecs that take one (zlib 0-9, zstd 1-22);
    #: ``None`` keeps each codec's own default.
    level: Optional[int] = None
    #: Trained zstd dictionary bytes (see ``ZstdCodec.train``).
    dictionary: Optional[bytes] = None
    #: Size ratio for the ``modeled`` codec.
    modeled_ratio: float = 0.5
    on_missing: str = "error"

    def __post_init__(self) -> None:
        if self.on_missing not in ("error", "fallback"):
            raise ValueError(
                f"on_missing must be 'error' or 'fallback', "
                f"got {self.on_missing!r}"
            )

    def resolved_codec(self) -> str:
        """The codec name that will actually be constructed.

        Unknown names pass through untouched so ``create_codec`` raises
        the informative ``ValueError``; only a *registered* codec whose
        library is missing falls back (when ``on_missing`` allows).
        """
        if (
            self.on_missing == "fallback"
            and self.codec in _codecs.codec_names()
            and not _codecs.codec_available(self.codec)
        ):
            return "zlib"
        return self.codec

    def resolved_fingerprint(self) -> str:
        """The fingerprint algorithm that will actually be constructed."""
        if (
            self.on_missing == "fallback"
            and self.fingerprint in _hashing.fingerprinter_names()
            and not _hashing.fingerprinter_available(self.fingerprint)
        ):
            return "sha256"
        return self.fingerprint

    def build_compressor(self) -> Compressor:
        """Construct the configured codec (honouring ``on_missing``)."""
        name = self.resolved_codec()
        if name != self.codec:
            warnings.warn(
                f"codec {self.codec!r} is not available in this "
                "environment; falling back to 'zlib' (install the "
                "repro[codecs] extras for the optional codecs)",
                RuntimeWarning,
                stacklevel=2,
            )
        params = {}
        if name == "zlib" and self.level is not None:
            params["level"] = self.level
        elif name == "zstd":
            if self.level is not None:
                params["level"] = self.level
            if self.dictionary is not None:
                params["dictionary"] = self.dictionary
        elif name == "modeled":
            params["ratio"] = self.modeled_ratio
        return _codecs.create_codec(name, **params)

    def build_fingerprinter(self) -> Fingerprinter:
        """Construct the configured fingerprinter (honouring
        ``on_missing``)."""
        name = self.resolved_fingerprint()
        if name != self.fingerprint:
            warnings.warn(
                f"fingerprinter {self.fingerprint!r} is not available in "
                "this environment; falling back to 'sha256' (install the "
                "repro[codecs] extras for the optional algorithms)",
                RuntimeWarning,
                stacklevel=2,
            )
        return _hashing.create_fingerprinter(name)


@dataclass(frozen=True)
class SystemConfig:
    """Knobs shared by both end-to-end systems."""

    chunk_size: int = 4096
    #: Hash digest bytes crossing PCIe per chunk (SHA-256).
    digest_bytes: int = 32
    #: Uniqueness flag + destination metadata per chunk (FIDR NIC ⇔ host).
    flag_bytes: int = 8
    #: Bucket-index message per chunk (host → Cache HW-Engine, §5.6's
    #: "8 byte-cache index per 4 KB request").
    bucket_index_bytes: int = 8
    #: Compressed-batch metadata per chunk (sizes + LBAs, engine → host).
    batch_metadata_bytes: int = 16
    #: Table-cache eviction batch size shipped to the engine (§5.5).
    eviction_batch: int = 8
    #: Chunks per NIC digest batch (FIDR) / predictor batch (baseline).
    batch_chunks: int = 64
    #: Worker threads for the GIL-releasing pipeline stages (hashing,
    #: compression, decompression) — the software analogue of the
    #: paper's NIC SHA-256 core and FPGA DEFLATE engine.  ``1`` keeps
    #: the data path fully serial (no threads are created); results are
    #: identical at every setting.
    parallelism: int = 1
    #: Executor backend for the stage pool: ``"thread"`` (default;
    #: exploits the GIL-releasing stages with cheap dispatch),
    #: ``"process"`` (GIL-free multi-core fan-out at IPC/pickling cost —
    #: see DESIGN.md §5.4 for the trade-off), or ``"auto"`` (process
    #: when parallel on a multi-core host, thread otherwise — what the
    #: CLIs pass).  Results are identical at every setting.
    executor: str = "thread"
    #: Fingerprint-space shards behind the scatter-gather front door
    #: (DESIGN.md §5.7).  ``1`` (default) builds the plain
    #: :class:`~repro.datared.dedup.DedupEngine` over the table cache;
    #: ``>= 2`` builds a :class:`~repro.datared.sharded.ShardedDedupEngine`
    #: whose shards keep private in-memory tables (the table-cache /
    #: device charging model is calibrated for the unsharded path).
    shards: int = 1
    #: Decompressed-read LRU capacity in chunks (0 disables).  Hot
    #: re-reads served from the cache skip the container fetch and
    #: ``zlib.decompress``; entries are invalidated on free/GC.
    read_cache_chunks: int = 0
    #: Hash-PBN page representation (DESIGN.md §5.9): ``True`` (default)
    #: operates on packed 4-KB pages in place (byte-identical on-disk
    #: format, ~4x lower resident bytes/entry), ``False`` decodes pages
    #: into the legacy entry-list buckets.  Safe under every store —
    #: page accounting is unchanged either way.
    index_packed: bool = True
    #: Negative filter over the Hash-PBN table (skip bucket probes for
    #: absent digests).  ``None`` (default) = auto: on over private
    #: in-memory bucket stores, off over interposing stores (the table
    #: cache under the calibrated device models must see every probe).
    index_filter: Optional[bool] = None
    #: Batched Hash-PBN resolve in ``write_many`` (digest-deduped,
    #: home-sorted ``lookup_many`` per batch).  ``None`` = the same
    #: private-store auto rule as ``index_filter``.
    index_batched: Optional[bool] = None
    #: Which codec/fingerprint plugins the engine is built with (see
    #: :class:`CodecPolicy`).  The default policy is the byte-stable
    #: ``zlib`` + ``sha256`` pair.
    codec: CodecPolicy = field(default_factory=CodecPolicy)
    #: Crash-consistency policy (see :class:`DurabilityPolicy`).  The
    #: default keeps journaling off — no durability cost on the modeled
    #: data path unless a deployment opts in.
    durability: DurabilityPolicy = field(default_factory=DurabilityPolicy)
    cpu: CpuCosts = field(default_factory=CpuCosts)

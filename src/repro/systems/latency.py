"""Server-side read latency (paper §7.6.2).

The paper measures the latency of a 4-KB read served as part of a batch,
from the SSDs to the NIC: 700 µs in the baseline versus 490 µs in FIDR.
The difference is structural — the baseline's datapath is

    SSD → host DRAM → (host software) → FPGA → host DRAM →
    (host software) → NIC,

with a software handoff every time data lands in host memory, while
FIDR's device manager sets up the whole SSD → Decompression Engine → NIC
peer-to-peer chain once.  This module builds both pipelines on the
discrete-event kernel (shared-bandwidth links, fixed device latencies)
and measures per-request latency distributions.

Write latency (§7.6.1) needs no simulation: FIDR acks from the NIC's
battery-backed buffer, so commit latency equals a no-reduction system's;
:func:`write_commit_latency` documents that identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.core import Simulator
from ..sim.resources import BandwidthPipe
from ..sim.stats import StreamingSummary

__all__ = ["LatencyConfig", "LatencyResult", "ReadLatencyModel", "write_commit_latency"]


@dataclass(frozen=True)
class LatencyConfig:
    """Timing parameters (calibrated to §7.6.2's 700/490 µs pair)."""

    chunk_bytes: int = 4096
    compressed_bytes: int = 2048  #: 50% compression ratio
    ssd_latency_s: float = 80e-6  #: NVMe flash access (970 Pro class)
    ssd_bw: float = 3.5e9
    pcie_bw: float = 12.8e9
    dram_bw: float = 76.8e9
    decompress_bw: float = 12.8e9
    #: Host software handoff whenever data lands in host memory and
    #: software must notice, re-buffer and batch-schedule the next hop
    #: (interrupt + driver + scheduler under load).  Fit: §7.6.2's
    #: 700-µs baseline read.
    host_handoff_s: float = 235e-6
    #: A lightweight FIDR device-manager interaction: programming one
    #: peer-to-peer transfer or notifying the NIC to fetch decompressed
    #: data (§5.4).  Doorbell-level, no data re-buffering.  Fit:
    #: §7.6.2's 490-µs FIDR read.
    p2p_setup_s: float = 150e-6
    #: DMA descriptor/doorbell work per device hop.
    dma_setup_s: float = 10e-6


@dataclass
class LatencyResult:
    """Per-request latency statistics for one pipeline."""

    mean_s: float
    min_s: float
    max_s: float
    batch_size: int


class ReadLatencyModel:
    """Batched 4-KB read latency through both datapaths."""

    def __init__(self, config: Optional[LatencyConfig] = None) -> None:
        self.config = config if config is not None else LatencyConfig()

    # -- pipelines ---------------------------------------------------------------
    def baseline_read_latency(self, batch_size: int = 64) -> LatencyResult:
        """Figure 2b's path with a host handoff after every DRAM landing."""
        cfg = self.config
        sim = Simulator()
        ssd = BandwidthPipe(sim, cfg.ssd_bw, "ssd")
        pcie_up = BandwidthPipe(sim, cfg.pcie_bw, "ssd->host")
        pcie_fpga = BandwidthPipe(sim, cfg.pcie_bw, "host<->fpga")
        fpga = BandwidthPipe(sim, cfg.decompress_bw, "decompress")
        pcie_nic = BandwidthPipe(sim, cfg.pcie_bw, "host->nic")
        latencies = StreamingSummary()

        def request(index: int):
            start = sim.now
            yield sim.timeout(cfg.ssd_latency_s)
            yield ssd.transfer(cfg.compressed_bytes)
            yield sim.timeout(cfg.dma_setup_s)
            yield pcie_up.transfer(cfg.compressed_bytes)
            # Data is in host DRAM: software must notice and schedule the
            # FPGA pass.
            yield sim.timeout(cfg.host_handoff_s)
            yield sim.timeout(cfg.dma_setup_s)
            yield pcie_fpga.transfer(cfg.compressed_bytes)
            yield fpga.transfer(cfg.chunk_bytes)
            yield pcie_fpga.transfer(cfg.chunk_bytes)
            # Decompressed data back in DRAM: second software handoff.
            yield sim.timeout(cfg.host_handoff_s)
            yield sim.timeout(cfg.dma_setup_s)
            yield pcie_nic.transfer(cfg.chunk_bytes)
            latencies.add(sim.now - start)

        for index in range(batch_size):
            sim.spawn(request(index))
        sim.run()
        return LatencyResult(
            mean_s=latencies.mean,
            min_s=latencies.minimum,
            max_s=latencies.maximum,
            batch_size=batch_size,
        )

    def fidr_read_latency(self, batch_size: int = 64) -> LatencyResult:
        """Figure 6b's path: one orchestration, then pure P2P hops."""
        cfg = self.config
        sim = Simulator()
        ssd = BandwidthPipe(sim, cfg.ssd_bw, "ssd")
        pcie_decomp = BandwidthPipe(sim, cfg.pcie_bw, "ssd->engine")
        fpga = BandwidthPipe(sim, cfg.decompress_bw, "decompress")
        pcie_nic = BandwidthPipe(sim, cfg.pcie_bw, "engine->nic")
        latencies = StreamingSummary()

        def request(index: int):
            start = sim.now
            # Device manager programs the SSD → engine transfer.
            yield sim.timeout(cfg.p2p_setup_s)
            yield sim.timeout(cfg.ssd_latency_s)
            yield ssd.transfer(cfg.compressed_bytes)
            yield sim.timeout(cfg.dma_setup_s)
            yield pcie_decomp.transfer(cfg.compressed_bytes)
            yield fpga.transfer(cfg.chunk_bytes)
            # §5.4: after decompression, FIDR software informs the NIC
            # to fetch the data from the engine's memory.
            yield sim.timeout(cfg.p2p_setup_s)
            yield sim.timeout(cfg.dma_setup_s)
            yield pcie_nic.transfer(cfg.chunk_bytes)
            latencies.add(sim.now - start)

        for index in range(batch_size):
            sim.spawn(request(index))
        sim.run()
        return LatencyResult(
            mean_s=latencies.mean,
            min_s=latencies.minimum,
            max_s=latencies.maximum,
            batch_size=batch_size,
        )


def write_commit_latency(network_rtt_s: float = 20e-6) -> dict:
    """Write commit latency (§7.6.1): FIDR acks from the NIC buffer.

    Both a no-reduction server and FIDR commit as soon as the request is
    durable in battery-backed buffer memory — the reduction pipeline is
    entirely off the commit path.  The baseline must at least land the
    data in host DRAM first.
    """
    nic_buffer_s = 2e-6  # landing in NIC DRAM
    host_buffer_s = 12e-6  # DMA into host DRAM + doorbell
    return {
        "no-reduction": network_rtt_s + nic_buffer_s,
        "fidr": network_rtt_s + nic_buffer_s,
        "baseline": network_rtt_s + host_buffer_s,
    }

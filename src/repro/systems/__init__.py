"""End-to-end systems: the CIDR-extended baseline and FIDR."""

from .accounting import CpuTask, FIG5B_GROUPS, MemPath, SystemReport, TABLE2_GROUPS
from .base import CacheDelta, ReductionSystem
from .baseline import BaselineSystem
from .config import CodecPolicy, CpuCosts, SystemConfig
from .extensions import ExtendedFidrSystem, HotReadCache
from .factory import build_engine
from .fidr import FidrSystem
from .latency import (
    LatencyConfig,
    LatencyResult,
    ReadLatencyModel,
    write_commit_latency,
)
from .pipeline_sim import PipelineResult, simulate_write_pipeline
from .predictor import PredictionStats, UniqueChunkPredictor
from .server import StorageServer, SystemKind

__all__ = [
    "BaselineSystem",
    "CacheDelta",
    "build_engine",
    "CodecPolicy",
    "CpuCosts",
    "CpuTask",
    "FIG5B_GROUPS",
    "ExtendedFidrSystem",
    "FidrSystem",
    "HotReadCache",
    "PipelineResult",
    "simulate_write_pipeline",
    "LatencyConfig",
    "LatencyResult",
    "MemPath",
    "PredictionStats",
    "ReadLatencyModel",
    "ReductionSystem",
    "StorageServer",
    "SystemConfig",
    "SystemKind",
    "SystemReport",
    "TABLE2_GROUPS",
    "UniqueChunkPredictor",
    "write_commit_latency",
]

"""The public storage-server facade.

:class:`StorageServer` wraps either end-to-end system behind the simple
block API a client of the paper's server would see: chunk-aligned writes
that are acknowledged immediately, strongly-consistent reads, and a
flush for shutdown.  The underlying system object stays reachable for
accounting (``server.system.report()``) and the common questions have
direct helpers.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List

from .. import obs as _obs
from ..datared.dedup import EngineStats, ReductionStats
from .accounting import SystemReport
from .base import ReductionSystem
from .baseline import BaselineSystem
from .fidr import FidrSystem

__all__ = ["SystemKind", "StorageServer"]


class SystemKind(enum.Enum):
    """Which architecture the server runs."""

    BASELINE = "baseline"
    FIDR = "fidr"


class StorageServer:
    """A deduplicating, compressing block store over simulated devices.

    Example
    -------
    >>> server = StorageServer.build(SystemKind.FIDR)
    >>> server.write(0, b"x" * 4096)
    >>> server.read(0, 1) == b"x" * 4096
    True
    """

    def __init__(self, system: ReductionSystem):
        self.system = system

    @classmethod
    def build(cls, kind: SystemKind = SystemKind.FIDR, **kwargs) -> "StorageServer":
        """Construct a server of the given architecture.

        ``kwargs`` pass through to the system constructor (``server``,
        ``config``, ``num_buckets``, ``cache_lines``, ``compressor`` and
        the architecture-specific knobs).
        """
        if kind is SystemKind.BASELINE:
            return cls(BaselineSystem(**kwargs))
        if kind is SystemKind.FIDR:
            return cls(FidrSystem(**kwargs))
        raise ValueError(f"unknown system kind {kind!r}")

    # -- block API ---------------------------------------------------------------
    def write(self, lba: int, payload: bytes) -> None:
        """Write ``payload`` at chunk-aligned ``lba`` (immediate ack)."""
        self.system.write(lba, payload)

    def read(self, lba: int, num_chunks: int = 1) -> bytes:
        """Read ``num_chunks`` chunks starting at chunk-aligned ``lba``."""
        return self.system.read(lba, num_chunks)

    def flush(self) -> None:
        """Drain staged writes and seal the open container."""
        self.system.flush()

    def trim(self, lba: int, num_chunks: int = 1) -> None:
        """Drop ``num_chunks`` chunk-aligned LBAs' mappings (TRIM).

        The scatter-gather router issues these to evict an LBA's stale
        mapping from a backend the LBA no longer lives on; trimmed LBAs
        read back as zeros.
        """
        self.system.trim(lba, num_chunks)

    # -- snapshots -----------------------------------------------------------------
    def create_snapshot(self, name: str) -> int:
        """Pin the current acked state under ``name`` (O(1) CoW).

        Returns the number of pinned chunk mappings.  The protocol's
        ``SNAP`` op (v2) dispatches here.
        """
        return self.system.create_snapshot(name)

    def delete_snapshot(self, name: str) -> int:
        """Drop snapshot ``name``; returns chunks reclaimed."""
        return self.system.delete_snapshot(name)

    def snapshots(self) -> List[str]:
        """Names of the live snapshots."""
        return self.system.snapshots()

    def read_snapshot(self, name: str, lba: int, num_chunks: int = 1) -> bytes:
        """Read chunk-aligned data as of snapshot ``name``."""
        return self.system.read_snapshot(name, lba, num_chunks)

    # -- introspection -------------------------------------------------------------
    @property
    def reduction_stats(self) -> ReductionStats:
        """Dedup/compression effectiveness so far."""
        return self.system.engine.stats

    @property
    def engine_stats(self) -> EngineStats:
        """Typed, lock-consistent snapshot of every engine ledger."""
        return self.system.engine.stats_snapshot()

    def stats_snapshot(self) -> Dict[str, Any]:
        """The ``repro.stats/v1`` snapshot this server publishes into its
        engine's registry — the same shape the protocol's STATS op
        serves over the wire."""
        return _obs.snapshot(self.system.engine.registry)

    @property
    def chunk_size(self) -> int:
        return self.system.engine.chunker.chunk_size

    def report(self) -> SystemReport:
        """Full device-accounting report for the processed workload."""
        return self.system.report()

    # -- lifecycle -----------------------------------------------------------------
    def close(self) -> None:
        """Drain, fence the journal (when armed) and release workers.

        Delegates to :meth:`ReductionSystem.close`; idempotent.  This is
        the uniform end of the engine lifecycle API — CLIs and examples
        use ``with StorageServer.build(...) as server: ...`` instead of
        ad-hoc flush-on-the-way-out teardown.
        """
        self.system.close()

    def __enter__(self) -> "StorageServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""Shared scaffold for the two end-to-end systems (baseline and FIDR).

A :class:`ReductionSystem` owns one functional data-reduction stack —
dedup engine, Hash-PBN table over a :class:`~repro.cache.TableCache`
backed by table SSDs, containers accounted to data SSDs — plus the
device ledgers.  Subclasses differ **only** in flow topology: which
devices move the bytes, which memory paths get charged, which tasks the
host CPU pays for.  That is the paper's thesis rendered as code
structure: both systems do identical logical work; the architecture
decides who pays.

Writes accumulate into batches of ``config.batch_chunks`` before the
backend runs (both CIDR's predictor and FIDR's NIC operate on batches);
reads are strongly consistent (subclasses either flush first or serve
from their staging buffer).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cache.table_cache import CacheIndex, TableCache
from ..errors import AlignmentError
from ..datared.chunking import Chunk
from ..datared.compression import Compressor
from ..datared.container import Container
from ..datared.dedup import ChunkOutcome, WriteOptions
from ..hw.cpu import CpuLedger
from ..hw.memory import MemoryLedger
from ..hw.pcie import PcieTopology
from ..hw.specs import PROTOTYPE_SERVER, ServerSpec
from ..hw.ssd import SsdArray, SsdBucketStore
from ..obs import trace as _trace
from ..obs.trace import TracedStages
from ..parallel import StagePool
from .accounting import SystemReport
from .config import SystemConfig
from .factory import build_engine

__all__ = ["CacheDelta", "ReductionSystem"]


@dataclass
class CacheDelta:
    """What the table-cache stack did during one batch of chunks."""

    content_scans: int = 0
    fetches: int = 0
    flushes: int = 0
    evictions: int = 0
    host_bytes_read: int = 0
    host_bytes_written: int = 0
    tree_searches: int = 0
    tree_updates: int = 0
    tree_node_visits: int = 0
    table_ssd_reads: int = 0
    table_ssd_writes: int = 0
    table_ssd_read_bytes: float = 0.0
    table_ssd_write_bytes: float = 0.0


class ReductionSystem:
    """Base class wiring the functional stack to the ledgers."""

    #: Who runs the table SSDs' NVMe queues ("host" or "engine", §6.1).
    TABLE_QUEUE_OWNER = "host"
    name = "abstract"

    def __init__(
        self,
        server: Optional[ServerSpec] = None,
        config: Optional[SystemConfig] = None,
        num_buckets: int = 1 << 15,
        cache_lines: int = 1024,
        compressor: Optional[Compressor] = None,
    ):
        """``compressor`` overrides the config's codec policy with a
        ready-built :class:`~repro.datared.compression.Compressor`
        instance.  (The codec-name *string* form deprecated since the
        codec-policy release is gone — set
        ``SystemConfig(codec=CodecPolicy(codec=...))`` instead.)"""
        self.server = server if server is not None else PROTOTYPE_SERVER
        self.config = config if config is not None else SystemConfig()
        if isinstance(compressor, str):
            raise TypeError(
                "codec name strings are no longer accepted as "
                "ReductionSystem's compressor=; use "
                "SystemConfig(codec=CodecPolicy(codec=...))"
            )

        # Device ledgers.  Charged only while the engine lock is held
        # (every client entry point below takes it), so byte/cycle
        # accounting stays exact under concurrent callers.
        self.memory = MemoryLedger(self.server.dram)  # guarded-by: self.lock
        self.cpu = CpuLedger(self.server.cpu)  # guarded-by: self.lock
        self.pcie = self._build_topology()  # guarded-by: self.lock

        # Functional storage stack.
        self.table_array = SsdArray(
            self.server.num_table_ssds, self.server.table_ssd, name="table-ssd"
        )
        self.data_array = SsdArray(
            self.server.num_data_ssds, self.server.data_ssd, name="data-ssd"
        )
        backing = SsdBucketStore(self.table_array, queue_owner=self.TABLE_QUEUE_OWNER)
        self.table_cache = TableCache(
            backing,
            capacity_lines=cache_lines,
            index=self._make_index(),
            eviction_batch=self.config.eviction_batch,
        )
        #: Shared fan-out pool for the GIL-releasing stages; serial (no
        #: workers) unless ``config.parallelism`` > 1.  The backend
        #: (``config.executor``) picks threads or processes.
        self.pool = StagePool(
            self.config.parallelism, backend=self.config.executor
        )
        #: Built through the R009 factory: ``config.shards`` decides
        #: between the plain engine over the table cache and the
        #: fingerprint-sharded engine (DESIGN.md §5.7).
        self.engine = build_engine(
            self.config,
            num_buckets=num_buckets,
            table_store=self.table_cache,
            compressor=compressor,
            on_seal=self._on_container_seal,
            pool=self.pool,
        )
        #: Always-installed stage tracing.  While tracing is disabled
        #: the clock reports itself inactive and the engine takes its
        #: clock-less fast path, so this costs one attribute read per
        #: batch; enabling tracing at runtime lights up the per-stage
        #: spans with no reconfiguration.
        self.engine.stage_clock = TracedStages()

        #: One lock for the whole stack: the engine's.  It is reentrant,
        #: so system entry points lock once and the engine's own locked
        #: entry points nest for free.
        self.lock = self.engine.lock  # lock: dedup-engine
        self.logical_write_bytes = 0.0  # guarded-by: self.lock
        self.logical_read_bytes = 0.0  # guarded-by: self.lock
        self._pending: List[Chunk] = []  # guarded-by: self.lock
        self._closed = False  # guarded-by: self.lock
        if os.environ.get("REPRO_RACE_DETECT"):
            # The engine wrapped its own metadata already (it saw the
            # same environment variable); add the device ledgers.
            from ..analysis import racecheck

            racecheck.watch_system(self)

    # -- subclass hooks --------------------------------------------------------------
    def _build_topology(self) -> PcieTopology:
        raise NotImplementedError

    def _make_index(self) -> CacheIndex:
        raise NotImplementedError

    def _enqueue(self, chunk: Chunk) -> None:
        """Stage one incoming chunk (host buffer vs. NIC buffer)."""
        raise NotImplementedError

    def _process_batch(self, chunks: List[Chunk]) -> None:
        """Run the backend write flow for one staged batch."""
        raise NotImplementedError

    def _read_chunk(self, lba: int) -> bytes:
        """Run the read flow for one chunk-aligned LBA."""
        raise NotImplementedError

    def _on_container_seal(self, container: Container) -> None:
        """Charge the sealed container's trip to the data SSDs."""
        raise NotImplementedError

    # -- client API --------------------------------------------------------------------
    def write(self, lba: int, payload: bytes) -> None:
        """Client write at chunk-aligned ``lba`` (ack is immediate;
        the backend runs when a batch fills).

        Staged chunks hold *views* of ``payload`` until their batch is
        processed (DESIGN.md §5.4), so the buffer must not be mutated
        after submission — the serving layer hands immutable ``bytes``
        decoded from the wire, which satisfies this for free.
        """
        chunks = self.engine.chunker.split(lba, payload)
        with self.lock:
            for chunk in chunks:
                self.logical_write_bytes += len(chunk.data)
                self._enqueue(chunk)
                self._pending.append(chunk)
            while len(self._pending) >= self.config.batch_chunks:
                batch = self._pending[: self.config.batch_chunks]
                del self._pending[: self.config.batch_chunks]
                with _trace.span("system.batch", chunks=len(batch)):
                    self._process_batch(batch)

    def flush(self) -> None:
        """Drain staged writes and seal the open container."""
        with self.lock:
            if self._pending:
                batch, self._pending = self._pending, []
                with _trace.span("system.batch", chunks=len(batch)):
                    self._process_batch(batch)
            self.engine.flush()

    def trim(self, lba: int, num_chunks: int = 1) -> None:
        """TRIM ``num_chunks`` chunk-aligned LBAs: drop their mappings.

        Staged writes drain first — the client was acked before its
        batch processed, so the trim must apply to the newest acked
        state (and draining also clears any NIC-buffered copy a read
        could otherwise still hit).  Trimmed LBAs read back as zeros.
        """
        if num_chunks < 1:
            raise AlignmentError("must trim at least one chunk")
        step = self.engine.chunker.blocks_per_chunk
        if lba % step != 0:
            raise AlignmentError(f"LBA {lba} is not chunk-aligned")
        with self.lock:
            if self._pending:
                batch, self._pending = self._pending, []
                with _trace.span("system.batch", chunks=len(batch)):
                    self._process_batch(batch)
            for position in range(num_chunks):
                self.engine.trim(lba + position * step)

    def read(self, lba: int, num_chunks: int = 1) -> bytes:
        """Client read of ``num_chunks`` chunks at chunk-aligned ``lba``."""
        if num_chunks < 1:
            raise AlignmentError("must read at least one chunk")
        step = self.engine.chunker.blocks_per_chunk
        if lba % step != 0:
            raise AlignmentError(f"LBA {lba} is not chunk-aligned")
        pieces = []
        with self.lock:
            for position in range(num_chunks):
                piece = self._read_chunk(lba + position * step)
                self.logical_read_bytes += len(piece)
                pieces.append(piece)
        return b"".join(pieces)

    # -- snapshots ---------------------------------------------------------------------
    def create_snapshot(self, name: str) -> int:
        """Pin the current acked state under ``name`` (O(1) CoW).

        Staged writes drain first: a client acked before its batch
        processed must be inside the snapshot, the same drain-first rule
        :meth:`trim` follows.  Returns the number of pinned chunks.
        """
        with self.lock:
            if self._pending:
                batch, self._pending = self._pending, []
                with _trace.span("system.batch", chunks=len(batch)):
                    self._process_batch(batch)
            return self.engine.create_snapshot(name)

    def delete_snapshot(self, name: str) -> int:
        """Drop snapshot ``name``; returns chunks reclaimed by unpinning."""
        with self.lock:
            return self.engine.delete_snapshot(name).reclaimed_chunks

    def snapshots(self) -> List[str]:
        """Names of the live snapshots."""
        with self.lock:
            return self.engine.snapshots()

    def read_snapshot(self, name: str, lba: int, num_chunks: int = 1) -> bytes:
        """Read ``num_chunks`` chunks at ``lba`` as of snapshot ``name``.

        Served straight from the pinned metadata tree — a management
        read outside the modeled client data path, so no device ledger
        charges (the functional bytes are still exact).
        """
        if num_chunks < 1:
            raise AlignmentError("must read at least one chunk")
        step = self.engine.chunker.blocks_per_chunk
        if lba % step != 0:
            raise AlignmentError(f"LBA {lba} is not chunk-aligned")
        with self.lock:
            return self.engine.read_snapshot(name, lba, num_chunks).data

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Drain, seal, fence and release: the end of the lifecycle API.

        Flushes staged writes (their clients were already acked), closes
        the engine — which seals the open container and, when a journal
        is armed, writes the final commit fence — and stops the shared
        stage pool.  Idempotent, so ``with system: ...`` plus an
        explicit late ``close()`` is safe.
        """
        with self.lock:
            if self._closed:
                return
            if self._pending:
                batch, self._pending = self._pending, []
                with _trace.span("system.batch", chunks=len(batch)):
                    self._process_batch(batch)
            self.engine.close()
            self._closed = True
        self.pool.shutdown()

    def __enter__(self) -> "ReductionSystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- delta capture -----------------------------------------------------------------
    def _snapshot(self) -> Tuple:
        stats = self.table_cache.stats
        array = self.table_array.stats
        index = self.table_cache.index
        visits = getattr(index, "node_visits", 0)
        return (
            stats.content_scans,
            stats.fetches,
            stats.flushes,
            stats.evictions,
            stats.host_bytes_read,
            stats.host_bytes_written,
            index.searches,
            index.updates,
            visits,
            array.read_ops,
            array.write_ops,
            array.bytes_read,
            array.bytes_written,
        )

    def _delta_since(self, snapshot: Tuple) -> CacheDelta:
        now = self._snapshot()
        return CacheDelta(
            content_scans=now[0] - snapshot[0],
            fetches=now[1] - snapshot[1],
            flushes=now[2] - snapshot[2],
            evictions=now[3] - snapshot[3],
            host_bytes_read=now[4] - snapshot[4],
            host_bytes_written=now[5] - snapshot[5],
            tree_searches=now[6] - snapshot[6],
            tree_updates=now[7] - snapshot[7],
            tree_node_visits=now[8] - snapshot[8],
            table_ssd_reads=now[9] - snapshot[9],
            table_ssd_writes=now[10] - snapshot[10],
            table_ssd_read_bytes=now[11] - snapshot[11],
            table_ssd_write_bytes=now[12] - snapshot[12],
        )

    def _dedup_batch(
        self,
        chunks: List[Chunk],
        digests: Optional[List[bytes]] = None,
    ) -> Tuple[List[ChunkOutcome], CacheDelta]:
        """Run the functional dedup write for a batch, capturing what the
        table-cache stack did on its behalf.

        The batch goes through the stage-split
        :meth:`~repro.datared.dedup.DedupEngine.write_many`, so hashing
        and compression fan out on the shared pool while every
        table-cache access (and hence every ledger charge captured
        here) happens on this thread, in chunk order, exactly as the
        serial per-chunk path would issue it.

        ``digests`` optionally carries per-chunk fingerprints already
        computed upstream (FIDR's NIC hashes on ingest); the engine then
        skips its hash stage entirely.
        """
        snapshot = self._snapshot()
        reports = self.engine.write_many(
            [(chunk.lba, chunk.data) for chunk in chunks],
            WriteOptions(digests=digests) if digests is not None else None,
        )
        outcomes = [
            outcome for report in reports for outcome in report.chunks
        ]
        return outcomes, self._delta_since(snapshot)

    # -- reporting ----------------------------------------------------------------------
    def report(self) -> SystemReport:
        """Build the projection-ready report for the processed workload."""
        index = self.table_cache.index
        return SystemReport(
            name=self.name,
            server=self.server,
            logical_write_bytes=self.logical_write_bytes,
            logical_read_bytes=self.logical_read_bytes,
            memory=self.memory,
            cpu=self.cpu,
            pcie=self.pcie,
            cache_stats=self.table_cache.stats,
            reduction=self.engine.stats,
            tree_node_visits=getattr(index, "node_visits", 0),
            engine_tree_updates=(
                index.updates if self.TABLE_QUEUE_OWNER == "engine" else 0
            ),
            predictor_accuracy=self._predictor_accuracy(),
            nic_buffer_hit_rate=self._nic_buffer_hit_rate(),
        )

    def _predictor_accuracy(self) -> Optional[float]:
        return None

    def _nic_buffer_hit_rate(self) -> Optional[float]:
        return None

"""Discrete-event simulation of the end-to-end write pipeline.

The Figure-14 solver computes each configuration's throughput as the
minimum of closed-form resource ceilings.  This module cross-validates
that with an actual *queueing* simulation: batches of chunks flow as
concurrent processes through shared-bandwidth resources (host DRAM, CPU,
PCIe root complex, Cache HW-Engine, data SSDs), each batch demanding
from every resource exactly what the measured
:class:`~repro.systems.accounting.SystemReport` says a batch costs in
that architecture.

Beyond validating the solver (they agree within a few percent at
saturation — asserted in the test suite), the simulation yields what a
closed form cannot: the latency-versus-load curve and per-stage
utilizations under partial load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cache.cache_engine import CacheEngineConfig, CacheEngineModel
from ..sim.core import Simulator
from ..sim.resources import Resource
from ..sim.stats import StreamingSummary
from .accounting import SystemReport

__all__ = ["PipelineResult", "simulate_write_pipeline", "simulate_read_pipeline"]


class _StageServer:
    """A pipeline stage as a FIFO server: one batch in service at a
    time, service time = the batch's demand at the resource's full rate.

    (A fair-share pipe would let identical batches convoy through every
    stage in lockstep, hiding pipelining entirely; FIFO service is the
    standard pipeline abstraction and matches the solver's semantics —
    stage capacity = resource rate.)
    """

    def __init__(self, sim: Simulator, rate: float, name: str):
        self.sim = sim
        self.rate = rate
        self.name = name
        self._gate = Resource(sim, capacity=1)
        self.busy_time = 0.0

    def serve(self, demand: float):
        yield self._gate.acquire()
        service = demand / self.rate
        yield self.sim.timeout(service)
        self.busy_time += service
        self._gate.release()

    def utilization(self) -> float:
        return self.busy_time / self.sim.now if self.sim.now else 0.0


@dataclass
class PipelineResult:
    """Outcome of one pipeline simulation."""

    throughput_bytes_per_s: float
    mean_batch_latency_s: float
    p99ish_batch_latency_s: float  #: max observed (small samples)
    stage_utilization: Dict[str, float]
    batches: int
    outstanding: int

    @property
    def bottleneck(self) -> str:
        return max(self.stage_utilization, key=self.stage_utilization.get)


def simulate_write_pipeline(
    report: SystemReport,
    batch_chunks: int = 64,
    num_batches: int = 400,
    outstanding: int = 16,
    use_cache_engine: bool = False,
    tree_window: int = 4,
    engine_config: Optional[CacheEngineConfig] = None,
) -> PipelineResult:
    """Run ``num_batches`` write batches through the measured pipeline.

    ``outstanding`` bounds the batches in flight (the client's window);
    small windows show latency, large ones saturate the bottleneck.
    Stage demands are *per-client-byte intensities* taken from
    ``report``, so the simulation reflects whichever architecture and
    workload produced it.
    """
    if report.logical_write_bytes <= 0:
        raise ValueError("report covers no written bytes")
    if outstanding < 1 or num_batches < 1:
        raise ValueError("need at least one batch in flight")

    chunk_size = 4096
    batch_bytes = batch_chunks * chunk_size
    logical = report.logical_bytes

    # Per-client-byte intensities measured by the system run.
    dram_per_byte = report.memory.total_bytes / logical
    cpu_cycles_per_byte = report.cpu.total_cycles / logical
    root_per_byte = report.pcie.root_complex_bytes / logical
    stored_per_byte = report.reduction.stored_bytes / logical

    sim = Simulator()
    server = report.server
    pipes: Dict[str, _StageServer] = {
        "host_dram": _StageServer(sim, server.dram.peak_bw, "dram"),
        "host_cpu": _StageServer(
            sim, server.cpu.total_cycles_per_s, "cpu"
        ),
        "pcie_root": _StageServer(sim, server.socket_pcie_bw, "root"),
        "data_ssd": _StageServer(
            sim,
            server.data_ssd.write_bw * server.num_data_ssds,
            "ssd",
        ),
    }
    demands: Dict[str, float] = {
        "host_dram": dram_per_byte * batch_bytes,
        "host_cpu": cpu_cycles_per_byte * batch_bytes,
        "pcie_root": root_per_byte * batch_bytes,
        "data_ssd": stored_per_byte * batch_bytes,
    }
    if use_cache_engine:
        model = CacheEngineModel(
            engine_config if engine_config is not None else CacheEngineConfig()
        )
        chunks = report.logical_write_bytes / chunk_size
        miss_rate = (
            min(1.0, report.cache_stats.fetches / chunks) if chunks else 0.0
        )
        engine_rate = model.analytic_throughput(
            miss_rate, window=tree_window
        ).throughput
        pipes["cache_engine"] = _StageServer(sim, engine_rate, "engine")
        demands["cache_engine"] = float(batch_bytes)

    latencies = StreamingSummary()
    window = {"slots": outstanding, "waiters": []}
    completed = {"count": 0, "last_finish": 0.0}

    def batch_process():
        start = sim.now
        # Stages proceed in flow order; each is a fair-shared resource.
        for stage in ("pcie_root", "host_dram", "host_cpu",
                      "cache_engine", "data_ssd"):
            pipe = pipes.get(stage)
            if pipe is None:
                continue
            demand = demands[stage]
            if demand > 0:
                yield from pipe.serve(demand)
        latencies.add(sim.now - start)
        completed["count"] += 1
        completed["last_finish"] = sim.now
        window["slots"] += 1
        if window["waiters"]:
            window["waiters"].pop(0).succeed(None)

    def generator():
        for _ in range(num_batches):
            if window["slots"] == 0:
                gate = sim.event()
                window["waiters"].append(gate)
                yield gate
            window["slots"] -= 1
            sim.spawn(batch_process())
            yield sim.timeout(0.0)

    sim.spawn(generator())
    sim.run()

    elapsed = completed["last_finish"]
    total_bytes = completed["count"] * batch_bytes
    return PipelineResult(
        throughput_bytes_per_s=total_bytes / elapsed if elapsed else 0.0,
        mean_batch_latency_s=latencies.mean,
        p99ish_batch_latency_s=latencies.maximum,
        stage_utilization={
            name: pipe.utilization() for name, pipe in pipes.items()
        },
        batches=completed["count"],
        outstanding=outstanding,
    )


def simulate_read_pipeline(
    report: SystemReport,
    batch_chunks: int = 64,
    num_batches: int = 300,
    outstanding: int = 16,
    fidr_datapath: bool = False,
    decompress_bw: float = 12.8e9,
) -> PipelineResult:
    """Batched 4-KB reads through the measured read datapath.

    The stage set follows the architecture: the baseline's reads cross
    host DRAM twice and take two software passes (Figure 2b); with
    ``fidr_datapath=True`` the SSD → Decompression Engine → NIC chain is
    peer-to-peer, so the host stages shrink to the LBA lookup and NVMe
    submission work the report actually charged (Figure 6b).  Per-batch
    demands come from the measured per-byte intensities, like the write
    pipeline.
    """
    if report.logical_read_bytes <= 0:
        raise ValueError("report covers no read bytes")
    if outstanding < 1 or num_batches < 1:
        raise ValueError("need at least one batch in flight")

    chunk_size = 4096
    batch_bytes = batch_chunks * chunk_size
    logical = report.logical_bytes
    stored_fraction = (
        report.reduction.compression_ratio
        if report.reduction.unique_logical_bytes
        else 0.5
    )

    sim = Simulator()
    server = report.server
    stages: Dict[str, _StageServer] = {
        "data_ssd": _StageServer(
            sim, server.data_ssd.read_bw * server.num_data_ssds, "ssd"
        ),
        "decompress": _StageServer(sim, decompress_bw, "decompress"),
        "host_cpu": _StageServer(sim, server.cpu.total_cycles_per_s, "cpu"),
        "pcie_root": _StageServer(sim, server.socket_pcie_bw, "root"),
    }
    demands: Dict[str, float] = {
        "data_ssd": stored_fraction * batch_bytes,
        "decompress": float(batch_bytes),
        # CPU/root intensities measured over the whole workload scale to
        # this batch of logical bytes.
        "host_cpu": report.cpu.total_cycles / logical * batch_bytes,
        "pcie_root": report.pcie.root_complex_bytes / logical * batch_bytes,
    }
    if not fidr_datapath:
        # Baseline: compressed data lands in DRAM, decompressed data
        # lands again (Figure 2b's two store-and-forward hops).
        stages["host_dram"] = _StageServer(sim, server.dram.peak_bw, "dram")
        demands["host_dram"] = (1.0 + stored_fraction) * 2 * batch_bytes

    latencies = StreamingSummary()
    window = {"slots": outstanding, "waiters": []}
    completed = {"count": 0, "last_finish": 0.0}
    order = ("host_cpu", "data_ssd", "host_dram", "decompress", "pcie_root")

    def batch_process():
        start = sim.now
        for stage_name in order:
            stage = stages.get(stage_name)
            if stage is None:
                continue
            demand = demands.get(stage_name, 0.0)
            if demand > 0:
                yield from stage.serve(demand)
        latencies.add(sim.now - start)
        completed["count"] += 1
        completed["last_finish"] = sim.now
        window["slots"] += 1
        if window["waiters"]:
            window["waiters"].pop(0).succeed(None)

    def generator():
        for _ in range(num_batches):
            if window["slots"] == 0:
                gate = sim.event()
                window["waiters"].append(gate)
                yield gate
            window["slots"] -= 1
            sim.spawn(batch_process())
            yield sim.timeout(0.0)

    sim.spawn(generator())
    sim.run()

    elapsed = completed["last_finish"]
    total_bytes = completed["count"] * batch_bytes
    return PipelineResult(
        throughput_bytes_per_s=total_bytes / elapsed if elapsed else 0.0,
        mean_batch_latency_s=latencies.mean,
        p99ish_batch_latency_s=latencies.maximum,
        stage_utilization={
            name: stage.utilization() for name, stage in stages.items()
        },
        batches=completed["count"],
        outstanding=outstanding,
    )

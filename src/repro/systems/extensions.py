"""FIDR extensions the paper names but leaves unbuilt.

Two come from the paper's own text:

* **NVMe read-stack offload** (§7.5): Read-Mixed throughput stops
  scaling because the data-SSD software stack stays on the CPU — "We can
  also offload this NVMe software stack to FPGA, but we left it as
  future work."  :class:`ExtendedFidrSystem` with
  ``nvme_read_offload=True`` moves read submission/completion queues to
  the Decompression Engine, the same trick §6.1 already applies to table
  SSDs.
* **Hot-block read caching** (§8): for skewed read access "we can extend
  FIDR software and the LBA-PBA table to maintain frequently accessed
  blocks in main memory."  :class:`HotReadCache` is that extension — a
  host-DRAM cache of decompressed chunks with second-access admission,
  so one-touch scans don't flush it.

Both are opt-in and default off, so the plain :class:`FidrSystem`
remains exactly the paper's system.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import CapacityError
from ..hw.pcie import HOST
from .accounting import CpuTask, MemPath
from .fidr import FidrSystem, _DATA_SSD, _DECOMP, _NIC

__all__ = ["HotReadCache", "ExtendedFidrSystem"]


class HotReadCache:
    """Host-memory cache of decompressed chunks for skewed reads.

    Admission is frequency-gated: a chunk is cached only on its second
    read while it is tracked in the ghost list (first reads merely leave
    a marker), so sequential scans cannot evict the genuinely hot set.
    Any write to an LBA invalidates its cached copy.
    """

    def __init__(self, capacity_chunks: int, ghost_entries: Optional[int] = None):
        if capacity_chunks < 1:
            raise CapacityError("capacity must be at least one chunk")
        self.capacity = capacity_chunks
        self._data: "OrderedDict[int, bytes]" = OrderedDict()
        self._ghost: "OrderedDict[int, None]" = OrderedDict()
        self._ghost_capacity = (
            ghost_entries if ghost_entries is not None else capacity_chunks * 4
        )
        self.hits = 0
        self.misses = 0

    def get(self, lba: int) -> Optional[bytes]:
        data = self._data.get(lba)
        if data is not None:
            self._data.move_to_end(lba)
            self.hits += 1
            return data
        self.misses += 1
        return None

    def offer(self, lba: int, data: bytes) -> bool:
        """Consider caching a chunk just served; returns True if cached."""
        if lba in self._data:
            self._data[lba] = data
            self._data.move_to_end(lba)
            return True
        if lba not in self._ghost:
            # First sight: remember it, do not cache yet.
            self._ghost[lba] = None
            if len(self._ghost) > self._ghost_capacity:
                self._ghost.popitem(last=False)
            return False
        del self._ghost[lba]
        self._data[lba] = data
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
        return True

    def invalidate(self, lba: int) -> None:
        self._data.pop(lba, None)
        self._ghost.pop(lba, None)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._data)


class ExtendedFidrSystem(FidrSystem):
    """FIDR plus the paper's future-work/discussion features."""

    name = "FIDR (extended)"

    def __init__(
        self,
        *args,
        nvme_read_offload: bool = False,
        hot_read_cache_chunks: int = 0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.nvme_read_offload = nvme_read_offload
        self.hot_read_cache = (
            HotReadCache(hot_read_cache_chunks) if hot_read_cache_chunks else None
        )
        if nvme_read_offload:
            self.name = "FIDR (+NVMe read offload)"
        if self.hot_read_cache is not None:
            self.name += " (+hot read cache)"

    # -- write path: invalidate cached copies -------------------------------------------
    def _enqueue(self, chunk) -> None:
        if self.hot_read_cache is not None:
            self.hot_read_cache.invalidate(chunk.lba)
        super()._enqueue(chunk)

    # -- read path (Figure 6b, extended) -----------------------------------------------------
    def _read_chunk(self, lba: int) -> bytes:
        costs = self.config.cpu

        # NIC write-buffer lookup still comes first (steps 1-2).
        buffered = self.nic.lookup_read(lba)
        if buffered is not None:
            return buffered

        # §8 extension: frequently-read blocks served from host DRAM.
        if self.hot_read_cache is not None:
            cached = self.hot_read_cache.get(lba)
            if cached is not None:
                self.memory.read(MemPath.HOT_READ, len(cached))
                self.pcie.transfer(HOST, _NIC, len(cached))
                self.nic.send_read_data(cached)
                self.cpu.charge(CpuTask.LBA_MAP, costs.lba_map_lookup)
                return cached

        self.pcie.transfer(_NIC, HOST, 8)
        self.cpu.charge(CpuTask.LBA_MAP, costs.lba_map_lookup)
        self.cpu.charge(CpuTask.DEVICE_MANAGER, costs.device_manager_per_chunk)

        report = self.engine.read(lba, 1)
        stored = report.stored_bytes_read
        logical = len(report.data)

        if stored:
            self.data_array.drives[lba % len(self.data_array)].account_read(stored)
            if not self.nvme_read_offload:
                # Paper configuration: the host NVMe stack issues the read.
                self.cpu.charge(CpuTask.DATA_SSD, costs.data_ssd_read_io)
            # With offload, the Decompression Engine owns the queue pair
            # and the host only sees the batched completion (free at the
            # per-chunk level — the same argument as §6.1's table SSDs).
            self.pcie.transfer(_DATA_SSD, _DECOMP, stored)
            self.decompression.traffic.pcie_in += stored
            self.decompression.traffic.pcie_out += logical
            self.decompression.traffic.payload_processed += logical
            self.pcie.transfer(_DECOMP, _NIC, logical)
        self.nic.send_read_data(report.data)

        if self.hot_read_cache is not None and stored:
            if self.hot_read_cache.offer(lba, report.data):
                # Caching the block costs one DRAM write.
                self.memory.write(MemPath.HOT_READ, logical)
        return report.data

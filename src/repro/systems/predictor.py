"""The CIDR unique-chunk predictor (paper §2.3, Observation #3).

CIDR integrates hashing and compression on one FPGA; since compression
must only run on chunks that survive deduplication, the host predicts
uniqueness *before* the batch ships so both core types can work on one
transfer.  The paper identifies this predictor as a first-class
bottleneck: it re-reads every buffered chunk (≈24% of host memory
bandwidth) and burns ≈33% of baseline CPU.

This is a functional re-implementation: a content-sampling Bloom filter
over weak chunk sketches.  Prediction quality is emergent — duplicates
of previously seen content are predicted duplicate; Bloom aliasing can
also mispredict fresh content as duplicate, and first-occurrence chunks
are always mispredicted unique... which is exactly why CIDR's scheduling
needs a validation pass (our baseline charges the correction traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["PredictionStats", "UniqueChunkPredictor"]


def _sketch(data: bytes) -> int:
    """A cheap content sketch: samples spread across the chunk.

    Mirrors the predictor's trick of not hashing the full chunk (that is
    the FPGA's job) — it samples a few cache lines and mixes them.
    """
    probes = (data[0:8], data[len(data) // 2 : len(data) // 2 + 8], data[-8:])
    mixed = 0xCBF29CE484222325
    for probe in probes:
        for byte in probe:
            mixed ^= byte
            mixed = (mixed * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return mixed


@dataclass
class PredictionStats:
    """Confusion matrix of the predictor."""

    true_unique: int = 0  #: predicted unique, actually unique
    true_duplicate: int = 0
    false_unique: int = 0  #: predicted unique, actually duplicate
    false_duplicate: int = 0  #: predicted duplicate, actually unique

    @property
    def total(self) -> int:
        return (
            self.true_unique
            + self.true_duplicate
            + self.false_unique
            + self.false_duplicate
        )

    @property
    def accuracy(self) -> float:
        correct = self.true_unique + self.true_duplicate
        return correct / self.total if self.total else 0.0


class UniqueChunkPredictor:
    """Bloom-filter predictor over content sketches."""

    def __init__(self, num_bits: int = 1 << 22, num_hashes: int = 3):
        if num_bits < 8 or num_bits & (num_bits - 1):
            raise ValueError("num_bits must be a power of two >= 8")
        if num_hashes < 1:
            raise ValueError("need at least one hash")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray(num_bits // 8)
        self.stats = PredictionStats()

    def _positions(self, sketch: int) -> List[int]:
        positions = []
        value = sketch
        for _ in range(self.num_hashes):
            positions.append(value % self.num_bits)
            value = (value * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF
        return positions

    def predict_unique(self, data: bytes) -> bool:
        """Predict whether ``data`` is a unique (never stored) chunk,
        and remember its sketch for future predictions."""
        sketch = _sketch(data)
        positions = self._positions(sketch)
        seen = all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in positions
        )
        for pos in positions:
            self._bits[pos >> 3] |= 1 << (pos & 7)
        return not seen

    def record_outcome(self, predicted_unique: bool, actually_unique: bool) -> None:
        """Update the confusion matrix after dedup validated the batch."""
        if predicted_unique and actually_unique:
            self.stats.true_unique += 1
        elif predicted_unique and not actually_unique:
            self.stats.false_unique += 1
        elif not predicted_unique and actually_unique:
            self.stats.false_duplicate += 1
        else:
            self.stats.true_duplicate += 1

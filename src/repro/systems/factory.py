"""The one place a system constructs its dedup engine.

``repro-lint`` rule R009 bans direct ``DedupEngine(...)`` /
``ShardedDedupEngine(...)`` construction everywhere else in
``repro.systems`` and ``repro.net``: shard-count policy, table wiring
and the seal callback's thread-safety all live here, so a serving-layer
call site cannot quietly build an engine whose shard selection diverges
from the configured cluster (DESIGN.md §5.7).

``SystemConfig.shards == 1`` (the default) builds the exact engine the
pre-sharding systems built — the Hash-PBN table over the system's
:class:`~repro.cache.table_cache.TableCache`, containers charging the
data SSDs through ``on_seal`` — so the unsharded path is untouched.
``shards >= 2`` builds a
:class:`~repro.datared.sharded.ShardedDedupEngine` whose shards keep
private in-memory tables: bucket ids from different shards would
collide in the one shared bucket store, and the table-cache/device
charging model is calibrated for the unsharded walk, so sharded mode
trades the device-model fidelity of table caching for the scatter
parallelism (the per-shard byte ledgers stay exact).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..datared.compression import Compressor
from ..datared.container import Container, ContainerStore
from ..datared.dedup import DedupEngine
from ..datared.hash_pbn import BucketStore, HashPbnTable
from ..datared.sharded import ShardedDedupEngine
from ..obs.metrics import MetricsRegistry
from ..parallel import StagePool
from ..sync import DisciplinedLock
from .config import SystemConfig

__all__ = ["build_engine"]


def build_engine(
    config: SystemConfig,
    num_buckets: int = 1 << 15,
    table_store: Optional[BucketStore] = None,
    compressor: Optional[Compressor] = None,
    on_seal: Optional[Callable[[Container], None]] = None,
    pool: Optional[StagePool] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Union[DedupEngine, ShardedDedupEngine]:
    """Build the engine ``config`` asks for (the R009 factory).

    ``table_store`` backs the Hash-PBN table in the unsharded case
    (sharded engines keep per-shard private tables, see the module
    docstring); ``on_seal`` is the system's container-seal charge hook,
    wrapped with a lock for sharded engines because shard threads seal
    concurrently; ``pool`` is the shared hash/compress fan-out pool.
    """
    if config.shards < 1:
        raise ValueError(f"config.shards must be >= 1, got {config.shards}")
    resolved_compressor = (
        compressor if compressor is not None else config.codec.build_compressor()
    )
    fingerprinter = config.codec.build_fingerprinter()
    if config.shards == 1:
        return DedupEngine(
            table=HashPbnTable(
                num_buckets,
                store=table_store,
                packed=config.index_packed,
                negative_filter=config.index_filter,
            ),
            compressor=resolved_compressor,
            containers=ContainerStore(on_seal=on_seal),
            chunk_size=config.chunk_size,
            pool=pool,
            read_cache_chunks=config.read_cache_chunks,
            registry=registry,
            fingerprinter=fingerprinter,
            batched_resolve=config.index_batched,
        )

    seal_hook = on_seal
    if on_seal is not None:
        # Shard threads seal containers concurrently; the system's
        # ledger charges assume one mutator at a time, so serialize
        # the callback (ledger sums are order-independent).  Rank 30 in
        # repro.sync.LOCK_ORDER: the seal fires while the sealing
        # shard's dedup-engine lock (20) is held, so it must rank above
        # every engine lock — runtime lockdep observes exactly that
        # dedup-engine -> shard-seal edge under the stress harness.
        seal_lock = DisciplinedLock("shard-seal")
        captured = on_seal

        def locked_seal(container: Container) -> None:
            with seal_lock:
                captured(container)

        seal_hook = locked_seal

    def shard_factory(index: int) -> DedupEngine:
        return DedupEngine(
            table=HashPbnTable(
                num_buckets,
                packed=config.index_packed,
                negative_filter=config.index_filter,
            ),
            compressor=resolved_compressor,
            containers=ContainerStore(on_seal=seal_hook),
            chunk_size=config.chunk_size,
            pool=pool,
            read_cache_chunks=config.read_cache_chunks,
            registry=MetricsRegistry(),
            fingerprinter=fingerprinter,
            batched_resolve=config.index_batched,
        )

    return ShardedDedupEngine(
        config.shards,
        chunk_size=config.chunk_size,
        pool=pool,
        registry=registry,
        shard_factory=shard_factory,
    )

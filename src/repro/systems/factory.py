"""The one place a system constructs its dedup engine.

``repro-lint`` rule R009 bans direct ``DedupEngine(...)`` /
``ShardedDedupEngine(...)`` construction everywhere else in
``repro.systems`` and ``repro.net``: shard-count policy, table wiring
and the seal callback's thread-safety all live here, so a serving-layer
call site cannot quietly build an engine whose shard selection diverges
from the configured cluster (DESIGN.md §5.7).

``SystemConfig.shards == 1`` (the default) builds the exact engine the
pre-sharding systems built — the Hash-PBN table over the system's
:class:`~repro.cache.table_cache.TableCache`, containers charging the
data SSDs through ``on_seal`` — so the unsharded path is untouched.
``shards >= 2`` builds a
:class:`~repro.datared.sharded.ShardedDedupEngine` whose shards keep
private in-memory tables: bucket ids from different shards would
collide in the one shared bucket store, and the table-cache/device
charging model is calibrated for the unsharded walk, so sharded mode
trades the device-model fidelity of table caching for the scatter
parallelism (the per-shard byte ledgers stay exact).
"""

from __future__ import annotations

import concurrent.futures
from typing import Callable, List, Optional, Sequence, Union

from ..datared.compression import Compressor
from ..datared.container import Container, ContainerStore
from ..datared.dedup import DedupEngine
from ..datared.hash_pbn import BucketStore, HashPbnTable
from ..datared.journal import (
    MetadataJournal,
    RecoveryImage,
    RecoveryReport,
    recover_into,
)
from ..datared.sharded import ShardedDedupEngine
from ..obs.metrics import MetricsRegistry
from ..parallel import StagePool
from ..sync import DisciplinedLock
from .config import SystemConfig

__all__ = ["build_engine"]


def _make_journal(
    config: SystemConfig, registry: Optional[MetricsRegistry]
) -> Optional[MetadataJournal]:
    """The journal ``config.durability`` arms, or ``None`` when off."""
    if not config.durability.journal:
        return None
    return MetadataJournal(
        checkpoint_every_commits=config.durability.checkpoint_every_commits,
        registry=registry,
    )


def _one_image(
    recover_from: Union[RecoveryImage, Sequence[RecoveryImage]],
) -> RecoveryImage:
    if isinstance(recover_from, RecoveryImage):
        return recover_from
    images = list(recover_from)
    if len(images) != 1:
        raise ValueError(
            f"config.shards == 1 needs one RecoveryImage, got {len(images)}"
        )
    return images[0]


def build_engine(
    config: SystemConfig,
    num_buckets: int = 1 << 15,
    table_store: Optional[BucketStore] = None,
    compressor: Optional[Compressor] = None,
    on_seal: Optional[Callable[[Container], None]] = None,
    pool: Optional[StagePool] = None,
    registry: Optional[MetricsRegistry] = None,
    recover_from: Optional[
        Union[RecoveryImage, Sequence[RecoveryImage]]
    ] = None,
) -> Union[DedupEngine, ShardedDedupEngine]:
    """Build the engine ``config`` asks for (the R009 factory).

    ``table_store`` backs the Hash-PBN table in the unsharded case
    (sharded engines keep per-shard private tables, see the module
    docstring); ``on_seal`` is the system's container-seal charge hook,
    wrapped with a lock for sharded engines because shard threads seal
    concurrently; ``pool`` is the shared hash/compress fan-out pool.

    ``config.durability`` arms a group-commit metadata journal on the
    engine (one per shard when sharded).  ``recover_from`` rebuilds the
    engine from crash images instead of empty: one
    :class:`~repro.datared.journal.RecoveryImage` for ``shards == 1``, a
    sequence of exactly ``shards`` images (index-aligned with the shard
    order they were captured from) otherwise.  Recovered engines carry
    ``engine.recovery`` — a report for plain engines, a per-shard report
    list for sharded ones — and their surviving container stores are
    re-wired onto this build's ``on_seal`` hook.
    """
    if config.shards < 1:
        raise ValueError(f"config.shards must be >= 1, got {config.shards}")
    resolved_compressor = (
        compressor if compressor is not None else config.codec.build_compressor()
    )
    fingerprinter = config.codec.build_fingerprinter()
    if config.shards == 1:
        containers: Optional[ContainerStore] = None
        image: Optional[RecoveryImage] = None
        if recover_from is not None:
            image = _one_image(recover_from)
            containers = image.containers
            # The deep-copied (or resurrected) store still points at the
            # dead process's seal hook; this build's charging model owns
            # seals from here on.
            containers.on_seal = on_seal
        else:
            containers = ContainerStore(on_seal=on_seal)
        engine = DedupEngine(
            table=HashPbnTable(
                num_buckets,
                store=table_store,
                packed=config.index_packed,
                negative_filter=config.index_filter,
            ),
            compressor=resolved_compressor,
            containers=containers,
            chunk_size=config.chunk_size,
            pool=pool,
            read_cache_chunks=config.read_cache_chunks,
            registry=registry,
            fingerprinter=fingerprinter,
            batched_resolve=config.index_batched,
            journal=_make_journal(config, registry),
        )
        if image is not None:
            with engine.lock:  # lock: dedup-engine
                recover_into(engine, image.journal)
        return engine

    seal_hook = on_seal
    if on_seal is not None:
        # Shard threads seal containers concurrently; the system's
        # ledger charges assume one mutator at a time, so serialize
        # the callback (ledger sums are order-independent).  Rank 30 in
        # repro.sync.LOCK_ORDER: the seal fires while the sealing
        # shard's dedup-engine lock (20) is held, so it must rank above
        # every engine lock — runtime lockdep observes exactly that
        # dedup-engine -> shard-seal edge under the stress harness.
        seal_lock = DisciplinedLock("shard-seal")
        captured = on_seal

        def locked_seal(container: Container) -> None:
            with seal_lock:
                captured(container)

        seal_hook = locked_seal

    shard_images: Optional[List[RecoveryImage]] = None
    if recover_from is not None:
        if isinstance(recover_from, RecoveryImage):
            raise ValueError(
                f"config.shards == {config.shards} needs a sequence of "
                f"{config.shards} RecoveryImages, got a single image"
            )
        shard_images = list(recover_from)
        if len(shard_images) != config.shards:
            raise ValueError(
                f"config.shards == {config.shards} needs "
                f"{config.shards} RecoveryImages, got {len(shard_images)}"
            )

    def shard_factory(index: int) -> DedupEngine:
        shard_registry = MetricsRegistry()
        if shard_images is not None:
            shard_containers = shard_images[index].containers
            shard_containers.on_seal = seal_hook
        else:
            shard_containers = ContainerStore(on_seal=seal_hook)
        return DedupEngine(
            table=HashPbnTable(
                num_buckets,
                packed=config.index_packed,
                negative_filter=config.index_filter,
            ),
            compressor=resolved_compressor,
            containers=shard_containers,
            chunk_size=config.chunk_size,
            pool=pool,
            read_cache_chunks=config.read_cache_chunks,
            registry=shard_registry,
            fingerprinter=fingerprinter,
            batched_resolve=config.index_batched,
            journal=_make_journal(config, shard_registry),
        )

    engine = ShardedDedupEngine(
        config.shards,
        chunk_size=config.chunk_size,
        pool=pool,
        registry=registry,
        shard_factory=shard_factory,
    )
    if shard_images is not None:
        _recover_shards(engine, shard_images)
    return engine


def _recover_shards(
    engine: ShardedDedupEngine, images: Sequence[RecoveryImage]
) -> None:
    """Shard-parallel crash recovery for a freshly built cluster.

    Each shard replays its own image concurrently (recovery is the one
    place shard work needs no router coordination — the images are
    independent logs), then the router's LBA directory is rebuilt from
    the recovered per-shard LBA maps: content routing guarantees an LBA
    lives in at most one shard, which
    :func:`repro.analysis.invariants.check_sharded_engine` re-verifies
    after every recovery in the crash harness.
    """

    def recover_one(index: int) -> RecoveryReport:
        shard = engine.shards[index]
        with shard.lock:  # lock: dedup-engine
            return recover_into(shard, images[index].journal)

    with engine.lock:  # lock: sharded-router
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=len(images), thread_name_prefix="shard-recover"
        ) as pool:
            reports = list(pool.map(recover_one, range(len(images))))

        # Cross-shard operations (a rewrite that moves an LBA between
        # shards, a snapshot fan-out) span several per-shard logs, so a
        # crash can fence them on some shards and tear them on others.
        # Neither outcome was ever acknowledged to a client — the batch
        # was still in flight — so recovery is free to resolve each
        # conflict to either side, as long as the cluster ends up
        # consistent (check_sharded_engine's laws).
        #
        # An LBA mapped on two shards means the new mapping's fence
        # landed but the old shard's trim was torn away: prefer a shard
        # that recovered clean (its log holds the committed rewrite) and
        # trim the stale mapping from the others.
        owners: dict = {}
        for index, shard in enumerate(engine.shards):
            with shard.lock:  # lock: dedup-engine
                for lba, _pbn in shard.lba_map.items():
                    owners.setdefault(lba, []).append(index)
        conflicts = 0
        engine._lba_shard.clear()
        for lba, indexes in sorted(owners.items()):
            keep = indexes[0]
            if len(indexes) > 1:
                conflicts += 1
                keep = next(
                    (i for i in indexes if reports[i].clean), indexes[0]
                )
                for index in indexes:
                    if index != keep:
                        engine.shards[index].trim(lba)
            engine._lba_shard[lba] = keep

        # A snapshot name missing from any shard's durable prefix was an
        # in-flight create (or a half-finished delete); converge by
        # completing the delete everywhere — the uniform direction for
        # both cases.
        name_sets = [set(shard.snapshots()) for shard in engine.shards]
        universal = set.intersection(*name_sets) if name_sets else set()
        dropped = 0
        for index, shard in enumerate(engine.shards):
            for name in sorted(name_sets[index] - universal):
                shard.delete_snapshot(name)
                dropped += 1

        engine.recovery = reports
        engine.recovery_lba_conflicts = conflicts
        engine.recovery_snapshots_dropped = dropped

"""The baseline system: CIDR extended with software table caching
(paper §2.3, Figure 2).

Every flow is store-and-forward through host memory, the unique-chunk
predictor runs on the CPU over the buffered data, table caching is all
host software (B+-tree index, host NVMe stack for table SSDs), and the
integrated hash+compression FPGA needs predicted batches plus a
validation/correction pass.

Write flow (Figure 2a)
    client → NIC → host DRAM → predictor → FPGA (hash all, compress
    predicted-unique) → host DRAM → software table validation → data SSD.

Read flow (Figure 2b)
    data SSD → host DRAM → FPGA (decompress) → host DRAM → NIC → client.
"""

from __future__ import annotations

from typing import List, Optional

from ..cache.table_cache import BTreeIndex, CacheIndex
from ..datared.chunking import Chunk
from ..datared.compression import Compressor
from ..datared.container import Container
from ..hw.nic import BaselineNic
from ..hw.pcie import HOST, PcieTopology
from ..obs.metrics import MetricsRegistry
from ..hw.specs import ServerSpec
from .accounting import CpuTask, MemPath
from .base import ReductionSystem
from .config import SystemConfig
from .predictor import UniqueChunkPredictor

__all__ = ["BaselineSystem"]

_NIC = "nic"
_FPGA = "reduction-fpga"  #: integrated hash + compression accelerator
_DATA_SSD = "data-ssd"
_TABLE_SSD = "table-ssd"


class BaselineSystem(ReductionSystem):
    """CIDR-style HW data reduction with software table caching."""

    TABLE_QUEUE_OWNER = "host"
    name = "baseline (CIDR + software table cache)"

    def __init__(
        self,
        server: Optional[ServerSpec] = None,
        config: Optional[SystemConfig] = None,
        num_buckets: int = 1 << 15,
        cache_lines: int = 1024,
        compressor: Optional[Compressor] = None,
        btree_order: int = 16,
    ):
        self._btree_order = btree_order
        super().__init__(
            server=server,
            config=config,
            num_buckets=num_buckets,
            cache_lines=cache_lines,
            compressor=compressor,
        )
        self.nic = BaselineNic(self.server.nic)
        self.predictor = UniqueChunkPredictor()
        self._predictions = {}  # chunk id -> predicted_unique
        self.engine.registry.register_collector(self._publish_baseline_metrics)

    def _publish_baseline_metrics(self, registry: MetricsRegistry) -> None:
        """Collector: predictor effectiveness as a gauge."""
        accuracy = self._predictor_accuracy()
        registry.gauge("system.predictor.accuracy").set(
            accuracy if accuracy is not None else 0.0
        )

    # -- wiring ------------------------------------------------------------------
    def _build_topology(self) -> PcieTopology:
        # No peer-to-peer use: a flat fabric where everything crosses the
        # root complex via host memory.
        topology = PcieTopology(
            num_switches=1, root_complex_bw=self.server.socket_pcie_bw
        )
        for device in (_NIC, _FPGA, _DATA_SSD, _TABLE_SSD):
            topology.attach(device, switch=0)
        return topology

    def _make_index(self) -> CacheIndex:
        return BTreeIndex(order=self._btree_order)

    # -- write flow (Figure 2a) ---------------------------------------------------------
    def _enqueue(self, chunk: Chunk) -> None:
        """Step 1: NIC DMAs the client data into a host-memory buffer."""
        size = len(chunk.data)
        self.nic.receive(size)
        self.pcie.transfer(_NIC, HOST, size)
        self.memory.write(MemPath.NIC_HOST, size)
        self.cpu.charge(CpuTask.NETWORK, self.config.cpu.nic_per_chunk)

    def _process_batch(self, chunks: List[Chunk]) -> None:
        costs = self.config.cpu
        batch_bytes = sum(len(chunk.data) for chunk in chunks)

        # Step 2: the predictor re-reads the whole buffer from DRAM.
        predictions = [self.predictor.predict_unique(chunk.data) for chunk in chunks]
        self.memory.read(MemPath.PREDICTION, batch_bytes)
        self.cpu.charge(
            CpuTask.PREDICTOR, costs.predictor_per_chunk * len(chunks)
        )

        # Step 3: batch scheduling + DMA of every chunk to the FPGA.
        self.cpu.charge(
            CpuTask.SCHEDULER, costs.batch_scheduler_per_chunk * len(chunks)
        )
        self.cpu.charge(CpuTask.DMA, costs.dma_per_chunk * len(chunks))
        self.memory.read(MemPath.FPGA, batch_bytes)
        self.pcie.transfer(HOST, _FPGA, batch_bytes)

        # Step 4: software table validation (the functional dedup).
        outcomes, delta = self._dedup_batch(chunks)
        self._charge_table_cache(delta)

        # Step 5: the FPGA returns all hashes plus the compressed output
        # of predicted-unique chunks.  Mispredictions cost extra:
        #  - predicted-unique duplicates were compressed for nothing
        #    (their output still crosses back to host memory),
        #  - predicted-duplicate uniques need a correction round trip.
        return_bytes = self.config.digest_bytes * len(chunks)
        correction_bytes = 0
        for chunk, outcome, predicted in zip(chunks, outcomes, predictions):
            actually_unique = not outcome.duplicate
            self.predictor.record_outcome(predicted, actually_unique)
            if predicted and actually_unique:
                return_bytes += outcome.stored_size
            elif predicted and not actually_unique:
                wasted = self.engine.compressor.compress(chunk.data)
                return_bytes += wasted.stored_size
            elif actually_unique:  # predicted duplicate: correction pass
                correction_bytes += len(chunk.data)
                return_bytes += outcome.stored_size
        if correction_bytes:
            self.memory.read(MemPath.FPGA, correction_bytes)
            self.pcie.transfer(HOST, _FPGA, correction_bytes)
            self.cpu.charge(CpuTask.DMA, costs.dma_per_chunk)
        self.memory.write(MemPath.FPGA, return_bytes)
        self.pcie.transfer(_FPGA, HOST, return_bytes)
        self.cpu.charge(CpuTask.DMA, costs.dma_per_chunk * len(chunks))

        # Step 6: LBA-PBA metadata updates for every chunk.
        self.cpu.charge(CpuTask.LBA_MAP, costs.lba_map_update * len(chunks))

    def _charge_table_cache(self, delta) -> None:
        """Host pays for everything the table-cache stack did (Table 2)."""
        costs = self.config.cpu
        self.memory.read(MemPath.TABLE_CACHE, delta.host_bytes_read)
        self.memory.write(MemPath.TABLE_CACHE, delta.host_bytes_written)
        self.cpu.charge(CpuTask.TREE, costs.tree_node_visit * delta.tree_node_visits)
        table_ssd_ops = delta.table_ssd_reads + delta.table_ssd_writes
        self.cpu.charge(CpuTask.TABLE_SSD, costs.table_ssd_io * table_ssd_ops)
        self.cpu.charge(CpuTask.CONTENT, costs.bucket_scan * delta.content_scans)
        self.cpu.charge(CpuTask.REPLACEMENT, costs.eviction * delta.evictions)
        # Bucket pages move host DRAM ↔ table SSD through the root complex.
        self.pcie.transfer(_TABLE_SSD, HOST, delta.table_ssd_read_bytes)
        self.pcie.transfer(HOST, _TABLE_SSD, delta.table_ssd_write_bytes)

    def _on_container_seal(self, container: Container) -> None:
        """Step 7: the data SSD pulls the sealed container from host DRAM."""
        size = container.fill_bytes
        self.memory.read(MemPath.DATA_SSD, size)
        self.pcie.transfer(HOST, _DATA_SSD, size)
        self.data_array.drives[
            container.container_id % len(self.data_array)
        ].account_write(size)
        self.cpu.charge(CpuTask.DATA_SSD, self.config.cpu.data_ssd_io)

    # -- read flow (Figure 2b) ---------------------------------------------------------------
    def _read_chunk(self, lba: int) -> bytes:  # repro-lint: holds self.lock
        # Reads must observe staged writes: the baseline has no NIC-side
        # lookup, so it drains the pipeline first.
        if self._pending:
            batch, self._pending = self._pending, []
            self._process_batch(batch)

        costs = self.config.cpu
        self.cpu.charge(CpuTask.LBA_MAP, costs.lba_map_lookup)
        report = self.engine.read(lba, 1)
        stored = report.stored_bytes_read
        logical = len(report.data)

        if stored:
            # SSD → host DRAM → FPGA (decompress) → host DRAM → NIC.
            self.data_array.drives[lba % len(self.data_array)].account_read(stored)
            self.cpu.charge(CpuTask.DATA_SSD, costs.data_ssd_read_io)
            self.pcie.transfer(_DATA_SSD, HOST, stored)
            self.memory.write(MemPath.DATA_SSD, stored)
            self.memory.read(MemPath.FPGA, stored)
            self.pcie.transfer(HOST, _FPGA, stored)
            self.memory.write(MemPath.FPGA, logical)
            self.pcie.transfer(_FPGA, HOST, logical)
            self.cpu.charge(CpuTask.DMA, costs.dma_per_chunk * 2)
        self.memory.read(MemPath.NIC_HOST, logical)
        self.pcie.transfer(HOST, _NIC, logical)
        self.nic.send(logical)
        self.cpu.charge(CpuTask.NETWORK, costs.nic_per_chunk)
        return report.data

    # -- reporting ------------------------------------------------------------------------------
    def _predictor_accuracy(self):
        return self.predictor.stats.accuracy if self.predictor.stats.total else None

"""The library-wide error model.

Every failure the storage stack reports to a caller is a
:class:`ReproError` subclass, and every failure the *protocol* reports
over the wire is a structured ``(code, message)`` pair carried in an
:data:`~repro.net.protocol.Op.ERROR` payload.  The two sides meet here:
each exception class maps to an :class:`ErrorCode`, and a received code
maps back to the exception the client should raise — so a typed error
survives a trip through the wire format.

The concrete classes double-inherit :class:`ValueError` because the
pre-v2 codebase raised bare ``ValueError`` everywhere; existing callers
catching ``ValueError`` keep working.
"""

from __future__ import annotations

import enum
import struct
from typing import Tuple, Type

__all__ = [
    "ReproError",
    "ProtocolError",
    "AlignmentError",
    "BucketFullError",
    "CapacityError",
    "JournalCorruptError",
    "MissingDependencyError",
    "ShardError",
    "SnapshotError",
    "ErrorCode",
    "error_code_for",
    "exception_for_code",
    "encode_error_payload",
    "decode_error_payload",
]


class ReproError(Exception):
    """Base class for every error the storage stack raises."""


class ProtocolError(ReproError, ValueError):
    """A malformed, corrupt, or semantically invalid protocol frame."""


class AlignmentError(ReproError, ValueError):
    """A request's LBA or length violates chunk alignment."""


class CapacityError(ReproError, ValueError):
    """A resource (cache, container, queue) cannot hold the request."""


class BucketFullError(CapacityError):
    """An insert hit a Hash-PBN bucket that already holds
    :data:`~repro.datared.hash_pbn.BUCKET_CAPACITY` entries.

    The table's overflow-probing insert never surfaces this (it probes
    on to the next bucket); reaching a caller means a bucket was driven
    directly — a bug or a deliberately bucket-level tool.  Subclasses
    :class:`CapacityError`, so it maps to ``ErrorCode.CAPACITY`` on the
    wire and stays catchable as ``ValueError`` like the pre-v2 bare
    ``ValueError`` it replaces.
    """


class MissingDependencyError(ReproError, ValueError):
    """An optional codec/fingerprint backend is not installed.

    Raised when a :mod:`repro.datared.codecs` or
    :mod:`repro.datared.hashing` plugin is selected (or a stored chunk's
    codec tag is encountered) whose backing library — ``zstandard``,
    ``lz4``, ``blake3`` — is absent from the environment.  Install the
    ``codecs`` extras group or pick an always-available plugin.
    """


class JournalCorruptError(ReproError, ValueError):
    """A journal image is semantically inconsistent and cannot be replayed.

    A torn *tail* is not corruption — recovery silently discards it and
    restores the acknowledged prefix.  This error is reserved for images
    whose *committed* prefix tells an impossible story: a duplicate
    NEW_CHUNK for a live PBN, a MAP to a PBN the journal never placed, a
    checkpoint whose encoded sections fail to decode.  Recovery never
    guesses past such a record — a typed failure always beats a silently
    wrong metadata image.
    """


class SnapshotError(ReproError, ValueError):
    """A snapshot operation named an unknown or conflicting snapshot."""


class ShardError(ReproError, ValueError):
    """A shard of a sharded engine (or cluster backend) failed.

    Raised by :class:`~repro.datared.sharded.ShardedDedupEngine` and the
    scatter-gather router when one shard's resolve+publish fails while
    the others complete: the healthy shards' ledgers stay conserved, but
    the batch is only partially applied (the same per-chunk atomicity a
    split write already has).  ``shard_indexes`` names the shards that
    failed.
    """

    def __init__(self, message: str, shard_indexes: Tuple[int, ...] = ()):
        super().__init__(message)
        self.shard_indexes = shard_indexes


class ErrorCode(enum.IntEnum):
    """Structured codes carried in ``Op.ERROR`` payloads."""

    UNKNOWN = 0
    BAD_REQUEST = 1
    UNSUPPORTED_OP = 2
    ALIGNMENT = 3
    CAPACITY = 4
    CORRUPT_FRAME = 5
    INTERNAL = 6
    SHARD_FAILED = 7


_CODE_FOR_EXCEPTION = (
    (AlignmentError, ErrorCode.ALIGNMENT),
    (CapacityError, ErrorCode.CAPACITY),
    (ShardError, ErrorCode.SHARD_FAILED),
    (SnapshotError, ErrorCode.BAD_REQUEST),
    (ProtocolError, ErrorCode.BAD_REQUEST),
    (ReproError, ErrorCode.INTERNAL),
)

_EXCEPTION_FOR_CODE = {
    ErrorCode.UNKNOWN: ProtocolError,
    ErrorCode.BAD_REQUEST: ProtocolError,
    ErrorCode.UNSUPPORTED_OP: ProtocolError,
    ErrorCode.ALIGNMENT: AlignmentError,
    ErrorCode.CAPACITY: CapacityError,
    ErrorCode.CORRUPT_FRAME: ProtocolError,
    ErrorCode.INTERNAL: ReproError,
    ErrorCode.SHARD_FAILED: ShardError,
}


def error_code_for(exc: BaseException) -> ErrorCode:
    """The wire code a server reports for ``exc``."""
    for klass, code in _CODE_FOR_EXCEPTION:
        if isinstance(exc, klass):
            return code
    if isinstance(exc, ValueError):
        return ErrorCode.BAD_REQUEST
    return ErrorCode.UNKNOWN


def exception_for_code(code: int) -> Type[ReproError]:
    """The exception class a client raises for a received ``code``."""
    try:
        return _EXCEPTION_FOR_CODE[ErrorCode(code)]
    except ValueError:
        return ProtocolError


_ERROR_HEADER = struct.Struct(">H")


def encode_error_payload(code: ErrorCode, message: str) -> bytes:
    """Pack a structured error payload: 16-bit code + UTF-8 message."""
    return _ERROR_HEADER.pack(int(code)) + message.encode("utf-8")


def decode_error_payload(payload: bytes) -> Tuple[ErrorCode, str]:
    """Unpack an error payload; tolerates legacy free-text payloads.

    Pre-v2 servers sent bare ASCII messages.  Those can only collide
    with a structured payload when their first byte is NUL (no printable
    text starts that way), so a leading byte ``!= 0`` means legacy.
    """
    if len(payload) >= 2 and payload[0] == 0:
        (raw_code,) = _ERROR_HEADER.unpack_from(payload)
        try:
            code = ErrorCode(raw_code)
        except ValueError:
            code = ErrorCode.UNKNOWN
        return code, payload[2:].decode("utf-8", errors="replace")
    return ErrorCode.UNKNOWN, payload.decode("utf-8", errors="replace")


def raise_for_error_payload(payload: bytes, context: str) -> None:
    """Raise the typed exception a structured error payload describes."""
    code, message = decode_error_payload(payload)
    raise exception_for_code(code)(f"{context}: {message}" if message else context)

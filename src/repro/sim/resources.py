"""Shared-resource primitives for the simulation kernel.

Three resource shapes cover every device in the FIDR model:

* :class:`Resource` — a counted semaphore with a FIFO wait queue (e.g. NVMe
  submission-queue slots, DMA channels, CPU cores when modelled discretely).
* :class:`Store` — a FIFO buffer of items with optional capacity (e.g. the
  in-NIC chunk buffer, batch queues between pipeline stages).
* :class:`BandwidthPipe` — a fair-shared bandwidth channel where a transfer
  of ``n`` bytes takes ``n / (rate / active)`` time (e.g. a PCIe link, a DRAM
  channel group, an SSD's flash backend).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "BandwidthPipe"]


class Resource:
    """Counted semaphore with FIFO granting.

    ``yield resource.acquire()`` suspends the process until a unit is free;
    ``resource.release()`` frees one unit and wakes the next waiter.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        """Return an event that succeeds once a unit has been granted."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one unit; hands it straight to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """FIFO item buffer with optional bounded capacity.

    ``put`` blocks when full, ``get`` blocks when empty.  Used for the
    staging buffers between pipeline stages in device models.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once ``item`` is in the store."""
        event = self.sim.event()
        if self._getters:
            # Hand the item directly to the oldest waiting consumer.
            self._getters.popleft().succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = self.sim.event()
        if self.items:
            item = self.items.popleft()
            if self._putters:
                put_event, queued = self._putters.popleft()
                self.items.append(queued)
                put_event.succeed(None)
            event.succeed(item)
        elif self._putters:
            put_event, queued = self._putters.popleft()
            put_event.succeed(None)
            event.succeed(queued)
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)


class BandwidthPipe:
    """Fair-share bandwidth channel using progressive reallocation.

    All in-flight transfers share ``rate_bytes_per_s`` equally.  When a
    transfer joins or leaves, the remaining bytes of every other transfer
    are re-timed under the new share.  This reproduces the throughput
    behaviour of a PCIe link or DRAM channel group without per-packet
    simulation.
    """

    def __init__(
        self, sim: Simulator, rate_bytes_per_s: float, name: str = "pipe"
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise SimulationError("rate must be positive")
        self.sim = sim
        self.rate = float(rate_bytes_per_s)
        self.name = name
        #: id -> [remaining_bytes, last_update_time, done_event]
        self._active: Dict[int, List[Any]] = {}
        self._ids = 0
        self.bytes_transferred = 0.0
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0
        # Sweep epoch: every reschedule invalidates earlier completion
        # markers, so exactly one marker is ever live per pipe.  (Without
        # this, a stale marker firing would spawn a fresh one, and heavy
        # join/leave churn degenerates into marker storms.)
        self._epoch = 0
        # Completions within this fraction of a transfer's size count as
        # done — absorbs float drift from repeated re-sharing.
        self._epsilon = 1e-9 * self.rate

    # -- internal bookkeeping ----------------------------------------------
    def _settle(self) -> None:
        """Charge elapsed progress to all active transfers."""
        now = self.sim.now
        if not self._active:
            return
        share = self.rate / len(self._active)
        for entry in self._active.values():
            remaining, last, _ = entry
            progressed = share * (now - last)
            entry[0] = max(0.0, remaining - progressed)
            entry[1] = now

    def _reschedule(self) -> None:
        """Re-time the completion sweep under the current share."""
        self._epoch += 1
        if not self._active:
            if self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None
            return
        if self._busy_since is None:
            self._busy_since = self.sim.now
        share = self.rate / len(self._active)
        soonest = min(entry[0] for entry in self._active.values())
        marker = self.sim.timeout(soonest / share)
        marker.add_callback(
            lambda _evt, epoch=self._epoch: self._sweep(epoch)
        )

    def _sweep(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # superseded by a newer reschedule: inert
        self._settle()
        finished = [
            tid for tid, entry in self._active.items()
            if entry[0] <= self._epsilon
        ]
        for tid in finished:
            entry = self._active.pop(tid)
            entry[2].succeed(None)
        self._reschedule()

    # -- public API ----------------------------------------------------------
    def transfer(self, num_bytes: float) -> Event:
        """Return an event that succeeds once ``num_bytes`` have moved."""
        if num_bytes < 0:
            raise SimulationError("cannot transfer negative bytes")
        done = self.sim.event()
        self.bytes_transferred += num_bytes
        if num_bytes == 0:
            done.succeed(None)
            return done
        self._settle()
        tid = self._ids
        self._ids += 1
        self._active[tid] = [float(num_bytes), self.sim.now, done]
        self._reschedule()
        return done

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time the pipe was busy over ``[since, now]``."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        horizon = self.sim.now - since
        return busy / horizon if horizon > 0 else 0.0

"""Statistics accumulators used by device models and experiments.

Everything here is pure bookkeeping: counters, time-weighted averages for
utilization-style metrics, streaming summaries, and a fixed-bucket
histogram for latency distributions.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Counter",
    "TimeWeighted",
    "StreamingSummary",
    "Histogram",
    "RateMeter",
]


class Counter:
    """A named family of monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {amount})")
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def total(self) -> float:
        return sum(self._counts.values())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def fractions(self) -> Dict[str, float]:
        """Each counter as a fraction of the family total."""
        total = self.total()
        if total == 0:
            return {name: 0.0 for name in self._counts}
        return {name: value / total for name, value in self._counts.items()}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"Counter({body})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Useful for queue lengths and utilization: call :meth:`record` whenever
    the level changes, then read :meth:`average` over the observed window.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start_time
        self._level = initial
        self._area = 0.0
        self._start = start_time
        self.peak = initial

    def record(self, now: float, level: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        self.peak = max(self.peak, level)

    def average(self, now: Optional[float] = None) -> float:
        end = self._last_time if now is None else now
        area = self._area + self._level * max(0.0, end - self._last_time)
        span = end - self._start
        return area / span if span > 0 else self._level

    @property
    def current(self) -> float:
        return self._level


class StreamingSummary:
    """Single-pass mean/variance/min/max (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class Histogram:
    """Fixed-boundary histogram with percentile estimation.

    Boundaries are upper edges; a sample lands in the first bucket whose
    edge is >= the sample.  Percentiles interpolate within the bucket.
    """

    def __init__(self, boundaries: Sequence[float]) -> None:
        edges = list(boundaries)
        if edges != sorted(edges):
            raise ValueError("boundaries must be sorted ascending")
        if not edges:
            raise ValueError("need at least one boundary")
        self.edges: List[float] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)  # + overflow bucket
        self.total = 0

    def add(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += 1

    def percentile(self, pct: float) -> float:
        """Approximate the given percentile (0-100)."""
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.total == 0:
            return 0.0
        target = pct / 100.0 * self.total
        seen = 0.0
        for index, count in enumerate(self.counts):
            if seen + count >= target and count > 0:
                lower = self.edges[index - 1] if index > 0 else 0.0
                upper = (
                    self.edges[index]
                    if index < len(self.edges)
                    else self.edges[-1]
                )
                fraction = (target - seen) / count
                return lower + fraction * (upper - lower)
            seen += count
        return self.edges[-1]


class RateMeter:
    """Tracks a quantity delivered over simulated time (e.g. GB/s)."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._start = start_time
        self._amount = 0.0

    def add(self, amount: float) -> None:
        self._amount += amount

    def rate(self, now: float) -> float:
        span = now - self._start
        return self._amount / span if span > 0 else 0.0

    @property
    def total(self) -> float:
        return self._amount

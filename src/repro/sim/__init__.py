"""Discrete-event simulation kernel (events, processes, resources, stats)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import BandwidthPipe, Resource, Store
from .stats import Counter, Histogram, RateMeter, StreamingSummary, TimeWeighted

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthPipe",
    "Counter",
    "Event",
    "Histogram",
    "Interrupt",
    "Process",
    "RateMeter",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "StreamingSummary",
    "TimeWeighted",
    "Timeout",
]

"""Discrete-event simulation kernel.

A small, dependency-free event-driven simulator in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, other
events, or other processes) and are resumed when those events fire.

The kernel is deliberately minimal — the FIDR reproduction needs ordered
event delivery, process suspension, and simulated-time accounting, not a
full simulation framework.  Device models in :mod:`repro.hw` build shared
resources (bandwidth pipes, request queues) on top of this kernel.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 2.0))
>>> _ = sim.spawn(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

#: Process body: a generator yielding events (or sub-generators to spawn).
ProcGen = Generator[Any, Any, Any]

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. negative delays, re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Events start *pending*, become *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and are *processed* once the kernel has resumed
    all waiting processes.
    """

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.state = Event.PENDING
        self.value: Any = None
        self._ok = True
        self.callbacks: List[Callable[["Event"], None]] = []

    # -- state queries ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self.state != Event.PENDING

    @property
    def processed(self) -> bool:
        return self.state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._ok

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.state = Event.TRIGGERED
        self.value = value
        self._ok = True
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.state = Event.TRIGGERED
        self.value = exception
        self._ok = False
        self.sim._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.state == Event.PROCESSED:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires automatically after a simulated delay."""

    def __init__(
        self, sim: "Simulator", delay: float, value: Any = None
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self.state = Event.TRIGGERED
        self.value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator-based process.

    A process is itself an event: it triggers (with the generator's return
    value) when the generator finishes, so other processes can wait on it.
    """

    def __init__(
        self, sim: "Simulator", generator: ProcGen, name: str = ""
    ) -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at time `now`.
        bootstrap = Event(sim)
        bootstrap.state = Event.TRIGGERED
        bootstrap.callbacks.append(self._resume)
        sim._schedule(bootstrap)

    @property
    def is_alive(self) -> bool:
        return self.state == Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        kick = Event(self.sim)
        kick.state = Event.TRIGGERED
        kick.value = Interrupt(cause)
        kick._ok = False
        kick.callbacks.append(self._resume)
        self.sim._schedule(kick)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            elif isinstance(event.value, Interrupt):
                target = self._generator.throw(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        if isinstance(target, Generator):
            target = self.sim.spawn(target)
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Composite event: succeeds when *all* child events have succeeded.

    The value is the list of child values in the original order.  Fails as
    soon as any child fails.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Composite event: succeeds when the *first* child event triggers.

    The value is a ``(event, value)`` pair identifying the winner.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((child, child.value))
        else:
            self.fail(child.value)


class Simulator:
    """The event loop: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._ids = itertools.count()
        self._processed = 0

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated units from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: ProcGen, name: str = "") -> Process:
        """Start a generator as a process and return its Process handle."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._ids), event))

    def step(self) -> None:
        """Process the single next event on the heap."""
        when, _, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        event.state = Event.PROCESSED
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        self._processed += 1

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    @property
    def events_processed(self) -> int:
        """Total number of events the kernel has fired (for tests/metrics)."""
        return self._processed

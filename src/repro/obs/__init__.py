"""Zero-dependency observability: metrics registry + trace spans.

The runtime publication layer for everything the repo's ledgers account
for.  ``repro.obs.metrics`` holds the typed instrument registry;
``repro.obs.trace`` holds the span machinery with its zero-overhead
disabled path; :func:`snapshot` assembles the single wire-level stats
schema (``repro.stats/v1``) served by the protocol's ``STATS`` op and
consumed by ``python -m repro.obs dump|top``, ``loadgen``, benchmarks,
and examples.  DESIGN.md §5.5 documents the discipline (metric vs.
trace, naming, overhead budget).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from . import trace
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    get_registry,
    set_registry,
)
from .trace import (
    ExecutorContext,
    SpanRecord,
    TracedStages,
    is_enabled,
    set_enabled,
    span,
)

__all__ = [
    "STATS_SCHEMA",
    "merge_stats_snapshots",
    "snapshot",
    "trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_NS",
    "bucket_quantile",
    "get_registry",
    "set_registry",
    # trace
    "ExecutorContext",
    "SpanRecord",
    "TracedStages",
    "span",
    "is_enabled",
    "set_enabled",
]

#: Version tag carried in every stats snapshot so consumers can reject
#: shapes they do not understand instead of key-erroring.
STATS_SCHEMA = "repro.stats/v1"


def snapshot(
    registry: Optional[MetricsRegistry] = None,
    *,
    max_spans: int = 256,
) -> Dict[str, Any]:
    """The one stats shape every consumer sees (``repro.stats/v1``).

    Runs the registry's collectors, exports every instrument, and
    appends the tail of the span ring.  JSON-serializable with
    ``allow_nan=False`` — producers must clamp non-finite gauges before
    publishing (the engine collector does).
    """
    reg = registry if registry is not None else get_registry()
    payload = reg.snapshot()
    payload["schema"] = STATS_SCHEMA
    payload["tracing"] = trace.is_enabled()
    payload["spans"] = [record.as_dict() for record in trace.tail(max_spans)]
    return payload


#: Derived-ratio gauges that must be recomputed from their summed bases
#: when snapshots merge — a sum (or average) of per-shard ratios is not
#: the cluster ratio.
_RATIO_GAUGES = (
    "engine.dedup_ratio",
    "engine.compression_ratio",
    "engine.reduction_factor",
)


def merge_stats_snapshots(
    snapshots: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Aggregate per-shard ``repro.stats/v1`` snapshots into one.

    The scatter-gather router answers STATS with this merge so a
    cluster looks like one server to every existing consumer
    (``repro.obs dump``, loadgen, benches): counters and gauges are
    summed, histograms with identical bucket bounds merge bucket-wise
    (element-wise counts, summed ``count``/``sum``, min-of-mins /
    max-of-maxes), and the ``engine.*`` derived-ratio gauges are
    recomputed from the summed bases.  Histograms whose bounds differ
    cannot merge bucket-wise; the first one seen wins (in practice all
    latency histograms share ``DEFAULT_LATENCY_BOUNDS_NS``).  Span
    tails concatenate in input order.  The result keeps the
    ``repro.stats/v1`` schema.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, Union[int, float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    tracing = False
    spans: List[Any] = []
    saw_engine_ratios = False
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if name in _RATIO_GAUGES:
                saw_engine_ratios = True
                continue
            gauges[name] = gauges.get(name, 0) + value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
            elif merged["bounds"] == list(hist["bounds"]):
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
                merged["count"] += hist["count"]
                merged["sum"] += hist["sum"]
                for key, pick in (("min", min), ("max", max)):
                    ours, theirs = merged[key], hist[key]
                    if ours is None:
                        merged[key] = theirs
                    elif theirs is not None:
                        merged[key] = pick(ours, theirs)
        tracing = tracing or bool(snap.get("tracing"))
        spans.extend(snap.get("spans", []))
    if saw_engine_ratios:
        duplicates = int(gauges.get("engine.duplicate_chunks", 0))
        uniques = int(gauges.get("engine.unique_chunks", 0))
        logical = int(gauges.get("engine.logical_bytes", 0))
        unique_logical = int(gauges.get("engine.unique_logical_bytes", 0))
        stored = int(gauges.get("engine.stored_bytes", 0))
        total_chunks = duplicates + uniques
        gauges["engine.dedup_ratio"] = (
            duplicates / total_chunks if total_chunks else 0.0
        )
        gauges["engine.compression_ratio"] = (
            stored / unique_logical if unique_logical else 1.0
        )
        # Clamped finite exactly like the engine collector: inf (no
        # stored byte yet) publishes as 0.0 for strict-JSON snapshots.
        gauges["engine.reduction_factor"] = (
            logical / stored if stored else 0.0
        )
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "schema": STATS_SCHEMA,
        "tracing": tracing,
        "spans": spans,
    }

"""Zero-dependency observability: metrics registry + trace spans.

The runtime publication layer for everything the repo's ledgers account
for.  ``repro.obs.metrics`` holds the typed instrument registry;
``repro.obs.trace`` holds the span machinery with its zero-overhead
disabled path; :func:`snapshot` assembles the single wire-level stats
schema (``repro.stats/v1``) served by the protocol's ``STATS`` op and
consumed by ``python -m repro.obs dump|top``, ``loadgen``, benchmarks,
and examples.  DESIGN.md §5.5 documents the discipline (metric vs.
trace, naming, overhead budget).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from . import trace
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    get_registry,
    set_registry,
)
from .trace import (
    ExecutorContext,
    SpanRecord,
    TracedStages,
    is_enabled,
    set_enabled,
    span,
)

__all__ = [
    "STATS_SCHEMA",
    "snapshot",
    "trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_NS",
    "bucket_quantile",
    "get_registry",
    "set_registry",
    # trace
    "ExecutorContext",
    "SpanRecord",
    "TracedStages",
    "span",
    "is_enabled",
    "set_enabled",
]

#: Version tag carried in every stats snapshot so consumers can reject
#: shapes they do not understand instead of key-erroring.
STATS_SCHEMA = "repro.stats/v1"


def snapshot(
    registry: Optional[MetricsRegistry] = None,
    *,
    max_spans: int = 256,
) -> Dict[str, Any]:
    """The one stats shape every consumer sees (``repro.stats/v1``).

    Runs the registry's collectors, exports every instrument, and
    appends the tail of the span ring.  JSON-serializable with
    ``allow_nan=False`` — producers must clamp non-finite gauges before
    publishing (the engine collector does).
    """
    reg = registry if registry is not None else get_registry()
    payload = reg.snapshot()
    payload["schema"] = STATS_SCHEMA
    payload["tracing"] = trace.is_enabled()
    payload["spans"] = [record.as_dict() for record in trace.tail(max_spans)]
    return payload

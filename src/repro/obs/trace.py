"""Lightweight trace spans for the write/read/serving pipelines.

A span is one timed region — ``with span("engine.stage.compress"):`` —
recorded into (a) a bounded in-process ring buffer for ``python -m
repro.obs dump``-style inspection, and (b) a latency histogram named
``<span>.ns`` in the default :class:`~repro.obs.metrics.MetricsRegistry`
so percentiles survive long after the ring has wrapped.

**The zero-overhead contract.**  Tracing is off by default and the
disabled path is one module-level dict lookup plus a shared no-op
context manager — no allocation, no clock read, no lock (the
``obs_overhead`` gate in ``repro.perf`` holds this to ≤3% on the
clocked write path, and the engine's ``stage_clock`` resolves to
``None`` outright while a :class:`TracedStages` clock is inactive).
Code therefore calls :func:`span` unconditionally; it never needs its
own ``if`` around instrumentation.

**Executor propagation.**  Spans created inside a
:class:`~repro.parallel.StagePool` worker — thread *or* process — carry
the submitting task's trace id.  The pool ships an
:class:`ExecutorContext` (picklable, so it crosses the
``requires_pickling`` seam unchanged) with each slice; the worker
adopts it with :func:`adopt`, which captures the slice's spans into a
plain list that returns with the results, and the parent merges them
with :func:`merge`.  Capture-and-merge rather than worker-side commit
keeps the ring's ordering parent-consistent and works identically for
both backends (a process child has its own module state, a thread
shares it).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    ContextManager,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Union,
)

from . import metrics as _metrics

__all__ = [
    "SpanRecord",
    "ExecutorContext",
    "TracedStages",
    "span",
    "observe",
    "now_ns",
    "is_enabled",
    "set_enabled",
    "enabled",
    "current_context",
    "adopt",
    "merge",
    "tail",
    "clear",
    "RING_CAPACITY",
]

#: Spans kept in process memory for ``repro.obs dump``; the histograms
#: keep the long-run distribution after the ring wraps.
RING_CAPACITY = 4096

#: Single-key dict so the disabled check compiles to one dict lookup
#: (reading a bare module global through a rebinding API would be just
#: as cheap, but mutating a dict value is safe under import caching).
_STATE: Dict[str, bool] = {"enabled": False}

_ring: "deque[SpanRecord]" = deque(maxlen=RING_CAPACITY)
_ring_lock = threading.Lock()
_ids = itertools.count(1)

#: Trace id of the current task/thread context (None = not in a trace).
_TRACE_ID: ContextVar[Optional[int]] = ContextVar("repro-obs-trace", default=None)
#: When set, finished spans append here instead of committing — the
#: capture side of executor propagation.
_CAPTURE: ContextVar[Optional[List["SpanRecord"]]] = ContextVar(
    "repro-obs-capture", default=None
)

now_ns = time.perf_counter_ns


class SpanRecord(NamedTuple):
    """One finished span.  All fields are picklable primitives so a
    record crosses the process-pool IPC boundary as-is."""

    name: str
    trace_id: int
    start_ns: int
    dur_ns: int
    thread: str
    tags: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "thread": self.thread,
            "tags": self.tags,
        }


class ExecutorContext(NamedTuple):
    """What a pool slice needs to continue its parent's trace."""

    trace_id: int


# -- enable/disable ---------------------------------------------------------
def is_enabled() -> bool:
    return _STATE["enabled"]


def set_enabled(on: bool) -> None:
    _STATE["enabled"] = bool(on)


@contextmanager
def enabled(on: bool = True) -> Iterator[None]:
    """Scoped enable/disable (tests and short diagnostics)."""
    was = _STATE["enabled"]
    _STATE["enabled"] = bool(on)
    try:
        yield
    finally:
        _STATE["enabled"] = was


# -- the span itself --------------------------------------------------------
class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_name", "_tags", "_trace_id", "_token", "_start")

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self._name = name
        self._tags = tags
        self._trace_id = 0
        self._token: Optional[Any] = None
        self._start = 0

    def __enter__(self) -> "_Span":
        trace_id = _TRACE_ID.get()
        if trace_id is None:
            trace_id = next(_ids)
            self._token = _TRACE_ID.set(trace_id)
        self._trace_id = trace_id
        self._start = now_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = now_ns() - self._start
        _record(SpanRecord(
            name=self._name,
            trace_id=self._trace_id,
            start_ns=self._start,
            dur_ns=duration,
            thread=threading.current_thread().name,
            tags=self._tags,
        ))
        if self._token is not None:
            _TRACE_ID.reset(self._token)
        return False


def span(name: str, **tags: Any) -> ContextManager[Any]:
    """A timed region; a shared no-op while tracing is disabled."""
    if not _STATE["enabled"]:
        return _NOOP
    return _Span(name, tags)


def observe(name: str, dur_ns: int, **tags: Any) -> None:
    """Record a span whose endpoints were measured by the caller.

    For durations that cross task boundaries (queue wait: enqueue in
    one coroutine, dequeue in another) where a context manager cannot
    bracket the region.  No-op while tracing is disabled.
    """
    if not _STATE["enabled"]:
        return
    end = now_ns()
    trace_id = _TRACE_ID.get()
    _record(SpanRecord(
        name=name,
        trace_id=trace_id if trace_id is not None else 0,
        start_ns=end - dur_ns,
        dur_ns=dur_ns,
        thread=threading.current_thread().name,
        tags=tags,
    ))


def _record(record: SpanRecord) -> None:
    buffer = _CAPTURE.get()
    if buffer is not None:
        buffer.append(record)
        return
    _commit(record)


def _commit(record: SpanRecord) -> None:
    with _ring_lock:
        _ring.append(record)
    _metrics.get_registry().histogram(record.name + ".ns").observe(
        record.dur_ns
    )


# -- executor propagation ---------------------------------------------------
def current_context() -> Optional[ExecutorContext]:
    """The context a pool should ship with a slice; None when tracing
    is disabled (the pool then dispatches the plain, untraced slice).

    Outside any span, mints a fresh id for the returned context *without
    binding it to the caller* — the one ``map`` ships that context to
    every sibling slice, and the next root span must not inherit it.
    """
    if not _STATE["enabled"]:
        return None
    trace_id = _TRACE_ID.get()
    if trace_id is None:
        trace_id = next(_ids)
    return ExecutorContext(trace_id=trace_id)


@contextmanager
def adopt(context: ExecutorContext) -> Iterator[List[SpanRecord]]:
    """Run a worker slice under the parent's trace context.

    Yields the capture list: every span finished inside the block lands
    there (never in the worker's own ring), and the caller returns it
    alongside the slice results for the parent to :func:`merge`.
    Forces tracing on for the scope — a process-pool child starts with
    the module default (off) even though the parent traced.
    """
    was = _STATE["enabled"]
    _STATE["enabled"] = True
    captured: List[SpanRecord] = []
    id_token = _TRACE_ID.set(context.trace_id)
    capture_token = _CAPTURE.set(captured)
    try:
        yield captured
    finally:
        _CAPTURE.reset(capture_token)
        _TRACE_ID.reset(id_token)
        _STATE["enabled"] = was


def merge(records: Iterable[SpanRecord]) -> None:
    """Fold worker-captured spans into the caller's context (respects
    an enclosing capture, so nested fan-outs compose)."""
    for record in records:
        _record(record)


# -- exporters --------------------------------------------------------------
def tail(limit: int = RING_CAPACITY) -> List[SpanRecord]:
    """The most recent ``limit`` committed spans, oldest first."""
    with _ring_lock:
        records = list(_ring)
    return records[-limit:] if limit >= 0 else records


def clear() -> None:
    """Empty the ring (test isolation)."""
    with _ring_lock:
        _ring.clear()


# -- the engine's StageTimer ------------------------------------------------
class TracedStages:
    """A :class:`~repro.datared.dedup.StageTimer` publishing spans.

    Installed on ``DedupEngine.stage_clock`` by the system layer.  The
    :attr:`active` property is the hook the engine's hot path checks:
    while tracing is disabled the engine treats the clock as absent
    (``None`` path — no context managers, no batch shadow-plan), so an
    installed-but-inactive clock costs one attribute read per call.
    """

    __slots__ = ("_prefix", "_names")

    def __init__(self, prefix: str = "engine.stage") -> None:
        self._prefix = prefix
        self._names: Dict[str, str] = {}

    @property
    def active(self) -> bool:
        return _STATE["enabled"]

    def stage(self, name: str) -> ContextManager[Any]:
        qualified = self._names.get(name)
        if qualified is None:
            qualified = f"{self._prefix}.{name}"
            self._names[name] = qualified
        return span(qualified)


Span = Union[_NoopSpan, _Span]

"""Operator CLI for the observability subsystem.

``dump`` fetches one ``repro.stats/v1`` snapshot from a running
server (the protocol's v2 ``STATS`` op) and prints it as JSON;
``top`` refreshes a terminal view of the same snapshot — per-span
latency histograms, the engine's dedup/compression gauges, and the
protocol/server counters — until interrupted.

Examples
--------
Against a server started with ``python -m repro.net serve --port 9876``::

    python -m repro.obs dump --port 9876
    python -m repro.obs top --port 9876 --interval 1.0
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Any, Dict, List, Optional

from ..errors import ProtocolError, ReproError, raise_for_error_payload
from ..net.protocol import FrameDecoder, Op, encode_frame_v2
from .metrics import MetricsRegistry, bucket_quantile

__all__ = ["main"]

_RECV_CHUNK = 64 * 1024


def _fetch_stats(
    host: str, port: int, timeout: float = 5.0
) -> Dict[str, Any]:
    """One STATS round trip over a raw TCP socket.

    Deliberately transport-minimal (no asyncio, no pipelining): a
    monitoring probe should work even when the asyncio client stack is
    what's being debugged.  The decoder is registry-isolated so probing
    a server does not perturb the probe process's own metrics.
    """
    decoder = FrameDecoder(MetricsRegistry(stripes=1))
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_frame_v2(Op.STATS, 0, request_id=1))
        while True:
            data = sock.recv(_RECV_CHUNK)
            if not data:
                raise ProtocolError("server closed connection before replying")
            frames = decoder.feed(data)
            if not frames:
                continue
            frame = frames[0]
            if frame.op == Op.STATS_ACK:
                payload: Dict[str, Any] = json.loads(
                    frame.payload.decode("utf-8")
                )
                return payload
            raise_for_error_payload(frame.payload, "stats failed")
            raise ProtocolError(f"unexpected response op {frame.op}")


def _render(snapshot: Dict[str, Any]) -> str:
    gauges: Dict[str, Any] = snapshot.get("gauges", {})
    counters: Dict[str, Any] = snapshot.get("counters", {})
    histograms: Dict[str, Any] = snapshot.get("histograms", {})
    tracing = "on" if snapshot.get("tracing") else "off"
    lines: List[str] = [
        f"repro.obs top — {snapshot.get('schema', '?')} (tracing {tracing})",
        "",
    ]

    live = {name: h for name, h in sorted(histograms.items()) if h["count"]}
    if live:
        lines.append(
            f"  {'span latency':<28}{'count':>9}{'p50 us':>10}"
            f"{'p99 us':>10}{'max us':>10}"
        )
        for name, hist in live.items():
            lines.append(
                f"  {name:<28}{hist['count']:>9}"
                f"{bucket_quantile(hist, 0.50) / 1e3:>10.1f}"
                f"{bucket_quantile(hist, 0.99) / 1e3:>10.1f}"
                f"{(hist['max'] or 0) / 1e3:>10.1f}"
            )
    elif tracing == "off":
        lines.append("  (no span histograms — server tracing is disabled)")
    else:
        lines.append("  (no spans recorded yet)")

    reduction = [
        ("dedup ratio", gauges.get("engine.dedup_ratio")),
        ("compression ratio", gauges.get("engine.compression_ratio")),
        ("reduction factor", gauges.get("engine.reduction_factor")),
        ("logical bytes", gauges.get("engine.logical_bytes")),
        ("live stored bytes", gauges.get("engine.live_stored_bytes")),
    ]
    lines.append("")
    lines.append("  data reduction")
    for label, value in reduction:
        if value is None:
            continue
        rendered = f"{value:,.3f}" if isinstance(value, float) else f"{value:,}"
        lines.append(f"    {label:<22}{rendered:>16}")

    interesting = [
        name for name in sorted(counters)
        if counters[name] and (
            name.startswith("proto.") or name.startswith("pool.")
        )
    ]
    server_gauges = [
        name for name in sorted(gauges) if name.startswith("server.")
    ]
    if interesting or server_gauges:
        lines.append("")
        lines.append("  protocol / serving")
        for name in interesting:
            lines.append(f"    {name:<34}{counters[name]:>12,}")
        for name in server_gauges:
            lines.append(f"    {name:<34}{gauges[name]:>12,}")
    return "\n".join(lines)


def _dump(args: argparse.Namespace) -> int:
    snapshot = _fetch_stats(args.host, args.port)
    if not args.spans:
        snapshot.pop("spans", None)
    json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _top(args: argparse.Namespace) -> int:
    while True:
        snapshot = _fetch_stats(args.host, args.port)
        if not args.once:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        print(_render(snapshot), flush=True)
        if args.once:
            return 0
        time.sleep(args.interval)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Live metrics for a running repro.net server "
        "(scraped via the protocol v2 STATS op).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    dump = commands.add_parser(
        "dump", help="print one repro.stats/v1 snapshot as JSON"
    )
    dump.add_argument("--host", default="127.0.0.1")
    dump.add_argument("--port", type=int, required=True)
    dump.add_argument(
        "--spans",
        action="store_true",
        help="include the raw span ring tail (verbose)",
    )

    top = commands.add_parser(
        "top", help="continuously render latency histograms and ratios"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period, seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="render a single frame and exit"
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "dump":
            return _dump(args)
        return _top(args)
    except KeyboardInterrupt:
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

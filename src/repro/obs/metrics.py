"""Typed metrics: counters, gauges, and fixed-bucket histograms.

The runtime counterpart of the repo's device ledgers.  Ledgers stay the
source of truth for *accounting* (exact, integral, guarded by the
engine lock); this registry is the *publication* surface a running
server exposes through the protocol's ``STATS`` op and the
``python -m repro.obs`` CLI.  Three instrument kinds, mirroring the
distinction DESIGN.md §5.5 draws:

``Counter``
    Monotonic and integral — events that only ever happen more
    (resyncs, dispatched slices).  Rejects floats and negative
    increments so a counter can never drift from a ledger it mirrors.
``Gauge``
    A point-in-time sample (queue depth, dedup ratio).  The only
    instrument allowed to carry floats, because ratios are *derived*
    at publication time (R004: the underlying ledgers stay integral).
``Histogram``
    Fixed exponential buckets over integer nanoseconds.  Observation
    is O(log buckets) with no allocation, so trace spans can feed it
    from the hot path while tracing is enabled.

Locking is striped: instruments hash onto one of ``stripes`` locks, so
concurrent publishers (server workers, pool workers, the engine) do not
serialize on a single registry-wide lock.  Instrument *creation* takes
a separate meta lock; steady-state publication never does.

Collectors bridge the pull model: a component registers a bound method
(held via :class:`weakref.WeakMethod`, so dead components unregister
themselves) that exports its guarded ledgers into gauges when a
snapshot is taken — the hot path never touches the registry for state
the ledgers already track exactly.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_NS",
    "bucket_quantile",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets: exponential 1 µs .. 1 s in nanoseconds,
#: the span of everything this stack times (a table probe to a bulk
#: split write).  The final bucket is the implicit overflow.
DEFAULT_LATENCY_BOUNDS_NS: Tuple[int, ...] = (
    1_000, 2_000, 5_000,
    10_000, 20_000, 50_000,
    100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000,
    10_000_000, 20_000_000, 50_000_000,
    100_000_000, 200_000_000, 500_000_000,
    1_000_000_000,
)


class Counter:
    """A monotonic integral counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if type(amount) is not int:
            raise TypeError(
                f"counter {self.name!r} is integral; got {type(amount).__name__}"
            )
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot add {amount}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time sample (the one float-friendly instrument)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Union[int, float]:
        return self._value


class Histogram:
    """Fixed-bucket histogram over integer observations (nanoseconds).

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    follows the last bound, so ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS,
    ) -> None:
        if not bounds or list(bounds) != sorted(set(int(b) for b in bounds)):
            raise ValueError("bounds must be strictly increasing integers")
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(int(b) for b in bounds)
        self._lock = lock
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def observe(self, value: int) -> None:
        value = int(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> int:
        return self._sum

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


def bucket_quantile(snapshot: Dict[str, Any], fraction: float) -> float:
    """Approximate quantile from a histogram snapshot dict.

    Returns the upper bound of the bucket the quantile falls in (the
    recorded ``max`` for the overflow bucket) — coarse by construction,
    which is the histogram trade-off the fixed buckets buy.
    """
    total = snapshot["count"]
    if not total:
        return 0.0
    target = max(1.0, fraction * total)
    cumulative = 0
    bounds: List[int] = snapshot["bounds"]
    for index, count in enumerate(snapshot["counts"]):
        cumulative += count
        if cumulative >= target:
            if index < len(bounds):
                return float(bounds[index])
            break
    return float(snapshot["max"] or (bounds[-1] if bounds else 0))


_Instrument = Union[Counter, Gauge, Histogram]
_Collector = Callable[["MetricsRegistry"], None]


class _StrongRef:
    """Weakref-shaped holder for plain functions (no ``__self__``)."""

    __slots__ = ("_fn",)

    def __init__(self, fn: _Collector) -> None:
        self._fn = fn

    def __call__(self) -> Optional[_Collector]:
        return self._fn


class MetricsRegistry:
    """Process-wide home of every instrument, with striped locking."""

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("need at least one lock stripe")
        self._meta = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self._instruments: Dict[str, _Instrument] = {}
        #: Weak(ish) references to collector callables (module docstring).
        self._collectors: List[Callable[[], Optional[_Collector]]] = []

    def _stripe_for(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    def _get_or_create(
        self, name: str, kind: type, factory: Callable[[], _Instrument]
    ) -> _Instrument:
        with self._meta:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        instrument = self._get_or_create(
            name, Counter, lambda: Counter(name, self._stripe_for(name))
        )
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._get_or_create(
            name, Gauge, lambda: Gauge(name, self._stripe_for(name))
        )
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS
    ) -> Histogram:
        instrument = self._get_or_create(
            name,
            Histogram,
            lambda: Histogram(name, self._stripe_for(name), bounds),
        )
        assert isinstance(instrument, Histogram)
        return instrument

    # -- collectors --------------------------------------------------------
    def register_collector(self, collector: _Collector) -> None:
        """Register a pull hook run at snapshot time.

        Bound methods are held weakly (a garbage-collected component
        silently drops out); plain functions are held strongly.
        """
        ref: Callable[[], Optional[_Collector]]
        try:
            ref = weakref.WeakMethod(collector)  # type: ignore[arg-type]
        except TypeError:
            ref = _StrongRef(collector)
        with self._meta:
            self._collectors.append(ref)

    def collect(self) -> None:
        """Run every live collector, pruning the dead ones."""
        with self._meta:
            refs = list(self._collectors)
        dead = []
        for ref in refs:
            collector = ref()
            if collector is None:
                dead.append(ref)
                continue
            collector(self)
        if dead:
            with self._meta:
                self._collectors = [
                    ref for ref in self._collectors if ref not in dead
                ]

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Collect, then export every instrument as plain dicts."""
        self.collect()
        with self._meta:
            instruments = dict(self._instruments)
        counters: Dict[str, int] = {}
        gauges: Dict[str, Union[int, float]] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument and collector (test isolation)."""
        with self._meta:
            self._instruments.clear()
            self._collectors.clear()


#: The process-default registry every component publishes into unless
#: handed an explicit one (tests inject their own for isolation).
_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default; returns the previous one (tests)."""
    global _default
    previous = _default
    _default = registry
    return previous

"""Compressed-chunk containers (paper §2.1.4, §5.3 step 8).

Because compressed chunks have variable size, the server packs them into
large *containers* (default 4 MB) and writes each sealed container to the
data SSDs as one sequential block.  A chunk's physical address is then
``(container id, offset within container)``.

The PBN→PBA entry stores the offset in 2 bytes, which with 4-MB
containers implies a 64-byte allocation granule (4 MiB / 2^16 = 64 B);
chunks are aligned up to the granule inside a container.

The container layer also tracks live vs. dead bytes per container so a
garbage collector can pick compaction victims — dedup systems must
reclaim space when overwrites drop the last reference to a chunk.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple, Union

__all__ = [
    "CONTAINER_SIZE",
    "OFFSET_GRANULE",
    "Placement",
    "Container",
    "ContainerStore",
]

#: Default sealed-container size: the 4-MB threshold of §5.3.
CONTAINER_SIZE = 4 * 1024 * 1024

#: Allocation granule inside a container, sized so a 2-byte offset field
#: addresses the whole 4-MB container (4 MiB / 65536).
OFFSET_GRANULE = 64


def _granules(num_bytes: int) -> int:
    """Bytes rounded up to whole granules."""
    return -(-num_bytes // OFFSET_GRANULE)


class Placement(NamedTuple):
    """Where a stored chunk lives: container + granule offset + size.

    A :class:`~typing.NamedTuple` — one is built per unique chunk on the
    write path, where tuple construction beats frozen-dataclass field
    assignment ~2x (BENCH_stages.json, ``pack`` stage).
    """

    container_id: int
    offset: int  #: in OFFSET_GRANULE units (the 2-byte PBA field)
    stored_size: int  #: bytes charged against container space


class Container:
    """One (possibly still open) container of packed compressed chunks.

    Payloads are kept per-offset so that modelled compression (where the
    retained payload is larger than the charged ``stored_size``) still
    reads back exactly; space accounting always uses ``stored_size``.
    """

    def __init__(
        self, container_id: int, capacity: int = CONTAINER_SIZE
    ) -> None:
        if capacity <= 0 or capacity % OFFSET_GRANULE != 0:
            raise ValueError("capacity must be a positive multiple of the granule")
        if capacity // OFFSET_GRANULE > 0x10000:
            raise ValueError("capacity exceeds the 2-byte offset field")
        self.container_id = container_id
        self.capacity = capacity
        self.sealed = False
        self._fill_granules = 0
        self._payloads: Dict[int, bytes] = {}
        self._sizes: Dict[int, int] = {}
        self.live_bytes = 0
        self.total_bytes = 0

    def has_room(self, stored_size: int) -> bool:
        needed = _granules(stored_size)
        return self._fill_granules + needed <= self.capacity // OFFSET_GRANULE

    def append(
        self, payload: Union[bytes, bytearray, memoryview], stored_size: int
    ) -> Placement:  # repro-lint: hot-path
        """Pack one chunk; returns its placement within this container.

        This is the materialization boundary of the zero-copy write path
        (DESIGN.md §5.4): a view payload is copied into an owned buffer
        here, so the stored bytes survive any later mutation of the
        caller's write buffer.
        """
        if self.sealed:
            raise ValueError("container is sealed")
        if stored_size <= 0:
            raise ValueError("stored_size must be positive")
        if not self.has_room(stored_size):
            raise ValueError("container has no room")
        if type(payload) is not bytes:
            payload = bytes(payload)  # repro-lint: copy-ok the container must own its payload bytes
        offset = self._fill_granules
        self._fill_granules += -(-stored_size // OFFSET_GRANULE)
        self._payloads[offset] = payload
        self._sizes[offset] = stored_size
        self.live_bytes += stored_size
        self.total_bytes += stored_size
        return Placement(self.container_id, offset, stored_size)

    def read(self, offset: int) -> bytes:
        try:
            return self._payloads[offset]
        except KeyError:
            raise KeyError(
                f"container {self.container_id} has no chunk at offset {offset}"
            ) from None

    def mark_dead(self, offset: int, stored_size: int) -> None:
        """Account a chunk as garbage (last reference dropped)."""
        if offset not in self._payloads:
            raise KeyError(f"no chunk at offset {offset}")
        del self._payloads[offset]
        self._sizes.pop(offset, None)
        self.live_bytes -= stored_size
        if self.live_bytes < 0:
            raise ValueError("live bytes went negative; double free?")

    def seal(self) -> None:
        self.sealed = True

    @property
    def fill_bytes(self) -> int:
        """Bytes consumed including granule-alignment padding."""
        return self._fill_granules * OFFSET_GRANULE

    @property
    def garbage_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.live_bytes / self.total_bytes

    def chunks(self) -> List[Tuple[int, bytes]]:
        """Live (offset, payload) pairs, for compaction."""
        return sorted(self._payloads.items())

    def live_chunks(self) -> List[Tuple[int, int]]:
        """Live (offset, stored_size) pairs, for recovery reconciliation."""
        return sorted(self._sizes.items())


class ContainerStore:
    """Manages the open container and all sealed ones.

    ``on_seal`` fires with the sealed :class:`Container` — the system
    layer hooks it to charge the sequential data-SSD write (§6.1: "write
    requests to data SSDs for the compressed chunks are sequential").
    """

    def __init__(
        self,
        container_size: int = CONTAINER_SIZE,
        on_seal: Optional[Callable[[Container], None]] = None,
    ) -> None:
        self.container_size = container_size
        self.on_seal = on_seal
        self._containers: Dict[int, Container] = {}
        self._next_id = 0
        self._open: Optional[Container] = None
        self.sealed_count = 0

    def __deepcopy__(self, memo: Dict[int, object]) -> "ContainerStore":
        """Deep-copy the payloads but *not* the ``on_seal`` callback.

        A deep copy of a store is a crash/recovery image: the bytes
        survive, the callback into the dead process's system (device
        models, ledgers, locks) does not — and copying it would drag
        that whole object graph along.  ``build_engine`` re-wires the
        recovered store onto the new build's hook.
        """
        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key == "on_seal":
                clone.on_seal = None
            else:
                setattr(clone, key, copy.deepcopy(value, memo))
        return clone

    def _new_container(self) -> Container:
        container = Container(self._next_id, self.container_size)
        self._containers[self._next_id] = container
        self._next_id += 1
        return container

    def append(
        self, payload: Union[bytes, bytearray, memoryview], stored_size: int
    ) -> Placement:  # repro-lint: hot-path
        """Pack a chunk, opening/sealing containers as needed."""
        if self._open is None:
            self._open = self._new_container()
        if not self._open.has_room(stored_size):
            self.seal_open()
            self._open = self._new_container()
        return self._open.append(payload, stored_size)

    def seal_open(self) -> Optional[Container]:
        """Seal the open container (end of batch / shutdown flush)."""
        container, self._open = self._open, None
        if container is None:
            return None
        container.seal()
        self.sealed_count += 1
        if self.on_seal is not None:
            self.on_seal(container)
        return container

    def read(self, container_id: int, offset: int) -> bytes:
        return self._get(container_id).read(offset)

    def mark_dead(self, container_id: int, offset: int, stored_size: int) -> None:
        self._get(container_id).mark_dead(offset, stored_size)

    def _get(self, container_id: int) -> Container:
        try:
            return self._containers[container_id]
        except KeyError:
            raise KeyError(f"unknown container {container_id}") from None

    def garbage_victims(self, threshold: float = 0.5) -> List[Container]:
        """Sealed containers whose garbage fraction exceeds ``threshold``."""
        return [
            container
            for container in self._containers.values()
            if container.sealed and container.garbage_fraction > threshold
        ]

    def drop(self, container_id: int) -> None:
        """Remove a fully-compacted container."""
        container = self._get(container_id)
        if container.live_bytes != 0:
            raise ValueError("container still holds live chunks")
        del self._containers[container_id]

    def live_placements(self) -> List[Tuple[int, int, int]]:
        """Every live placement as ``(container_id, offset, stored_size)``.

        A snapshot list (recovery reconciliation marks placements dead
        while walking it).
        """
        return [
            (container.container_id, offset, stored_size)
            for container in self._containers.values()
            for offset, stored_size in container.live_chunks()
        ]

    @property
    def live_bytes(self) -> int:
        return sum(c.live_bytes for c in self._containers.values())

    @property
    def total_bytes(self) -> int:
        return sum(c.total_bytes for c in self._containers.values())

    @property
    def container_count(self) -> int:
        return len(self._containers)

"""Metadata journaling, group commit, checkpoints and crash recovery.

The paper assumes its metadata updates are durable (the prototype's
tables live on table SSDs and writes are acknowledged from battery-backed
NIC buffers, §7.6.1) but does not describe a recovery path.  A storage
system that loses its Hash-PBN table or LBA map after a crash loses the
*meaning* of every byte on the data SSDs, so this module supplies one:

* :class:`MetadataJournal` — an append-only, CRC-guarded binary log of
  metadata mutations with **group commit**: records stage in memory and
  become durable only when :meth:`MetadataJournal.commit` appends the
  whole batch plus a ``COMMIT`` fence in one atomic append (the
  in-memory analogue of a single ``fsync`` per ``write_many`` batch).
  A torn tail (the classic crash artifact) is detected and discarded.
* **Checkpoints** — :meth:`MetadataJournal.write_checkpoint` captures a
  compact image of the whole metadata tier (Hash-PBN entries, LBA map,
  refcounts, allocator cursor, snapshots, ledger stats) so recovery
  replays checkpoint + tail instead of history-since-birth.  The
  pre-checkpoint prefix is truncated *lazily* on the next commit: a
  crash mid-checkpoint therefore tears only the appended tail and the
  old log still recovers everything.
* :func:`replay_journal` / :func:`recover_into` — replay an image
  against a fresh engine and the surviving container store, rebuilding
  Hash-PBN entries, the LBA→PBN map, reference counts, snapshots, the
  PBN allocator and the byte ledgers.  Replay honours the fences: only
  records up to the last durability marker (``COMMIT`` or
  ``CHECKPOINT``) are applied; an un-fenced suffix was never
  acknowledged and is discarded.  A *semantically impossible* committed
  prefix (duplicate placements, references to chunks the journal never
  placed) raises :class:`~repro.errors.JournalCorruptError` — recovery
  never guesses.

The engine emits journal records through its observer hook, so
journaling is opt-in and costs nothing when unused.  Arm it through
:class:`~repro.systems.config.DurabilityPolicy` and
:func:`~repro.systems.factory.build_engine`.
"""

from __future__ import annotations

import struct
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import JournalCorruptError
from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry
from .compression import Compressor
from .container import ContainerStore
from .dedup import DedupEngine
from .hash_pbn import HashPbnTable
from .lba_map import PbnRecord

__all__ = [
    "RecordKind",
    "JournalRecord",
    "CheckpointState",
    "MetadataJournal",
    "RecoveryImage",
    "RecoveryReport",
    "replay_journal",
    "reconcile_containers",
    "validate_placements",
    "recover_into",
    "recover_engine",
]

_HEADER = struct.Struct(">BI")  # kind, payload length
_CRC = struct.Struct(">I")

_NEW_CHUNK = struct.Struct(">Q32sQHHI")  # pbn, digest, container, offset, stored, logical
_MAP = struct.Struct(">QQ")  # lba, pbn
_FREE = struct.Struct(">Q")  # pbn
_UNMAP = struct.Struct(">Q")  # lba
_REPOINT = struct.Struct(">QQH")  # pbn, container, offset
_COMMIT = struct.Struct(">Q")  # commit sequence number

_CKPT_HEAD = struct.Struct(">QIII6Q")  # next_pbn, n_pbn, n_lba, n_snap, stats
_CKPT_PBN = struct.Struct(">Q32sQHHI")  # pbn, digest, container, offset, stored, refcount
_CKPT_LBA = struct.Struct(">QQ")  # lba, pbn
_CKPT_NAME = struct.Struct(">H")  # snapshot-name byte length
_CKPT_COUNT = struct.Struct(">I")  # snapshot entry count


class RecordKind:
    NEW_CHUNK = 1  #: a unique chunk was placed (pbn, digest, placement)
    MAP = 2  #: an LBA now points at a PBN
    FREE = 3  #: a PBN's last reference dropped (advisory; MAP implies it)
    UNMAP = 4  #: an LBA mapping was dropped (TRIM/discard)
    REPOINT = 5  #: GC moved a chunk to a new placement
    SNAP_CREATE = 6  #: a named snapshot pinned the current LBA map
    SNAP_DELETE = 7  #: a named snapshot released its pins
    CHECKPOINT = 8  #: compact image of the whole metadata tier
    COMMIT = 9  #: group-commit fence: everything before it is durable

#: Kinds that mark a durable prefix: replay applies records up to the
#: last marker and discards the (never acknowledged) rest.
_DURABILITY_MARKERS = (RecordKind.COMMIT, RecordKind.CHECKPOINT)


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal entry."""

    kind: int
    pbn: int = 0
    lba: int = 0
    digest: bytes = b""
    container_id: int = 0
    offset: int = 0
    stored_size: int = 0
    logical_size: int = 0
    name: str = ""  #: snapshot name (SNAP_CREATE / SNAP_DELETE)
    blob: bytes = b""  #: raw checkpoint payload (CHECKPOINT)
    seq: int = 0  #: commit sequence number (COMMIT)


@dataclass
class CheckpointState:
    """A compact image of one engine's entire metadata tier.

    Everything replay would otherwise reconstruct record-by-record:
    Hash-PBN placements with refcounts, the LBA map, snapshot pin
    tables, the allocator cursor, and the six conserved ledger
    counters.  ``capture`` reads it off a live engine (under the
    engine lock); ``encode``/``decode`` round-trip the wire payload.
    """

    next_pbn: int
    #: (pbn, digest, container_id, offset, stored_size, refcount)
    pbn_records: List[Tuple[int, bytes, int, int, int, int]]
    lba_entries: List[Tuple[int, int]]
    #: (name, [(lba, pbn), ...]) per snapshot
    snapshots: List[Tuple[str, List[Tuple[int, int]]]]
    #: (logical, unique_logical, stored, reclaimed, dup_chunks, unique_chunks)
    stats: Tuple[int, int, int, int, int, int]

    @classmethod
    def capture(cls, engine: DedupEngine) -> "CheckpointState":
        """Snapshot ``engine``'s metadata (caller holds the engine lock)."""
        stats = engine.stats
        return cls(
            next_pbn=engine.allocator.next_pbn,
            pbn_records=[
                (
                    pbn,
                    record.fingerprint,
                    record.container_id,
                    record.offset,
                    record.stored_size,
                    record.refcount,
                )
                for pbn, record in engine.pbn_map.records()
            ],
            lba_entries=sorted(engine.lba_map.items()),
            snapshots=[
                (name, sorted(pins.items()))
                for name, pins in sorted(engine._snapshots.items())
            ],
            stats=(
                stats.logical_bytes,
                stats.unique_logical_bytes,
                stats.stored_bytes,
                stats.reclaimed_stored_bytes,
                stats.duplicate_chunks,
                stats.unique_chunks,
            ),
        )

    def encode(self) -> bytes:
        out = bytearray()
        out += _CKPT_HEAD.pack(
            self.next_pbn,
            len(self.pbn_records),
            len(self.lba_entries),
            len(self.snapshots),
            *self.stats,
        )
        for pbn, digest, container_id, offset, stored, refcount in self.pbn_records:
            out += _CKPT_PBN.pack(pbn, digest, container_id, offset, stored, refcount)
        for lba, pbn in self.lba_entries:
            out += _CKPT_LBA.pack(lba, pbn)
        for name, entries in self.snapshots:
            encoded = name.encode("utf-8")
            out += _CKPT_NAME.pack(len(encoded))
            out += encoded
            out += _CKPT_COUNT.pack(len(entries))
            for lba, pbn in entries:
                out += _CKPT_LBA.pack(lba, pbn)
        return bytes(out)

    @classmethod
    def decode(cls, payload: bytes) -> "CheckpointState":
        """Decode a checkpoint payload.

        Raises :class:`~repro.errors.JournalCorruptError` on structural
        failure: the record's CRC already passed, so a payload that does
        not parse is an impossible committed prefix, not a torn tail.
        """
        try:
            head = _CKPT_HEAD.unpack_from(payload, 0)
            position = _CKPT_HEAD.size
            next_pbn, n_pbn, n_lba, n_snap = head[0], head[1], head[2], head[3]
            stats = (head[4], head[5], head[6], head[7], head[8], head[9])
            pbn_records: List[Tuple[int, bytes, int, int, int, int]] = []
            for _ in range(n_pbn):
                pbn_records.append(
                    _CKPT_PBN.unpack_from(payload, position)  # type: ignore[arg-type]
                )
                position += _CKPT_PBN.size
            lba_entries: List[Tuple[int, int]] = []
            for _ in range(n_lba):
                lba, pbn = _CKPT_LBA.unpack_from(payload, position)
                lba_entries.append((lba, pbn))
                position += _CKPT_LBA.size
            snapshots: List[Tuple[str, List[Tuple[int, int]]]] = []
            for _ in range(n_snap):
                (name_len,) = _CKPT_NAME.unpack_from(payload, position)
                position += _CKPT_NAME.size
                if position + name_len > len(payload):
                    raise JournalCorruptError("checkpoint snapshot name overruns")
                name = payload[position : position + name_len].decode("utf-8")
                position += name_len
                (count,) = _CKPT_COUNT.unpack_from(payload, position)
                position += _CKPT_COUNT.size
                entries: List[Tuple[int, int]] = []
                for _ in range(count):
                    lba, pbn = _CKPT_LBA.unpack_from(payload, position)
                    entries.append((lba, pbn))
                    position += _CKPT_LBA.size
                snapshots.append((name, entries))
            if position != len(payload):
                raise JournalCorruptError(
                    f"checkpoint payload has {len(payload) - position} "
                    "trailing bytes"
                )
        except (struct.error, UnicodeDecodeError) as error:
            raise JournalCorruptError(
                f"checkpoint payload does not decode: {error}"
            ) from error
        return cls(
            next_pbn=next_pbn,
            pbn_records=pbn_records,
            lba_entries=lba_entries,
            snapshots=snapshots,
            stats=stats,
        )


class MetadataJournal:
    """Group-committed metadata log with per-record CRC framing.

    Implements the engine-observer protocol (``on_new_chunk``,
    ``on_map``, ``on_free``, ``on_unmap``, ``on_repoint``,
    ``on_snapshot_create``, ``on_snapshot_delete``), so an instance can
    be handed directly to :class:`~repro.datared.dedup.DedupEngine` as
    its observer — :func:`~repro.systems.factory.build_engine` does
    exactly that when the config's
    :class:`~repro.systems.config.DurabilityPolicy` arms journaling.

    Records *stage* in memory; :meth:`commit` makes the whole staged
    batch durable at once behind a ``COMMIT`` fence (one fsync per
    batch, the group-commit discipline).  :meth:`to_bytes` exposes only
    the durable image — exactly what a crash would leave behind.

    ``on_durable`` (if given) fires after every durable mutation with
    ``(image, stable_prefix)``: the new durable image and the byte
    length that was already durable before the append.  The crash
    harness hooks it to capture tear points.
    """

    def __init__(
        self,
        *,
        checkpoint_every_commits: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        on_durable: Optional[Callable[[bytes, int], None]] = None,
    ) -> None:
        if checkpoint_every_commits is not None and checkpoint_every_commits < 1:
            raise ValueError("checkpoint_every_commits must be >= 1")
        self._staged = bytearray()
        self._durable = bytearray()
        #: Durable-prefix length superseded by a checkpoint, cut on the
        #: next commit (lazy truncation: the old log survives any crash
        #: that tears the checkpoint record itself).
        self._truncate_at: Optional[int] = None
        self.records_written = 0
        self.commits = 0
        self.checkpoints = 0
        self.checkpoint_every_commits = checkpoint_every_commits
        self._commits_since_checkpoint = 0
        #: Monotonic sequence number stamped into each ``COMMIT`` fence.
        #: Replay rejects a regression — a CRC-valid frame batch that was
        #: duplicated or replayed out of order cannot slip past it.
        self._next_commit_seq = 0
        self.on_durable = on_durable
        reg = registry if registry is not None else get_registry()
        self._records_total = reg.counter("journal.records_total")
        self._commits_total = reg.counter("journal.commits_total")
        self._commit_bytes_total = reg.counter("journal.commit_bytes_total")
        self._checkpoints_total = reg.counter("journal.checkpoints_total")
        self._truncated_bytes_total = reg.counter("journal.truncated_bytes_total")

    # -- framing --------------------------------------------------------------
    @staticmethod
    def _frame(buffer: bytearray, kind: int, payload: bytes) -> None:
        header = _HEADER.pack(kind, len(payload))
        buffer += header
        buffer += payload
        # CRC covers header *and* payload: a flipped kind or length byte
        # must not be able to alias one record into another.
        buffer += _CRC.pack(zlib.crc32(payload, zlib.crc32(header)))

    def _stage(self, kind: int, payload: bytes) -> None:
        self._frame(self._staged, kind, payload)
        self.records_written += 1
        self._records_total.inc()

    # -- observer protocol (called by the engine) -----------------------------
    def on_new_chunk(
        self, pbn: int, digest: bytes, container_id: int, offset: int,
        stored_size: int, logical_size: int,
    ) -> None:
        self._stage(
            RecordKind.NEW_CHUNK,
            _NEW_CHUNK.pack(
                pbn, digest, container_id, offset, stored_size, logical_size
            ),
        )

    def on_map(self, lba: int, pbn: int) -> None:
        self._stage(RecordKind.MAP, _MAP.pack(lba, pbn))

    def on_free(self, pbn: int) -> None:
        self._stage(RecordKind.FREE, _FREE.pack(pbn))

    def on_unmap(self, lba: int) -> None:
        self._stage(RecordKind.UNMAP, _UNMAP.pack(lba))

    def on_repoint(self, pbn: int, container_id: int, offset: int) -> None:
        self._stage(RecordKind.REPOINT, _REPOINT.pack(pbn, container_id, offset))

    def on_snapshot_create(self, name: str) -> None:
        self._stage(RecordKind.SNAP_CREATE, name.encode("utf-8"))

    def on_snapshot_delete(self, name: str) -> None:
        self._stage(RecordKind.SNAP_DELETE, name.encode("utf-8"))

    # -- group commit ---------------------------------------------------------
    def _apply_pending_truncation(self) -> None:
        if self._truncate_at is None:
            return
        cut = self._truncate_at
        self._truncate_at = None
        del self._durable[:cut]
        self._truncated_bytes_total.inc(cut)

    def commit(self) -> int:
        """Make every staged record durable behind a ``COMMIT`` fence.

        The staged batch plus its fence lands in the durable image as
        one atomic append — the in-memory model of a single write +
        fsync.  Also applies any truncation a previous checkpoint left
        pending (the model of the post-fsync rename).  Returns the
        number of bytes appended (0 when nothing was staged).
        """
        if not self._staged and self._truncate_at is None:
            return 0
        with trace.span("journal.commit", staged=len(self._staged)):
            self._apply_pending_truncation()
            appended = 0
            stable = len(self._durable)
            if self._staged:
                self._stage(RecordKind.COMMIT, _COMMIT.pack(self._next_commit_seq))
                self._next_commit_seq += 1
                appended = len(self._staged)
                self._durable += self._staged
                self._staged.clear()
                self.commits += 1
                self._commits_since_checkpoint += 1
                self._commits_total.inc()
                self._commit_bytes_total.inc(appended)
            if self.on_durable is not None:
                self.on_durable(bytes(self._durable), stable)
        return appended

    def should_checkpoint(self) -> bool:
        """True when the configured commit cadence is due."""
        return (
            self.checkpoint_every_commits is not None
            and self._commits_since_checkpoint >= self.checkpoint_every_commits
        )

    def write_checkpoint(self, state: CheckpointState) -> int:
        """Append a durable ``CHECKPOINT`` record holding ``state``.

        Requires an empty staged buffer (commit first): a checkpoint is
        itself a durability marker, so un-fenced records must not
        precede it.  The pre-checkpoint prefix is *not* cut here — it is
        truncated lazily on the next commit, so a crash that tears the
        checkpoint record leaves the old log intact ahead of it.
        Returns the number of bytes appended.
        """
        if self._staged:
            raise ValueError(
                "checkpoint requires an empty staged buffer; commit first"
            )
        with trace.span("journal.checkpoint"):
            payload = state.encode()
            self._apply_pending_truncation()
            stable = len(self._durable)
            frame = bytearray()
            self._frame(frame, RecordKind.CHECKPOINT, payload)
            self.records_written += 1
            self._records_total.inc()
            self._durable += frame
            self._truncate_at = stable
            self.checkpoints += 1
            self._commits_since_checkpoint = 0
            self._checkpoints_total.inc()
            if self.on_durable is not None:
                self.on_durable(bytes(self._durable), stable)
        return len(frame)

    # -- persistence ----------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The durable on-disk image (staged records are *not* in it)."""
        return bytes(self._durable)

    def seed(self, image: bytes) -> None:
        """Adopt a recovered durable image as this journal's history.

        The commit-sequence cursor resumes past the image's highest
        fence, so the recovered journal's next commit extends — rather
        than collides with — the durable history.
        """
        if self._durable or self._staged:
            raise ValueError("cannot seed a non-empty journal")
        self._durable += image
        scanned, _clean = _scan(image)
        self._next_commit_seq = max(
            (
                record.seq
                for record, _end in scanned
                if record.kind == RecordKind.COMMIT
            ),
            default=-1,
        ) + 1

    @property
    def size_bytes(self) -> int:
        """Durable image size."""
        return len(self._durable)

    @property
    def staged_bytes(self) -> int:
        """Bytes staged but not yet committed (lost on crash)."""
        return len(self._staged)

    #: Framing sizes, exposed for the crash harness's tear-offset
    #: classification (header = kind + payload length, trailer = CRC32).
    HEADER_SIZE = _HEADER.size
    CRC_SIZE = _CRC.size

    # -- decoding -------------------------------------------------------------
    @staticmethod
    def frame_spans(raw: bytes) -> List[Tuple[int, int, int]]:
        """``(kind, start, end)`` per well-framed record in ``raw``.

        Stops at the first torn frame (same walk as :meth:`decode`); the
        crash harness uses the spans to place tears mid-header,
        mid-payload, mid-CRC and on record boundaries.
        """
        scanned, _clean = _scan(raw)
        spans: List[Tuple[int, int, int]] = []
        start = 0
        for record, end in scanned:
            spans.append((record.kind, start, end))
            start = end
        return spans

    @staticmethod
    def decode(raw: bytes) -> Tuple[List[JournalRecord], bool]:
        """Decode an image; returns ``(records, clean)``.

        ``clean`` is False when the tail was torn or corrupt — the valid
        prefix is still returned, which is exactly the recovery contract.
        """
        scanned, clean = _scan(raw)
        return [record for record, _end in scanned], clean

    @staticmethod
    def _decode_payload(kind: int, payload: bytes) -> Optional[JournalRecord]:
        try:
            if kind == RecordKind.NEW_CHUNK:
                pbn, digest, container, offset, stored, logical = (
                    _NEW_CHUNK.unpack(payload)
                )
                return JournalRecord(
                    kind=kind, pbn=pbn, digest=digest, container_id=container,
                    offset=offset, stored_size=stored, logical_size=logical,
                )
            if kind == RecordKind.MAP:
                lba, pbn = _MAP.unpack(payload)
                return JournalRecord(kind=kind, lba=lba, pbn=pbn)
            if kind == RecordKind.FREE:
                (pbn,) = _FREE.unpack(payload)
                return JournalRecord(kind=kind, pbn=pbn)
            if kind == RecordKind.UNMAP:
                (lba,) = _UNMAP.unpack(payload)
                return JournalRecord(kind=kind, lba=lba)
            if kind == RecordKind.REPOINT:
                pbn, container, offset = _REPOINT.unpack(payload)
                return JournalRecord(
                    kind=kind, pbn=pbn, container_id=container, offset=offset
                )
            if kind in (RecordKind.SNAP_CREATE, RecordKind.SNAP_DELETE):
                return JournalRecord(kind=kind, name=payload.decode("utf-8"))
            if kind == RecordKind.CHECKPOINT:
                # Structural validation is deferred to replay, where a
                # CRC-valid-but-unparseable payload raises the typed
                # JournalCorruptError instead of masquerading as a tear.
                return JournalRecord(kind=kind, blob=payload)
            if kind == RecordKind.COMMIT:
                (seq,) = _COMMIT.unpack(payload)
                return JournalRecord(kind=kind, seq=seq)
        except (struct.error, UnicodeDecodeError):
            return None
        return None


def _scan(raw: bytes) -> Tuple[List[Tuple[JournalRecord, int]], bool]:
    """Frame-walk an image into ``(record, end_offset)`` pairs.

    Stops at the first torn or CRC-failing frame; ``clean`` is False in
    that case.  ``end_offset`` is the byte position just past each
    record — replay uses it to know how many bytes of the image the
    effective (fenced) prefix covers.
    """
    scanned: List[Tuple[JournalRecord, int]] = []
    position = 0
    while position < len(raw):
        if position + _HEADER.size > len(raw):
            return scanned, False
        kind, length = _HEADER.unpack_from(raw, position)
        end = position + _HEADER.size + length + _CRC.size
        if end > len(raw):
            return scanned, False
        payload = raw[position + _HEADER.size : end - _CRC.size]
        (crc,) = _CRC.unpack_from(raw, end - _CRC.size)
        if zlib.crc32(raw[position : end - _CRC.size]) != crc:
            return scanned, False
        record = MetadataJournal._decode_payload(kind, payload)
        if record is None:
            return scanned, False
        scanned.append((record, end))
        position = end
    return scanned, True


@dataclass
class RecoveryImage:
    """What survives a crash: the durable journal + the container store.

    Feed one (or a per-shard sequence) to
    :func:`~repro.systems.factory.build_engine` via ``recover_from=``.
    """

    journal: bytes
    containers: ContainerStore


@dataclass
class RecoveryReport:
    """What recovery did, attached to the engine as ``engine.recovery``."""

    clean: bool
    records_replayed: int = 0
    records_discarded: int = 0
    from_checkpoint: bool = False
    #: Byte length of the effective (fenced) prefix that was applied.
    durable_bytes: int = 0
    #: Container placements that no replayed PBN owns, reclaimed by
    #: :func:`reconcile_containers` (torn-batch appends + frees that
    #: were deferred behind a commit that never landed).
    orphans_reclaimed: int = 0


class _Replayer:
    """Applies one journal image's effective prefix to a fresh engine."""

    def __init__(self, engine: DedupEngine) -> None:
        self.engine = engine
        #: PBNs placed by NEW_CHUNK whose own first MAP has not arrived
        #: yet — distinguishes the unique-chunk MAP (no dup increment)
        #: from a genuine duplicate hit during ledger reconstruction.
        self.pending_first_map: set[int] = set()
        #: Last COMMIT sequence number seen; fences must strictly
        #: increase, or a duplicated/replayed frame batch is in play.
        self.last_commit_seq = -1

    def apply(self, index: int, record: JournalRecord) -> None:
        try:
            self._apply(record)
        except JournalCorruptError:
            raise
        except (KeyError, ValueError) as error:
            raise JournalCorruptError(
                f"journal record {index} (kind {record.kind}) cannot be "
                f"replayed: {error}"
            ) from error

    def _apply(self, record: JournalRecord) -> None:
        engine = self.engine
        kind = record.kind
        if kind == RecordKind.NEW_CHUNK:
            if engine.pbn_map.find_by_fingerprint(record.digest) is not None:
                raise JournalCorruptError(
                    f"duplicate NEW_CHUNK for a live fingerprint "
                    f"(PBN {record.pbn})"
                )
            engine.pbn_map.add(
                record.pbn,
                PbnRecord(
                    container_id=record.container_id,
                    offset=record.offset,
                    stored_size=record.stored_size,
                    fingerprint=record.digest,
                    refcount=0,  # references arrive via MAP records
                ),
            )
            engine.table.insert(record.digest, record.pbn)
            engine.allocator.ensure_allocated(record.pbn)
            self.pending_first_map.add(record.pbn)
            engine.stats.unique_chunks += 1
            engine.stats.unique_logical_bytes += record.logical_size
            engine.stats.stored_bytes += record.stored_size
        elif kind == RecordKind.MAP:
            if record.pbn not in engine.pbn_map:
                raise JournalCorruptError(
                    f"MAP references PBN {record.pbn}, which the journal "
                    "never placed"
                )
            engine.pbn_map.ref(record.pbn)
            old = engine.lba_map.set(record.lba, record.pbn)
            engine.stats.logical_bytes += engine.chunker.chunk_size
            if record.pbn in self.pending_first_map:
                self.pending_first_map.discard(record.pbn)
            else:
                engine.stats.duplicate_chunks += 1
            if old is not None:
                self._release(old)
        elif kind == RecordKind.UNMAP:
            old = engine.lba_map.unmap(record.lba)
            if old is not None:
                self._release(old)
        elif kind == RecordKind.REPOINT:
            if record.pbn not in engine.pbn_map:
                raise JournalCorruptError(
                    f"REPOINT references PBN {record.pbn}, which the "
                    "journal never placed"
                )
            engine.pbn_map.repoint(record.pbn, record.container_id, record.offset)
        elif kind == RecordKind.SNAP_CREATE:
            if record.name in engine._snapshots:
                raise JournalCorruptError(
                    f"SNAP_CREATE for existing snapshot {record.name!r}"
                )
            pins = dict(engine.lba_map.items())
            for pbn in pins.values():
                engine.pbn_map.ref(pbn)
            engine._snapshots[record.name] = pins
        elif kind == RecordKind.SNAP_DELETE:
            if record.name not in engine._snapshots:
                raise JournalCorruptError(
                    f"SNAP_DELETE for unknown snapshot {record.name!r}"
                )
            pins = engine._snapshots.pop(record.name)
            for pbn in pins.values():
                self._release(pbn)
        elif kind == RecordKind.FREE:
            # Advisory (MAP/UNMAP replay already performed the release).
            pass
        elif kind == RecordKind.COMMIT:
            if record.seq <= self.last_commit_seq:
                raise JournalCorruptError(
                    f"commit sequence regressed ({self.last_commit_seq} -> "
                    f"{record.seq}): a committed batch was duplicated or "
                    "replayed out of order"
                )
            self.last_commit_seq = record.seq
        else:
            raise JournalCorruptError(f"unknown record kind {kind}")

    def _release(self, pbn: int) -> None:
        """Metadata-only release: the surviving container store already
        reflects (or :func:`reconcile_containers` will square) the
        physical space accounting."""
        dead = self.engine.pbn_map.unref(pbn)
        if dead is not None:
            self.engine.table.remove(dead.fingerprint)
            self.engine.allocator.free(pbn)
            self.engine.stats.reclaimed_stored_bytes += dead.stored_size

    def restore_checkpoint(self, state: CheckpointState) -> None:
        engine = self.engine
        engine.allocator.reserve_through(state.next_pbn)
        for pbn, digest, container_id, offset, stored, refcount in state.pbn_records:
            engine.pbn_map.add(
                pbn,
                PbnRecord(
                    container_id=container_id,
                    offset=offset,
                    stored_size=stored,
                    fingerprint=digest,
                    refcount=refcount,
                ),
            )
            engine.table.insert(digest, pbn)
            engine.allocator.ensure_allocated(pbn)
        for lba, pbn in state.lba_entries:
            engine.lba_map.set(lba, pbn)
        for name, entries in state.snapshots:
            engine._snapshots[name] = dict(entries)
        (
            engine.stats.logical_bytes,
            engine.stats.unique_logical_bytes,
            engine.stats.stored_bytes,
            engine.stats.reclaimed_stored_bytes,
            engine.stats.duplicate_chunks,
            engine.stats.unique_chunks,
        ) = state.stats


def replay_journal(engine: DedupEngine, image: bytes) -> RecoveryReport:
    """Replay ``image``'s effective (fenced) prefix into a *fresh* engine.

    The effective prefix runs through the last durability marker
    (``COMMIT`` fence or ``CHECKPOINT``); an un-fenced suffix was never
    acknowledged to any client and is discarded — an image with records
    but no marker at all (a crash inside the very first group commit)
    therefore replays nothing.  When the prefix holds a checkpoint,
    state restores from it and only the tail after it is replayed.

    Raises :class:`~repro.errors.JournalCorruptError` when the committed
    prefix is semantically impossible — never a silent wrong answer.
    """
    with trace.span("engine.recover", image_bytes=len(image)):
        scanned, clean = _scan(image)
        marker_indexes = [
            i for i, (record, _end) in enumerate(scanned)
            if record.kind in _DURABILITY_MARKERS
        ]
        keep = marker_indexes[-1] + 1 if marker_indexes else 0
        if keep < len(scanned):
            clean = False
        durable_bytes = scanned[keep - 1][1] if keep else 0
        checkpoint_index: Optional[int] = None
        for i in range(keep - 1, -1, -1):
            if scanned[i][0].kind == RecordKind.CHECKPOINT:
                checkpoint_index = i
                break
        replayer = _Replayer(engine)
        start = 0
        if checkpoint_index is not None:
            state = CheckpointState.decode(scanned[checkpoint_index][0].blob)
            replayer.restore_checkpoint(state)
            start = checkpoint_index + 1
        replayed = keep - start + (1 if checkpoint_index is not None else 0)
        for i in range(start, keep):
            replayer.apply(i, scanned[i][0])
        return RecoveryReport(
            clean=clean,
            records_replayed=replayed,
            records_discarded=len(scanned) - keep,
            from_checkpoint=checkpoint_index is not None,
            durable_bytes=durable_bytes,
        )


def validate_placements(engine: DedupEngine) -> None:
    """Check every replayed PBN owns a distinct live container placement.

    The journal's committed prefix can be CRC-valid yet still lie about
    the data SSDs — e.g. a duplicated ``NEW_CHUNK`` record re-placing a
    chunk whose bytes a later free already reclaimed, or two PBNs
    claiming the same placement.  Serving reads from such a mapping
    would be a silent wrong answer, so recovery refuses with the typed
    :class:`~repro.errors.JournalCorruptError` instead.
    """
    live = {
        (container_id, offset)
        for container_id, offset, _stored in engine.containers.live_placements()
    }
    owned: set[Tuple[int, int]] = set()
    for pbn, record in engine.pbn_map.records():
        key = (record.container_id, record.offset)
        if key not in live:
            raise JournalCorruptError(
                f"PBN {pbn} points at container {record.container_id} "
                f"offset {record.offset}, which holds no chunk"
            )
        if key in owned:
            raise JournalCorruptError(
                f"container {record.container_id} offset {record.offset} "
                f"is claimed by two PBNs"
            )
        owned.add(key)


def reconcile_containers(engine: DedupEngine) -> int:
    """Mark dead every container placement no replayed PBN owns.

    Two legitimate sources of such orphans after a crash: chunk payloads
    appended by a batch whose commit fence never landed, and frees the
    engine deferred behind a commit that never returned.  Either way the
    bytes are garbage the moment the journal is the source of truth.
    Returns the number of placements reclaimed.
    """
    reclaimed = 0
    for container_id, offset, stored_size in engine.containers.live_placements():
        if engine.pbn_map.pbn_at(container_id, offset) is None:
            engine.containers.mark_dead(container_id, offset, stored_size)
            reclaimed += 1
    return reclaimed


def recover_into(engine: DedupEngine, image: bytes) -> RecoveryReport:
    """Full recovery of one engine: replay, reconcile, re-seed.

    ``engine`` must be freshly built (empty metadata) over the surviving
    container store.  After replay the engine's journal (if armed) is
    seeded with the effective prefix so the durable history continues
    seamlessly, and ``engine.recovery`` carries the report.
    """
    report = replay_journal(engine, image)
    validate_placements(engine)
    report.orphans_reclaimed = reconcile_containers(engine)
    if engine.journal is not None:
        engine.journal.seed(image[: report.durable_bytes])
    engine.recovery = report
    return report


def recover_engine(
    journal_image: bytes,
    containers: ContainerStore,
    compressor: Optional[Compressor] = None,
    num_buckets: int = 1 << 15,
) -> Tuple[DedupEngine, bool]:
    """Deprecated: use ``build_engine(config, recover_from=RecoveryImage(...))``.

    The factory path wires the recovered engine with the same codec,
    fingerprint, index and shard policy as a fresh one; this shim
    rebuilds a bare engine with defaults.  Returns ``(engine, clean)``.
    """
    warnings.warn(
        "recover_engine is deprecated; use "
        "repro.systems.factory.build_engine(config, "
        "recover_from=RecoveryImage(journal, containers))",
        DeprecationWarning,
        stacklevel=2,
    )
    engine = DedupEngine(
        table=HashPbnTable(num_buckets),
        compressor=compressor,
        containers=containers,
    )
    recover_into(engine, journal_image)
    assert engine.recovery is not None
    return engine, engine.recovery.clean

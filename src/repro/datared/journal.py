"""Metadata journaling and crash recovery.

The paper assumes its metadata updates are durable (the prototype's
tables live on table SSDs and writes are acknowledged from battery-backed
NIC buffers, §7.6.1) but does not describe a recovery path.  A storage
system that loses its Hash-PBN table or LBA map after a crash loses the
*meaning* of every byte on the data SSDs, so this module supplies one:

* :class:`MetadataJournal` — an append-only, CRC-guarded binary log of
  metadata mutations (new chunk placements, LBA mappings, frees).  A
  torn tail (the classic crash artifact) is detected and discarded.
* :func:`recover_engine` — replays a journal against the surviving
  container store and rebuilds a fully functional
  :class:`~repro.datared.dedup.DedupEngine`: Hash-PBN entries, LBA→PBN
  map, reference counts and the PBN allocator.

The engine emits journal records through its observer hook, so
journaling is opt-in and costs nothing when unused.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .compression import Compressor
from .container import ContainerStore
from .dedup import DedupEngine
from .hash_pbn import HashPbnTable
from .lba_map import PbnRecord

__all__ = [
    "RecordKind",
    "JournalRecord",
    "MetadataJournal",
    "recover_engine",
]

_HEADER = struct.Struct(">BI")  # kind, payload length
_CRC = struct.Struct(">I")

_NEW_CHUNK = struct.Struct(">Q32sQHHI")  # pbn, digest, container, offset, stored, logical
_MAP = struct.Struct(">QQ")  # lba, pbn
_FREE = struct.Struct(">Q")  # pbn


class RecordKind:
    NEW_CHUNK = 1  #: a unique chunk was placed (pbn, digest, placement)
    MAP = 2  #: an LBA now points at a PBN
    FREE = 3  #: a PBN's last reference dropped (advisory; MAP implies it)


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal entry."""

    kind: int
    pbn: int = 0
    lba: int = 0
    digest: bytes = b""
    container_id: int = 0
    offset: int = 0
    stored_size: int = 0
    logical_size: int = 0


class MetadataJournal:
    """Append-only metadata log with per-record CRC framing.

    Implements the engine-observer protocol (``on_new_chunk``,
    ``on_map``, ``on_free``), so an instance can be handed directly to
    :class:`~repro.datared.dedup.DedupEngine` as its observer.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.records_written = 0

    # -- framing --------------------------------------------------------------
    def _append(self, kind: int, payload: bytes) -> None:
        crc = zlib.crc32(payload)
        self._buffer += _HEADER.pack(kind, len(payload))
        self._buffer += payload
        self._buffer += _CRC.pack(crc)
        self.records_written += 1

    # -- observer protocol (called by the engine) ---------------------------------
    def on_new_chunk(
        self, pbn: int, digest: bytes, container_id: int, offset: int,
        stored_size: int, logical_size: int,
    ) -> None:
        self._append(
            RecordKind.NEW_CHUNK,
            _NEW_CHUNK.pack(
                pbn, digest, container_id, offset, stored_size, logical_size
            ),
        )

    def on_map(self, lba: int, pbn: int) -> None:
        self._append(RecordKind.MAP, _MAP.pack(lba, pbn))

    def on_free(self, pbn: int) -> None:
        self._append(RecordKind.FREE, _FREE.pack(pbn))

    # -- persistence -----------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The journal's on-disk image."""
        return bytes(self._buffer)

    @property
    def size_bytes(self) -> int:
        return len(self._buffer)

    @staticmethod
    def decode(raw: bytes) -> Tuple[List[JournalRecord], bool]:
        """Decode an image; returns ``(records, clean)``.

        ``clean`` is False when the tail was torn or corrupt — the valid
        prefix is still returned, which is exactly the recovery contract.
        """
        records: List[JournalRecord] = []
        position = 0
        while position < len(raw):
            if position + _HEADER.size > len(raw):
                return records, False
            kind, length = _HEADER.unpack_from(raw, position)
            end = position + _HEADER.size + length + _CRC.size
            if end > len(raw):
                return records, False
            payload = raw[position + _HEADER.size : end - _CRC.size]
            (crc,) = _CRC.unpack_from(raw, end - _CRC.size)
            if zlib.crc32(payload) != crc:
                return records, False
            record = MetadataJournal._decode_payload(kind, payload)
            if record is None:
                return records, False
            records.append(record)
            position = end
        return records, True

    @staticmethod
    def _decode_payload(kind: int, payload: bytes) -> Optional[JournalRecord]:
        try:
            if kind == RecordKind.NEW_CHUNK:
                pbn, digest, container, offset, stored, logical = (
                    _NEW_CHUNK.unpack(payload)
                )
                return JournalRecord(
                    kind=kind, pbn=pbn, digest=digest, container_id=container,
                    offset=offset, stored_size=stored, logical_size=logical,
                )
            if kind == RecordKind.MAP:
                lba, pbn = _MAP.unpack(payload)
                return JournalRecord(kind=kind, lba=lba, pbn=pbn)
            if kind == RecordKind.FREE:
                (pbn,) = _FREE.unpack(payload)
                return JournalRecord(kind=kind, pbn=pbn)
        except struct.error:
            return None
        return None


def recover_engine(
    journal_image: bytes,
    containers: ContainerStore,
    compressor: Optional[Compressor] = None,
    num_buckets: int = 1 << 15,
) -> Tuple[DedupEngine, bool]:
    """Rebuild a dedup engine's metadata from a journal image.

    ``containers`` is the surviving data (the sealed/open containers on
    the data SSDs).  Returns ``(engine, clean)`` where ``clean`` mirrors
    :meth:`MetadataJournal.decode` — a torn tail recovers the valid
    prefix.  Replay is idempotent over the prefix semantics: reference
    counts, the Hash-PBN table and the allocator come out exactly as a
    crash at that point would leave them.
    """
    records, clean = MetadataJournal.decode(journal_image)
    engine = DedupEngine(
        table=HashPbnTable(num_buckets),
        compressor=compressor,
        containers=containers,
    )
    for record in records:
        if record.kind == RecordKind.NEW_CHUNK:
            engine.pbn_map.add(
                record.pbn,
                PbnRecord(
                    container_id=record.container_id,
                    offset=record.offset,
                    stored_size=record.stored_size,
                    fingerprint=record.digest,
                    refcount=0,  # references arrive via MAP records
                ),
            )
            engine.table.insert(record.digest, record.pbn)
            engine.allocator.ensure_allocated(record.pbn)
        elif record.kind == RecordKind.MAP:
            engine.pbn_map.ref(record.pbn)
            old = engine.lba_map.set(record.lba, record.pbn)
            if old is not None:
                dead = engine.pbn_map.unref(old)
                if dead is not None:
                    # Metadata-only release: the container store already
                    # reflects the pre-crash space accounting.
                    engine.table.remove(dead.fingerprint)
                    engine.allocator.free(old)
        elif record.kind == RecordKind.FREE:
            # Advisory (MAP replay already performed the release).
            continue
    return engine, clean

"""The Hash-PBN table (paper §2.1.3).

A bucket-based key-value store mapping 32-byte chunk fingerprints to
6-byte physical block numbers.  Each bucket is one 4-KB page — the same
granularity as a table-cache line and a table-SSD block — holding up to
107 entries of 38 bytes.

The table reads and writes buckets through a :class:`BucketStore`, which
lets the cache subsystem (:mod:`repro.cache.table_cache`) interpose a
host-memory cache over table SSDs exactly as the paper's architecture
does.  Bucket overflow uses bucket-granular linear probing with a sticky
per-bucket overflow bit, so lookups and deletes stay correct after any
insertion history.

Memory discipline (DESIGN.md §5.9): the hot path operates on **packed**
4-KB pages in place.  :class:`PackedBucket` is a cursor over the raw
page bytes — no per-entry tuples, no decode allocation — and is proven
byte-identical to the legacy decoded :class:`Bucket` by the differential
suite.  :class:`NegativeFilter` keeps a compact per-home-bucket multiset
of 16-bit digest prefixes so lookups of absent fingerprints (the
unique-heavy common case) skip bucket probing entirely, and
:meth:`HashPbnTable.lookup_many` batches resolution: repeated digests
within a batch resolve once and unique digests probe in home-bucket
order so bucket loads (and table-cache lines) are touched once per
batch.  Stores that *account* page traffic (the table cache under the
calibrated device models) keep the exact legacy access pattern: the
filter and batched resolve default on only over the private in-memory
stores.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import BucketFullError
from .hashing import FINGERPRINT_SIZE, MAX_PBN, PBN_SIZE

__all__ = [
    "ENTRY_SIZE",
    "BUCKET_SIZE",
    "BUCKET_CAPACITY",
    "PREFIX_SIZE",
    "Bucket",
    "PackedBucket",
    "NegativeFilter",
    "BucketStore",
    "InMemoryBucketStore",
    "ArenaBucketStore",
    "HashPbnTable",
    "table_bytes_for_capacity",
    "buckets_for_capacity",
]

#: One table entry: 32-byte fingerprint + 6-byte PBN (§2.1.3).
ENTRY_SIZE = FINGERPRINT_SIZE + PBN_SIZE

#: Buckets are 4-KB pages, matching table-cache lines and SSD blocks.
BUCKET_SIZE = 4096

_HEADER = struct.Struct(">HB")  # entry count, flags
_FLAG_OVERFLOWED = 0x01

#: Entries that fit in one bucket after the 3-byte header (107).
BUCKET_CAPACITY = (BUCKET_SIZE - _HEADER.size) // ENTRY_SIZE

#: Digest-prefix width the negative filter keys on (first two bytes).
PREFIX_SIZE = 2


@dataclass
class Bucket:
    """A decoded in-memory view of one 4-KB table bucket (legacy path).

    Kept as the readable reference implementation and the differential
    baseline for :class:`PackedBucket`; the table's default hot path no
    longer decodes pages into this form.
    """

    entries: List[Tuple[bytes, int]] = field(default_factory=list)
    #: Sticky bit: an insert once probed past this bucket because it was
    #: full.  Lookups may stop probing at the first bucket without it.
    overflowed: bool = False

    def lookup(self, digest: bytes) -> Optional[int]:
        for key, pbn in self.entries:
            if key == digest:
                return pbn
        return None

    def insert(self, digest: bytes, pbn: int) -> None:
        if self.is_full:
            raise BucketFullError(
                f"bucket already holds {BUCKET_CAPACITY} entries"
            )
        self.entries.append((digest, pbn))

    def remove(self, digest: bytes) -> bool:
        for position, (key, _) in enumerate(self.entries):
            if key == digest:
                del self.entries[position]
                return True
        return False

    def update(self, digest: bytes, pbn: int) -> bool:
        """Repoint an existing entry at a new PBN; False if absent."""
        for position, (key, _) in enumerate(self.entries):
            if key == digest:
                self.entries[position] = (digest, pbn)
                return True
        return False

    @property
    def entry_count(self) -> int:
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= BUCKET_CAPACITY

    def to_bytes(self) -> bytes:
        """Serialize to exactly one 4-KB page."""
        flags = _FLAG_OVERFLOWED if self.overflowed else 0
        parts = [_HEADER.pack(len(self.entries), flags)]
        for digest, pbn in self.entries:
            if len(digest) != FINGERPRINT_SIZE:
                raise ValueError("malformed fingerprint in bucket")
            parts.append(digest)
            parts.append(pbn.to_bytes(PBN_SIZE, "big"))
        body = b"".join(parts)
        return body + b"\x00" * (BUCKET_SIZE - len(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Bucket":
        if len(raw) != BUCKET_SIZE:
            raise ValueError(f"bucket pages are {BUCKET_SIZE} bytes, got {len(raw)}")
        count, flags = _HEADER.unpack_from(raw, 0)
        if count > BUCKET_CAPACITY:
            raise ValueError(f"corrupt bucket: {count} entries")
        entries: List[Tuple[bytes, int]] = []
        offset = _HEADER.size
        for _ in range(count):
            digest = raw[offset : offset + FINGERPRINT_SIZE]
            offset += FINGERPRINT_SIZE
            pbn = int.from_bytes(raw[offset : offset + PBN_SIZE], "big")
            offset += PBN_SIZE
            entries.append((digest, pbn))
        return cls(entries=entries, overflowed=bool(flags & _FLAG_OVERFLOWED))


class PackedBucket:
    """A cursor over one packed 4-KB bucket page, operated on in place.

    Holds a reference into a backing ``bytearray`` (either a private
    page or a slice of an :class:`ArenaBucketStore` arena at ``base``)
    and performs every operation directly on the page bytes: lookups
    run a C-speed aligned ``find`` over the entry region, inserts write
    the 38-byte entry into the next slot, removes shift the tail left
    and zero the vacated slot.  The page therefore stays **byte
    identical** to what the legacy :class:`Bucket` would serialize
    after the same operation history — the property the differential
    suite pins — while costing ~38 bytes per entry resident instead of
    a tuple/bytes/int object graph.
    """

    __slots__ = ("buf", "base")

    def __init__(self, buf: bytearray, base: int = 0) -> None:
        self.buf = buf
        self.base = base

    @classmethod
    def empty(cls) -> "PackedBucket":
        return cls(bytearray(BUCKET_SIZE))

    @classmethod
    def from_page(
        cls, raw: Union[bytes, bytearray, memoryview]
    ) -> "PackedBucket":
        """Wrap a copy of ``raw``; validates size and entry count."""
        if len(raw) != BUCKET_SIZE:
            raise ValueError(
                f"bucket pages are {BUCKET_SIZE} bytes, got {len(raw)}"
            )
        page = bytearray(raw)  # repro-lint: copy-ok private mutable page
        bucket = cls(page)
        if bucket.entry_count > BUCKET_CAPACITY:
            raise ValueError(f"corrupt bucket: {bucket.entry_count} entries")
        return bucket

    # -- header ------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        base = self.base
        return (self.buf[base] << 8) | self.buf[base + 1]

    def _set_count(self, count: int) -> None:
        base = self.base
        self.buf[base] = (count >> 8) & 0xFF
        self.buf[base + 1] = count & 0xFF

    @property
    def overflowed(self) -> bool:
        return bool(self.buf[self.base + 2] & _FLAG_OVERFLOWED)

    @overflowed.setter
    def overflowed(self, value: bool) -> None:
        if value:
            self.buf[self.base + 2] |= _FLAG_OVERFLOWED
        else:
            self.buf[self.base + 2] &= ~_FLAG_OVERFLOWED & 0xFF

    @property
    def is_full(self) -> bool:
        return self.entry_count >= BUCKET_CAPACITY

    # -- entry operations --------------------------------------------------
    def _find(self, digest: bytes) -> int:
        """Byte offset of ``digest``'s entry in ``buf``, or -1.

        ``bytearray.find`` scans at memcpy speed; a hit is only real
        when it lands on an entry boundary, so misaligned matches (the
        needle straddling two entries) skip forward.
        """
        if len(digest) != FINGERPRINT_SIZE:
            raise ValueError("fingerprints are 32 bytes")
        lo = self.base + _HEADER.size
        hi = lo + self.entry_count * ENTRY_SIZE
        pos = self.buf.find(digest, lo, hi)
        while pos >= 0:
            if (pos - lo) % ENTRY_SIZE == 0:
                return pos
            pos = self.buf.find(digest, pos + 1, hi)
        return -1

    def lookup(self, digest: bytes) -> Optional[int]:
        pos = self._find(digest)
        if pos < 0:
            return None
        return int.from_bytes(
            self.buf[pos + FINGERPRINT_SIZE : pos + ENTRY_SIZE], "big"
        )

    def insert(self, digest: bytes, pbn: int) -> None:
        if len(digest) != FINGERPRINT_SIZE:
            raise ValueError("fingerprints are 32 bytes")
        count = self.entry_count
        if count >= BUCKET_CAPACITY:
            raise BucketFullError(
                f"bucket already holds {BUCKET_CAPACITY} entries"
            )
        offset = self.base + _HEADER.size + count * ENTRY_SIZE
        self.buf[offset : offset + FINGERPRINT_SIZE] = digest
        self.buf[offset + FINGERPRINT_SIZE : offset + ENTRY_SIZE] = (
            pbn.to_bytes(PBN_SIZE, "big")
        )
        self._set_count(count + 1)

    def remove(self, digest: bytes) -> bool:
        pos = self._find(digest)
        if pos < 0:
            return False
        count = self.entry_count
        end = self.base + _HEADER.size + count * ENTRY_SIZE
        # Shift the tail left over the vacated slot (bytearray slice
        # assignment copies the source first, so overlap is safe), then
        # zero the freed last slot: the page must read back exactly as
        # the legacy Bucket would re-serialize it.
        self.buf[pos : end - ENTRY_SIZE] = self.buf[pos + ENTRY_SIZE : end]
        self.buf[end - ENTRY_SIZE : end] = bytes(ENTRY_SIZE)
        self._set_count(count - 1)
        return True

    def update(self, digest: bytes, pbn: int) -> bool:
        """Repoint an existing entry at a new PBN; False if absent."""
        pos = self._find(digest)
        if pos < 0:
            return False
        self.buf[pos + FINGERPRINT_SIZE : pos + ENTRY_SIZE] = pbn.to_bytes(
            PBN_SIZE, "big"
        )
        return True

    # -- interop -----------------------------------------------------------
    @property
    def entries(self) -> List[Tuple[bytes, int]]:
        """Decoded entry list (tests and tooling; not the hot path)."""
        out: List[Tuple[bytes, int]] = []
        offset = self.base + _HEADER.size
        for _ in range(self.entry_count):
            digest = bytes(self.buf[offset : offset + FINGERPRINT_SIZE])
            pbn = int.from_bytes(
                self.buf[offset + FINGERPRINT_SIZE : offset + ENTRY_SIZE],
                "big",
            )
            out.append((digest, pbn))
            offset += ENTRY_SIZE
        return out

    def to_bytes(self) -> bytes:
        """Export the page (one 4-KB copy; the packed page itself stays
        private to its store)."""
        return bytes(self.buf[self.base : self.base + BUCKET_SIZE])  # repro-lint: copy-ok page export at the byte-store boundary


#: Either bucket flavour; the table's probe loops are written against
#: the duck-typed surface both implement.
_AnyBucket = Union[Bucket, PackedBucket]


class NegativeFilter:
    """Compact per-home-bucket multiset of 16-bit digest prefixes.

    Answers "might this digest be in the table?" without touching any
    bucket page.  Every resident fingerprint contributes the 16-bit
    prefix of its digest under its **home** bucket (where its probe
    sequence starts — overflowed entries stay filed under their home),
    so a lookup whose prefix is absent from the home's multiset can
    return "unique" with zero bucket probes.  With ~100 entries per
    bucket the false-maybe rate is ~100/65536 ≈ 0.2%, so unique-heavy
    workloads skip essentially all probing.  False negatives are
    structurally impossible: membership is checked before any add is
    ever dropped (dense mode saturates a bucket *sticky* — it then
    answers "maybe" forever).

    Two storage modes share the API:

    * sparse (default) — a lazy dict of per-home prefix blobs; pays
      only for touched buckets, suits the default engine's mostly-empty
      2^16-bucket table.
    * ``dense=True`` — one flat preallocated slot array
      (:data:`BUCKET_CAPACITY` prefixes + a 16-bit count per bucket,
      ~2 bytes/entry); suits :class:`ArenaBucketStore` tables sized to
      run full, where per-object overheads would dominate.
    """

    #: Dense-mode count sentinel: the home exceeded its slot capacity;
    #: membership answers "maybe" forever (sticky, like overflow bits).
    _SATURATED = 0xFFFF

    def __init__(self, num_buckets: int, dense: bool = False) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self.dense = dense
        self._blobs: Dict[int, bytearray] = {}
        #: Dense mode only (empty otherwise): flat slot arena plus a
        #: 16-bit per-home occupancy count.
        self._slots: bytearray = (
            bytearray(num_buckets * BUCKET_CAPACITY * PREFIX_SIZE)
            if dense else bytearray()
        )
        self._counts: bytearray = (
            bytearray(num_buckets * 2) if dense else bytearray()
        )

    # -- dense helpers -----------------------------------------------------
    def _dense_count(self, home: int) -> int:
        counts = self._counts
        return (counts[home * 2] << 8) | counts[home * 2 + 1]

    def _set_dense_count(self, home: int, count: int) -> None:
        counts = self._counts
        counts[home * 2] = (count >> 8) & 0xFF
        counts[home * 2 + 1] = count & 0xFF

    @staticmethod
    def _aligned_find(blob: Union[bytes, bytearray], prefix: bytes,
                      lo: int, hi: int) -> int:
        pos = blob.find(prefix, lo, hi)
        while pos >= 0:
            if (pos - lo) % PREFIX_SIZE == 0:
                return pos
            pos = blob.find(prefix, pos + 1, hi)
        return -1

    # -- operations --------------------------------------------------------
    def might_contain(self, home: int, digest: bytes) -> bool:
        prefix = digest[:PREFIX_SIZE]  # repro-lint: copy-ok 2-byte filter needle
        if self.dense:
            count = self._dense_count(home)
            if count == self._SATURATED:
                return True
            lo = home * BUCKET_CAPACITY * PREFIX_SIZE
            return self._aligned_find(
                self._slots, prefix, lo, lo + count * PREFIX_SIZE
            ) >= 0
        blob = self._blobs.get(home)
        if blob is None:
            return False
        return self._aligned_find(blob, prefix, 0, len(blob)) >= 0

    def add(self, home: int, digest: bytes) -> None:
        prefix = digest[:PREFIX_SIZE]  # repro-lint: copy-ok 2-byte filter needle
        if self.dense:
            count = self._dense_count(home)
            if count == self._SATURATED:
                return
            if count >= BUCKET_CAPACITY:
                # More same-home entries than slots (deep overflow
                # chains): give up on this home, sticky.
                self._set_dense_count(home, self._SATURATED)
                return
            slots = self._slots
            offset = (home * BUCKET_CAPACITY + count) * PREFIX_SIZE
            slots[offset : offset + PREFIX_SIZE] = prefix
            self._set_dense_count(home, count + 1)
            return
        blob = self._blobs.get(home)
        if blob is None:
            blob = self._blobs[home] = bytearray()
        blob.extend(prefix)

    def discard(self, home: int, digest: bytes) -> None:
        """Drop one occurrence of the digest's prefix under ``home``.

        The filter is a multiset, so removing one of several equal
        prefixes keeps the rest visible; order within a home does not
        matter, so removal swaps the last prefix into the hole.
        """
        prefix = digest[:PREFIX_SIZE]  # repro-lint: copy-ok 2-byte filter needle
        if self.dense:
            count = self._dense_count(home)
            if count == self._SATURATED or count == 0:
                return
            lo = home * BUCKET_CAPACITY * PREFIX_SIZE
            hi = lo + count * PREFIX_SIZE
            pos = self._aligned_find(self._slots, prefix, lo, hi)
            if pos < 0:
                return
            slots = self._slots
            slots[pos : pos + PREFIX_SIZE] = slots[hi - PREFIX_SIZE : hi]
            slots[hi - PREFIX_SIZE : hi] = bytes(PREFIX_SIZE)
            self._set_dense_count(home, count - 1)
            return
        blob = self._blobs.get(home)
        if blob is None:
            return
        pos = self._aligned_find(blob, prefix, 0, len(blob))
        if pos < 0:
            return
        blob[pos : pos + PREFIX_SIZE] = blob[-PREFIX_SIZE:]
        del blob[-PREFIX_SIZE:]
        if not blob:
            del self._blobs[home]


class BucketStore:
    """Backing store interface for table buckets (4-KB pages).

    The byte-page methods (:meth:`read_bucket`/:meth:`write_bucket`) are
    the canonical interface — caches and SSD adapters interpose on them
    and account 4-KB page traffic.  The *decoded* and *packed* methods
    are hot-path refinements (DESIGN.md §5.4, §5.9): stores that
    natively hold :class:`Bucket` or :class:`PackedBucket` objects
    override them to skip the per-operation page round-trip.  The
    defaults delegate to the byte-page methods, so interposing stores
    keep exact page accounting without any change.
    """

    def read_bucket(self, index: int) -> bytes:
        raise NotImplementedError

    def write_bucket(self, index: int, page: bytes) -> None:
        raise NotImplementedError

    def load_bucket(self, index: int) -> Bucket:
        """Decoded read; default decodes the byte page."""
        return Bucket.from_bytes(self.read_bucket(index))

    def store_bucket(self, index: int, bucket: Bucket) -> None:
        """Decoded write; default encodes to a byte page."""
        self.write_bucket(index, bucket.to_bytes())

    def load_packed(self, index: int) -> PackedBucket:
        """Packed read; default wraps the byte page (one page copy,
        no per-entry decode)."""
        return PackedBucket.from_page(self.read_bucket(index))

    def store_packed(self, index: int, bucket: PackedBucket) -> None:
        """Packed write; default exports to a byte page."""
        self.write_bucket(index, bucket.to_bytes())


class InMemoryBucketStore(BucketStore):
    """Dict-backed store; unwritten buckets read back empty.

    The store serves three page flavours through one dict: raw byte
    pages (the generic 4-KB interface —
    :class:`~repro.datared.lba_store.PagedLbaStore` stores LBA array
    pages here that are *not* bucket-encoded), decoded :class:`Bucket`
    objects (the legacy table hot path), and :class:`PackedBucket`
    pages (the default table hot path, which skips both the 4-KB
    encode/decode and the per-entry object graph).  A page converts
    lazily on the first access in another form, so mixed access per
    index stays coherent.  The ``reads``/``writes`` counters count page
    accesses identically in all forms.
    """

    _EMPTY = Bucket().to_bytes()

    def __init__(self) -> None:
        self._pages: Dict[int, Union[bytes, Bucket, PackedBucket]] = {}
        self.reads = 0
        self.writes = 0

    def read_bucket(self, index: int) -> bytes:
        self.reads += 1
        page = self._pages.get(index)
        if page is None:
            return self._EMPTY
        if isinstance(page, (Bucket, PackedBucket)):
            return page.to_bytes()
        return page

    def write_bucket(self, index: int, page: bytes) -> None:
        if len(page) != BUCKET_SIZE:
            raise ValueError("bucket pages must be 4 KB")
        self.writes += 1
        self._pages[index] = page

    def load_bucket(self, index: int) -> Bucket:  # repro-lint: hot-path
        self.reads += 1
        page = self._pages.get(index)
        if page is None:
            return Bucket()
        if not isinstance(page, Bucket):
            if isinstance(page, PackedBucket):
                page = Bucket.from_bytes(page.to_bytes())
            else:
                page = Bucket.from_bytes(page)
            self._pages[index] = page
        return page

    def store_bucket(self, index: int, bucket: Bucket) -> None:  # repro-lint: hot-path
        self.writes += 1
        self._pages[index] = bucket

    def load_packed(self, index: int) -> PackedBucket:  # repro-lint: hot-path
        self.reads += 1
        page = self._pages.get(index)
        if page is None:
            return PackedBucket.empty()
        if not isinstance(page, PackedBucket):
            if isinstance(page, Bucket):
                page = PackedBucket.from_page(page.to_bytes())
            else:
                page = PackedBucket.from_page(page)
            self._pages[index] = page
        return page

    def store_packed(self, index: int, bucket: PackedBucket) -> None:  # repro-lint: hot-path
        self.writes += 1
        self._pages[index] = bucket


class ArenaBucketStore(BucketStore):
    """All buckets in one preallocated flat arena (DESIGN.md §5.9).

    The memory-dense configuration for tables sized to run near
    capacity: pages live at fixed offsets of a single ``bytearray``, so
    the resident cost is exactly :data:`BUCKET_SIZE` per bucket — no
    dict entry, no per-page object header — and :meth:`load_packed`
    hands out a zero-copy :class:`PackedBucket` cursor into the arena.
    Allocation is eager (``num_buckets × 4 KB`` up front), which is why
    this is not the default store for sparsely-filled tables.
    """

    def __init__(self, num_buckets: int) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self._arena = bytearray(num_buckets * BUCKET_SIZE)
        self.reads = 0
        self.writes = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_buckets:
            raise IndexError(
                f"bucket {index} outside arena of {self.num_buckets}"
            )

    def read_bucket(self, index: int) -> bytes:
        self._check(index)
        self.reads += 1
        base = index * BUCKET_SIZE
        return bytes(self._arena[base : base + BUCKET_SIZE])  # repro-lint: copy-ok page export at the byte-store boundary

    def write_bucket(self, index: int, page: bytes) -> None:
        self._check(index)
        if len(page) != BUCKET_SIZE:
            raise ValueError("bucket pages must be 4 KB")
        self.writes += 1
        base = index * BUCKET_SIZE
        self._arena[base : base + BUCKET_SIZE] = page

    def load_packed(self, index: int) -> PackedBucket:  # repro-lint: hot-path
        self._check(index)
        self.reads += 1
        return PackedBucket(self._arena, index * BUCKET_SIZE)

    def store_packed(self, index: int, bucket: PackedBucket) -> None:  # repro-lint: hot-path
        self._check(index)
        self.writes += 1
        if bucket.buf is not self._arena or bucket.base != index * BUCKET_SIZE:
            # A foreign page (built elsewhere): copy it into place.
            base = index * BUCKET_SIZE
            self._arena[base : base + BUCKET_SIZE] = bucket.to_bytes()
        # Arena-resident cursors mutated in place; nothing to move.


class HashPbnTable:
    """Fingerprint → PBN store over a bucket-granular backing store.

    All bucket IO flows through the injected :class:`BucketStore`; the
    table itself holds no pages, so a cached store sees every access.

    ``packed`` selects the page representation the hot path uses:
    packed (default) operates on raw 4-KB pages via
    :class:`PackedBucket`, legacy decodes into :class:`Bucket` entry
    lists.  Both produce byte-identical stored pages for any operation
    history.  ``negative_filter`` arms the :class:`NegativeFilter`
    probe-skip (``None`` = auto: on over the private in-memory stores,
    off over interposing stores such as the table cache, whose page
    accounting feeds the calibrated device models and must keep the
    exact per-lookup access pattern).
    """

    def __init__(
        self,
        num_buckets: int,
        store: Optional[BucketStore] = None,
        *,
        packed: bool = True,
        negative_filter: Optional[bool] = None,
    ) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self.store = store if store is not None else InMemoryBucketStore()
        self.packed = packed
        #: True when no accounting store interposes on page traffic —
        #: the condition under which probe-skipping/batching fast paths
        #: cannot perturb a calibrated device model.
        self.private_store = isinstance(
            self.store, (InMemoryBucketStore, ArenaBucketStore)
        )
        if negative_filter is None:
            negative_filter = self.private_store
        self.filter: Optional[NegativeFilter] = (
            NegativeFilter(
                num_buckets, dense=isinstance(self.store, ArenaBucketStore)
            )
            if negative_filter
            else None
        )
        self.entry_count = 0
        self.probe_count = 0  # buckets touched, for locality analysis
        #: Lookups the negative filter resolved with zero bucket probes.
        self.filter_hits = 0
        #: Lookups the filter passed through to the probe loop.
        self.filter_misses = 0
        #: Table probes :meth:`lookup_many` skipped because the digest
        #: repeated within the batch (the intra-batch dedupe).
        self.saved_batch_lookups = 0

    # -- helpers -------------------------------------------------------------
    def _home(self, digest: bytes) -> int:  # repro-lint: hot-path
        # Inlined bucket_index() without its argument validation — the
        # table mints every digest it sees through fingerprint(), so the
        # 32-byte invariant holds structurally.
        return int.from_bytes(digest[-8:], "big") % self.num_buckets  # repro-lint: copy-ok 8-byte index slice

    def _load(self, index: int) -> _AnyBucket:  # repro-lint: hot-path
        self.probe_count += 1
        if self.packed:
            return self.store.load_packed(index)
        return self.store.load_bucket(index)

    def _save(self, index: int, bucket: _AnyBucket) -> None:  # repro-lint: hot-path
        if isinstance(bucket, PackedBucket):
            self.store.store_packed(index, bucket)
        else:
            self.store.store_bucket(index, bucket)

    def _filter_says_absent(self, home: int, digest: bytes) -> bool:  # repro-lint: hot-path
        """Consult the negative filter; True means skip all probes."""
        if self.filter is None:
            return False
        if self.filter.might_contain(home, digest):
            self.filter_misses += 1
            return False
        self.filter_hits += 1
        return True

    # -- operations ------------------------------------------------------------
    def lookup(self, digest: bytes) -> Optional[int]:
        """Return the PBN stored for ``digest``, or ``None`` if unique."""
        index = self._home(digest)
        if self._filter_says_absent(index, digest):
            return None
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            pbn = bucket.lookup(digest)
            if pbn is not None:
                return pbn
            if not bucket.overflowed:
                return None
            index = (index + 1) % self.num_buckets
        return None

    def lookup_many(
        self, digests: Sequence[bytes]
    ) -> List[Optional[int]]:
        """Resolve a batch of digests against the current table state.

        Three batch effects the per-call :meth:`lookup` cannot get
        (DESIGN.md §5.9): repeated digests resolve once (counted in
        :attr:`saved_batch_lookups`), unique digests probe in home-
        bucket order, and every bucket loaded during the call is reused
        for the rest of it — so a batch touches each bucket once no
        matter how many digests land in it.  Results are positionally
        aligned with ``digests`` and identical to calling ``lookup``
        per digest.  Read-only: callers interleaving mutations must
        re-resolve affected digests themselves (the engine's batched
        write path keeps an override map for exactly that).
        """
        unique_of: Dict[bytes, int] = {}
        unique: List[bytes] = []
        for digest in digests:
            if digest not in unique_of:
                unique_of[digest] = len(unique)
                unique.append(digest)
        self.saved_batch_lookups += len(digests) - len(unique)

        homes = [self._home(digest) for digest in unique]
        order = sorted(range(len(unique)), key=homes.__getitem__)
        results: List[Optional[int]] = [None] * len(unique)
        loaded: Dict[int, _AnyBucket] = {}
        for position in order:
            digest = unique[position]
            home = homes[position]
            if self._filter_says_absent(home, digest):
                continue
            index = home
            for _ in range(self.num_buckets):
                bucket = loaded.get(index)
                if bucket is None:
                    bucket = self._load(index)
                    loaded[index] = bucket
                else:
                    self.probe_count += 1
                pbn = bucket.lookup(digest)
                if pbn is not None:
                    results[position] = pbn
                    break
                if not bucket.overflowed:
                    break
                index = (index + 1) % self.num_buckets
        return [results[unique_of[digest]] for digest in digests]

    def insert(self, digest: bytes, pbn: int) -> None:
        """Insert a new fingerprint.  The caller must have checked
        uniqueness via :meth:`lookup` (the dedup flow always does)."""
        if not 0 <= pbn <= MAX_PBN:
            raise ValueError(f"PBN {pbn} out of range")
        if len(digest) != FINGERPRINT_SIZE:
            raise ValueError("fingerprints are 32 bytes")
        home = self._home(digest)
        index = home
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            if not bucket.is_full:
                bucket.insert(digest, pbn)
                self._save(index, bucket)
                self.entry_count += 1
                if self.filter is not None:
                    self.filter.add(home, digest)
                return
            if not bucket.overflowed:
                bucket.overflowed = True
                self._save(index, bucket)
            index = (index + 1) % self.num_buckets
        raise RuntimeError("Hash-PBN table is full")

    def remove(self, digest: bytes) -> bool:
        """Remove a fingerprint (garbage collection of freed chunks)."""
        home = self._home(digest)
        if self._filter_says_absent(home, digest):
            return False
        index = home
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            if bucket.remove(digest):
                self._save(index, bucket)
                self.entry_count -= 1
                if self.filter is not None:
                    self.filter.discard(home, digest)
                return True
            if not bucket.overflowed:
                return False
            index = (index + 1) % self.num_buckets
        return False

    def update(self, digest: bytes, pbn: int) -> bool:
        """Repoint an existing fingerprint at a new PBN (defragmentation)."""
        index = self._home(digest)
        if self._filter_says_absent(index, digest):
            return False
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            if bucket.update(digest, pbn):
                self._save(index, bucket)
                return True
            if not bucket.overflowed:
                return False
            index = (index + 1) % self.num_buckets
        return False

    def __len__(self) -> int:
        return self.entry_count

    @property
    def load_factor(self) -> float:
        return self.entry_count / (self.num_buckets * BUCKET_CAPACITY)


def table_bytes_for_capacity(unique_bytes: int, chunk_size: int = 4096) -> int:
    """Raw Hash-PBN metadata size for a given unique-data capacity.

    Reproduces §2.1.3's sizing: 1 PB of unique 4-KB chunks needs
    ``1e15 / 4096 * 38 ≈ 9.3 TB`` of table (the paper rounds to 9.5 TB).
    """
    if unique_bytes < 0 or chunk_size <= 0:
        raise ValueError("sizes must be non-negative / positive")
    return (unique_bytes // chunk_size) * ENTRY_SIZE


def buckets_for_capacity(unique_bytes: int, chunk_size: int = 4096,
                         load_factor: float = 0.7) -> int:
    """Bucket count sized so the table runs at ``load_factor`` occupancy."""
    if not 0 < load_factor <= 1:
        raise ValueError("load_factor must be in (0, 1]")
    chunks = max(1, unique_bytes // chunk_size)
    return max(1, int(chunks / (BUCKET_CAPACITY * load_factor)) + 1)

"""The Hash-PBN table (paper §2.1.3).

A bucket-based key-value store mapping 32-byte chunk fingerprints to
6-byte physical block numbers.  Each bucket is one 4-KB page — the same
granularity as a table-cache line and a table-SSD block — holding up to
107 entries of 38 bytes.

The table reads and writes buckets through a :class:`BucketStore`, which
lets the cache subsystem (:mod:`repro.cache.table_cache`) interpose a
host-memory cache over table SSDs exactly as the paper's architecture
does.  Bucket overflow uses bucket-granular linear probing with a sticky
per-bucket overflow bit, so lookups and deletes stay correct after any
insertion history.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .hashing import FINGERPRINT_SIZE, MAX_PBN, PBN_SIZE

__all__ = [
    "ENTRY_SIZE",
    "BUCKET_SIZE",
    "BUCKET_CAPACITY",
    "Bucket",
    "BucketStore",
    "InMemoryBucketStore",
    "HashPbnTable",
    "table_bytes_for_capacity",
    "buckets_for_capacity",
]

#: One table entry: 32-byte fingerprint + 6-byte PBN (§2.1.3).
ENTRY_SIZE = FINGERPRINT_SIZE + PBN_SIZE

#: Buckets are 4-KB pages, matching table-cache lines and SSD blocks.
BUCKET_SIZE = 4096

_HEADER = struct.Struct(">HB")  # entry count, flags
_FLAG_OVERFLOWED = 0x01

#: Entries that fit in one bucket after the 3-byte header (107).
BUCKET_CAPACITY = (BUCKET_SIZE - _HEADER.size) // ENTRY_SIZE


@dataclass
class Bucket:
    """An in-memory view of one 4-KB table bucket."""

    entries: List[Tuple[bytes, int]] = field(default_factory=list)
    #: Sticky bit: an insert once probed past this bucket because it was
    #: full.  Lookups may stop probing at the first bucket without it.
    overflowed: bool = False

    def lookup(self, digest: bytes) -> Optional[int]:
        for key, pbn in self.entries:
            if key == digest:
                return pbn
        return None

    def insert(self, digest: bytes, pbn: int) -> None:
        if self.is_full:
            raise ValueError("bucket is full")
        self.entries.append((digest, pbn))

    def remove(self, digest: bytes) -> bool:
        for position, (key, _) in enumerate(self.entries):
            if key == digest:
                del self.entries[position]
                return True
        return False

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= BUCKET_CAPACITY

    def to_bytes(self) -> bytes:
        """Serialize to exactly one 4-KB page."""
        flags = _FLAG_OVERFLOWED if self.overflowed else 0
        parts = [_HEADER.pack(len(self.entries), flags)]
        for digest, pbn in self.entries:
            if len(digest) != FINGERPRINT_SIZE:
                raise ValueError("malformed fingerprint in bucket")
            parts.append(digest)
            parts.append(pbn.to_bytes(PBN_SIZE, "big"))
        body = b"".join(parts)
        return body + b"\x00" * (BUCKET_SIZE - len(body))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Bucket":
        if len(raw) != BUCKET_SIZE:
            raise ValueError(f"bucket pages are {BUCKET_SIZE} bytes, got {len(raw)}")
        count, flags = _HEADER.unpack_from(raw, 0)
        if count > BUCKET_CAPACITY:
            raise ValueError(f"corrupt bucket: {count} entries")
        entries: List[Tuple[bytes, int]] = []
        offset = _HEADER.size
        for _ in range(count):
            digest = raw[offset : offset + FINGERPRINT_SIZE]
            offset += FINGERPRINT_SIZE
            pbn = int.from_bytes(raw[offset : offset + PBN_SIZE], "big")
            offset += PBN_SIZE
            entries.append((digest, pbn))
        return cls(entries=entries, overflowed=bool(flags & _FLAG_OVERFLOWED))


class BucketStore:
    """Backing store interface for table buckets (4-KB pages).

    The byte-page methods (:meth:`read_bucket`/:meth:`write_bucket`) are
    the canonical interface — caches and SSD adapters interpose on them
    and account 4-KB page traffic.  The *decoded* methods are a hot-path
    refinement (DESIGN.md §5.4): stores that natively hold decoded
    :class:`Bucket` objects override them to skip the 4-KB
    serialize/parse round-trip per table operation.  The defaults
    delegate to the byte-page methods, so interposing stores keep exact
    page accounting without any change.
    """

    def read_bucket(self, index: int) -> bytes:
        raise NotImplementedError

    def write_bucket(self, index: int, page: bytes) -> None:
        raise NotImplementedError

    def load_bucket(self, index: int) -> Bucket:
        """Decoded read; default decodes the byte page."""
        return Bucket.from_bytes(self.read_bucket(index))

    def store_bucket(self, index: int, bucket: Bucket) -> None:
        """Decoded write; default encodes to a byte page."""
        self.write_bucket(index, bucket.to_bytes())


class InMemoryBucketStore(BucketStore):
    """Dict-backed store; unwritten buckets read back empty.

    The store serves two page flavours through one dict: raw byte pages
    (the generic 4-KB interface — :class:`~repro.datared.lba_store.PagedLbaStore`
    stores LBA array pages here that are *not* bucket-encoded) and
    decoded :class:`Bucket` objects (the table's hot path, which skips
    the per-op 4-KB encode/decode).  A page converts lazily on the
    first access in the other form, so mixed access per index stays
    coherent.  The ``reads``/``writes`` counters count page accesses
    identically in both forms.
    """

    _EMPTY = Bucket().to_bytes()

    def __init__(self) -> None:
        self._pages: Dict[int, Union[bytes, Bucket]] = {}
        self.reads = 0
        self.writes = 0

    def read_bucket(self, index: int) -> bytes:
        self.reads += 1
        page = self._pages.get(index)
        if page is None:
            return self._EMPTY
        if isinstance(page, Bucket):
            return page.to_bytes()
        return page

    def write_bucket(self, index: int, page: bytes) -> None:
        if len(page) != BUCKET_SIZE:
            raise ValueError("bucket pages must be 4 KB")
        self.writes += 1
        self._pages[index] = page

    def load_bucket(self, index: int) -> Bucket:  # repro-lint: hot-path
        self.reads += 1
        page = self._pages.get(index)
        if page is None:
            return Bucket()
        if not isinstance(page, Bucket):
            page = Bucket.from_bytes(page)
            self._pages[index] = page
        return page

    def store_bucket(self, index: int, bucket: Bucket) -> None:  # repro-lint: hot-path
        self.writes += 1
        self._pages[index] = bucket


class HashPbnTable:
    """Fingerprint → PBN store over a bucket-granular backing store.

    All bucket IO flows through the injected :class:`BucketStore`; the
    table itself holds no pages, so a cached store sees every access.
    """

    def __init__(
        self, num_buckets: int, store: Optional[BucketStore] = None
    ) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self.store = store if store is not None else InMemoryBucketStore()
        self.entry_count = 0
        self.probe_count = 0  # buckets touched, for locality analysis

    # -- helpers -------------------------------------------------------------
    def _home(self, digest: bytes) -> int:  # repro-lint: hot-path
        # Inlined bucket_index() without its argument validation — the
        # table mints every digest it sees through fingerprint(), so the
        # 32-byte invariant holds structurally.
        return int.from_bytes(digest[-8:], "big") % self.num_buckets  # repro-lint: copy-ok 8-byte index slice

    def _load(self, index: int) -> Bucket:  # repro-lint: hot-path
        self.probe_count += 1
        return self.store.load_bucket(index)

    def _save(self, index: int, bucket: Bucket) -> None:  # repro-lint: hot-path
        self.store.store_bucket(index, bucket)

    # -- operations ------------------------------------------------------------
    def lookup(self, digest: bytes) -> Optional[int]:
        """Return the PBN stored for ``digest``, or ``None`` if unique."""
        index = self._home(digest)
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            pbn = bucket.lookup(digest)
            if pbn is not None:
                return pbn
            if not bucket.overflowed:
                return None
            index = (index + 1) % self.num_buckets
        return None

    def insert(self, digest: bytes, pbn: int) -> None:
        """Insert a new fingerprint.  The caller must have checked
        uniqueness via :meth:`lookup` (the dedup flow always does)."""
        if not 0 <= pbn <= MAX_PBN:
            raise ValueError(f"PBN {pbn} out of range")
        if len(digest) != FINGERPRINT_SIZE:
            raise ValueError("fingerprints are 32 bytes")
        index = self._home(digest)
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            if not bucket.is_full:
                bucket.insert(digest, pbn)
                self._save(index, bucket)
                self.entry_count += 1
                return
            if not bucket.overflowed:
                bucket.overflowed = True
                self._save(index, bucket)
            index = (index + 1) % self.num_buckets
        raise RuntimeError("Hash-PBN table is full")

    def remove(self, digest: bytes) -> bool:
        """Remove a fingerprint (garbage collection of freed chunks)."""
        index = self._home(digest)
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            if bucket.remove(digest):
                self._save(index, bucket)
                self.entry_count -= 1
                return True
            if not bucket.overflowed:
                return False
            index = (index + 1) % self.num_buckets
        return False

    def update(self, digest: bytes, pbn: int) -> bool:
        """Repoint an existing fingerprint at a new PBN (defragmentation)."""
        index = self._home(digest)
        for _ in range(self.num_buckets):
            bucket = self._load(index)
            for position, (key, _) in enumerate(bucket.entries):
                if key == digest:
                    bucket.entries[position] = (digest, pbn)
                    self._save(index, bucket)
                    return True
            if not bucket.overflowed:
                return False
            index = (index + 1) % self.num_buckets
        return False

    def __len__(self) -> int:
        return self.entry_count

    @property
    def load_factor(self) -> float:
        return self.entry_count / (self.num_buckets * BUCKET_CAPACITY)


def table_bytes_for_capacity(unique_bytes: int, chunk_size: int = 4096) -> int:
    """Raw Hash-PBN metadata size for a given unique-data capacity.

    Reproduces §2.1.3's sizing: 1 PB of unique 4-KB chunks needs
    ``1e15 / 4096 * 38 ≈ 9.3 TB`` of table (the paper rounds to 9.5 TB).
    """
    if unique_bytes < 0 or chunk_size <= 0:
        raise ValueError("sizes must be non-negative / positive")
    return (unique_bytes // chunk_size) * ENTRY_SIZE


def buckets_for_capacity(unique_bytes: int, chunk_size: int = 4096,
                         load_factor: float = 0.7) -> int:
    """Bucket count sized so the table runs at ``load_factor`` occupancy."""
    if not 0 < load_factor <= 1:
        raise ValueError("load_factor must be in (0, 1]")
    chunks = max(1, unique_bytes // chunk_size)
    return max(1, int(chunks / (BUCKET_CAPACITY * load_factor)) + 1)

"""Chunk fingerprinting (paper §2.1.2).

Deduplication identifies chunks by a strong cryptographic fingerprint so
that signature equality implies content equality with no practical
collision risk at PB scale.  The paper's prototype uses an open-source
SHA-256 RTL core; we use :mod:`hashlib`'s SHA-256, which is semantically
identical.

The module also provides the fixed-width encodings the Hash-PBN table
needs: 32-byte fingerprints and 6-byte physical block numbers (§2.1.3).

Fingerprinting mirrors the codec plugin shape
(:mod:`repro.datared.codecs`): a :class:`Fingerprinter` registry with
``sha256`` as the always-available default and ``blake3`` as an
optional plugin (install the ``codecs`` extras group).  Every algorithm
must emit :data:`FINGERPRINT_SIZE` (32) bytes — the Hash-PBN table's
entry layout, the bucket index function, and the wire protocol all
assume that width.  Unlike codecs, fingerprints leave **no on-disk
tag**: the digest *is* the dedup identity, so switching algorithms
mid-stream simply stops deduplicating against old chunks (a
cross-algorithm digest never matches).  Pick one per deployment.
"""

from __future__ import annotations

import hashlib
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Union,
)

from ..errors import MissingDependencyError

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel import StagePool

try:  # optional: the `codecs` extras group
    import blake3
except ImportError:  # pragma: no cover - environment-dependent
    blake3 = None

#: Anything the fingerprint functions accept: ``hashlib`` consumes the
#: buffer protocol directly, so chunk views need no materialization.
Buffer = Union[bytes, bytearray, memoryview]

__all__ = [
    "FINGERPRINT_SIZE",
    "PBN_SIZE",
    "MAX_PBN",
    "Fingerprinter",
    "Sha256Fingerprinter",
    "Blake3Fingerprinter",
    "SHA256",
    "register_fingerprinter",
    "create_fingerprinter",
    "fingerprinter_names",
    "fingerprinter_available",
    "available_fingerprinters",
    "fingerprint",
    "fingerprint_many",
    "bucket_index",
    "encode_pbn",
    "decode_pbn",
]

#: SHA-256 digest width in bytes (the "32 bytes for hash" of §2.1.3).
FINGERPRINT_SIZE = 32

#: Physical block number width in bytes ("6 bytes for PBN", §2.1.3).
PBN_SIZE = 6

#: Largest PBN representable in 6 bytes (2^48 - 1); with 4-KB chunks this
#: addresses 2^48 * 4 KB = 1 ZB, comfortably beyond PB scale.
MAX_PBN = (1 << (8 * PBN_SIZE)) - 1


_sha256 = hashlib.sha256


def fingerprint(data: Buffer) -> bytes:
    """SHA-256 fingerprint of a chunk's content (views hash in place)."""
    return _sha256(data).digest()


def fingerprint_many(
    chunks: Iterable[Buffer], pool: Optional["StagePool"] = None
) -> List[bytes]:  # repro-lint: hot-path
    """Fingerprint a batch of chunks (the NIC hashes per batch, §5.4).

    ``pool`` is an optional :class:`~repro.parallel.StagePool`; when it
    is parallel the batch fans out across its worker threads
    (``hashlib`` releases the GIL on 4-KB buffers), otherwise the batch
    is hashed inline.  A *process*-backed pool is deliberately not used
    here: SHA-256 over 4 KB costs a few microseconds, far below the
    pickling cost of shipping the buffer to another process, and chunk
    views cannot cross the IPC boundary without materializing.  Results
    are in input order either way.
    """
    if pool is not None and not pool.requires_pickling:
        return pool.map(fingerprint, chunks)
    sha256 = _sha256
    return [sha256(data).digest() for data in chunks]


class Fingerprinter:
    """Fingerprint plugin contract: 32 bytes of content identity.

    The hashing twin of the :data:`repro.datared.codecs.Codec` contract.
    ``digest_size`` must equal :data:`FINGERPRINT_SIZE` — the registry
    enforces it, because the Hash-PBN entry layout (§2.1.3) and the wire
    protocol both hard-code 32-byte digests.
    """

    name = "custom"
    digest_size = FINGERPRINT_SIZE

    def digest(self, data: Buffer) -> bytes:
        raise NotImplementedError

    def digest_many(
        self, chunks: Iterable[Buffer], pool: Optional["StagePool"] = None
    ) -> List[bytes]:  # repro-lint: hot-path
        """Fingerprint a batch, in input order.

        Mirrors :func:`fingerprint_many`'s pool policy: fan out on a
        thread-backed pool (both ``hashlib`` and ``blake3`` release the
        GIL on 4-KB buffers), hash inline on a serial or process-backed
        one — a 4-KB digest costs microseconds, far below IPC pickling.
        """
        if pool is not None and not pool.requires_pickling:
            return pool.map(self.digest, chunks)
        digest = self.digest
        return [digest(data) for data in chunks]


class Sha256Fingerprinter(Fingerprinter):
    """The default: SHA-256, as in the paper's NIC RTL core (§5.4)."""

    name = "sha256"

    def digest(self, data: Buffer) -> bytes:  # repro-lint: hot-path
        return _sha256(data).digest()

    def digest_many(
        self, chunks: Iterable[Buffer], pool: Optional["StagePool"] = None
    ) -> List[bytes]:  # repro-lint: hot-path
        return fingerprint_many(chunks, pool)


class Blake3Fingerprinter(Fingerprinter):
    """BLAKE3 fingerprints: same 32-byte width, markedly faster hashing.

    Requires the optional ``blake3`` module (``repro[codecs]``).  The
    default BLAKE3 output length is exactly
    :data:`FINGERPRINT_SIZE`, so every fixed-width consumer (table
    entries, wire digests) is untouched by the swap.
    """

    name = "blake3"

    def __init__(self) -> None:
        if blake3 is None:
            raise MissingDependencyError(
                "the 'blake3' fingerprinter requires the 'blake3' module "
                "(install the repro[codecs] extras)"
            )
        self._hasher = blake3.blake3

    def digest(self, data: Buffer) -> bytes:  # repro-lint: hot-path
        return self._hasher(data).digest()


#: Shared default instance: module-level :func:`fingerprint` /
#: :func:`fingerprint_many` remain the zero-indirection fast path, and
#: this object is the same algorithm behind the plugin interface.
SHA256 = Sha256Fingerprinter()


class _FingerprinterEntry(NamedTuple):
    factory: Callable[..., Fingerprinter]
    available: Callable[[], bool]


_FINGERPRINTERS: Dict[str, _FingerprinterEntry] = {}


def register_fingerprinter(
    name: str,
    factory: Callable[..., Fingerprinter],
    *,
    available: Optional[Callable[[], bool]] = None,
    replace: bool = False,
) -> None:
    """Register a fingerprint algorithm under ``name``."""
    if not name:
        raise ValueError("fingerprinter name must be non-empty")
    if not replace and name in _FINGERPRINTERS:
        raise ValueError(f"fingerprinter {name!r} is already registered")
    _FINGERPRINTERS[name] = _FingerprinterEntry(
        factory, available if available is not None else _always
    )


def _always() -> bool:
    return True


def _blake3_importable() -> bool:
    return blake3 is not None


def fingerprinter_names() -> List[str]:
    """Every registered fingerprinter name, available or not."""
    return sorted(_FINGERPRINTERS)


def fingerprinter_available(name: str) -> bool:
    """Whether ``name`` is registered and its backing library imports."""
    entry = _FINGERPRINTERS.get(name)
    return entry is not None and entry.available()


def available_fingerprinters() -> List[str]:
    """The fingerprinter names that can be constructed here."""
    return [
        name
        for name in fingerprinter_names()
        if _FINGERPRINTERS[name].available()
    ]


def create_fingerprinter(name: str, **params: object) -> Fingerprinter:
    """Build the fingerprinter registered as ``name``.

    Raises ``ValueError`` for an unknown name or a wrong digest width,
    :class:`~repro.errors.MissingDependencyError` when the backing
    library is absent.
    """
    entry = _FINGERPRINTERS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown fingerprinter {name!r}; registered: "
            f"{', '.join(fingerprinter_names())}"
        )
    if not entry.available():
        raise MissingDependencyError(
            f"fingerprinter {name!r} is registered but its backing library "
            "is not installed (install the repro[codecs] extras)"
        )
    algo = entry.factory(**params)
    if algo.digest_size != FINGERPRINT_SIZE:
        raise ValueError(
            f"fingerprinter {name!r} emits {algo.digest_size}-byte digests; "
            f"the Hash-PBN table requires {FINGERPRINT_SIZE}"
        )
    return algo


register_fingerprinter("sha256", Sha256Fingerprinter)
register_fingerprinter(
    "blake3", Blake3Fingerprinter, available=_blake3_importable
)


def bucket_index(digest: bytes, num_buckets: int) -> int:
    """Map a fingerprint to its Hash-PBN bucket (the paper's "simple
    modular function", §2.1.3).

    The digest's low 8 bytes are interpreted as an unsigned integer and
    reduced modulo the bucket count.  SHA-256 output is uniform, so this
    spreads load evenly regardless of ``num_buckets``.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    if len(digest) < 8:
        raise ValueError("digest too short to derive a bucket index")
    return int.from_bytes(digest[-8:], "big") % num_buckets


def encode_pbn(pbn: int) -> bytes:
    """Pack a physical block number into its 6-byte on-disk form."""
    if not 0 <= pbn <= MAX_PBN:
        raise ValueError(f"PBN {pbn} out of 6-byte range")
    return pbn.to_bytes(PBN_SIZE, "big")


def decode_pbn(raw: bytes) -> int:
    """Unpack a 6-byte physical block number."""
    if len(raw) != PBN_SIZE:
        raise ValueError(f"PBN encoding must be {PBN_SIZE} bytes, got {len(raw)}")
    return int.from_bytes(raw, "big")

"""Chunk fingerprinting (paper §2.1.2).

Deduplication identifies chunks by a strong cryptographic fingerprint so
that signature equality implies content equality with no practical
collision risk at PB scale.  The paper's prototype uses an open-source
SHA-256 RTL core; we use :mod:`hashlib`'s SHA-256, which is semantically
identical.

The module also provides the fixed-width encodings the Hash-PBN table
needs: 32-byte fingerprints and 6-byte physical block numbers (§2.1.3).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel import StagePool

#: Anything the fingerprint functions accept: ``hashlib`` consumes the
#: buffer protocol directly, so chunk views need no materialization.
Buffer = Union[bytes, bytearray, memoryview]

__all__ = [
    "FINGERPRINT_SIZE",
    "PBN_SIZE",
    "MAX_PBN",
    "fingerprint",
    "fingerprint_many",
    "bucket_index",
    "encode_pbn",
    "decode_pbn",
]

#: SHA-256 digest width in bytes (the "32 bytes for hash" of §2.1.3).
FINGERPRINT_SIZE = 32

#: Physical block number width in bytes ("6 bytes for PBN", §2.1.3).
PBN_SIZE = 6

#: Largest PBN representable in 6 bytes (2^48 - 1); with 4-KB chunks this
#: addresses 2^48 * 4 KB = 1 ZB, comfortably beyond PB scale.
MAX_PBN = (1 << (8 * PBN_SIZE)) - 1


_sha256 = hashlib.sha256


def fingerprint(data: Buffer) -> bytes:
    """SHA-256 fingerprint of a chunk's content (views hash in place)."""
    return _sha256(data).digest()


def fingerprint_many(
    chunks: Iterable[Buffer], pool: Optional["StagePool"] = None
) -> List[bytes]:  # repro-lint: hot-path
    """Fingerprint a batch of chunks (the NIC hashes per batch, §5.4).

    ``pool`` is an optional :class:`~repro.parallel.StagePool`; when it
    is parallel the batch fans out across its worker threads
    (``hashlib`` releases the GIL on 4-KB buffers), otherwise the batch
    is hashed inline.  A *process*-backed pool is deliberately not used
    here: SHA-256 over 4 KB costs a few microseconds, far below the
    pickling cost of shipping the buffer to another process, and chunk
    views cannot cross the IPC boundary without materializing.  Results
    are in input order either way.
    """
    if pool is not None and not pool.requires_pickling:
        return pool.map(fingerprint, chunks)
    sha256 = _sha256
    return [sha256(data).digest() for data in chunks]


def bucket_index(digest: bytes, num_buckets: int) -> int:
    """Map a fingerprint to its Hash-PBN bucket (the paper's "simple
    modular function", §2.1.3).

    The digest's low 8 bytes are interpreted as an unsigned integer and
    reduced modulo the bucket count.  SHA-256 output is uniform, so this
    spreads load evenly regardless of ``num_buckets``.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    if len(digest) < 8:
        raise ValueError("digest too short to derive a bucket index")
    return int.from_bytes(digest[-8:], "big") % num_buckets


def encode_pbn(pbn: int) -> bytes:
    """Pack a physical block number into its 6-byte on-disk form."""
    if not 0 <= pbn <= MAX_PBN:
        raise ValueError(f"PBN {pbn} out of 6-byte range")
    return pbn.to_bytes(PBN_SIZE, "big")


def decode_pbn(raw: bytes) -> int:
    """Unpack a 6-byte physical block number."""
    if len(raw) != PBN_SIZE:
        raise ValueError(f"PBN encoding must be {PBN_SIZE} bytes, got {len(raw)}")
    return int.from_bytes(raw, "big")

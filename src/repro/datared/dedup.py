"""The inline data-reduction engine (paper §2.2, Figure 1).

:class:`DedupEngine` is the functional core shared by both systems: it
performs the complete write flow — chunk, fingerprint, Hash-PBN lookup,
compress unique chunks, pack into containers, update both mapping tables
— and the read flow — LBA→PBN→PBA lookup, container read, decompress.

The engine is *policy-free*: it does not know whether hashing ran on a
NIC or a host core, or whether a bucket came from DRAM or a table SSD.
Every write/read returns a detailed report of what happened (per-chunk
dedup outcomes, bucket accesses, container seals) and the system layers
(:mod:`repro.systems.baseline`, :mod:`repro.systems.fidr`) charge their
device ledgers from those reports according to their own flow topology.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ContextManager,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import SnapshotError
from ..obs.metrics import MetricsRegistry, get_registry
from ..parallel import StagePool
from ..sync import DisciplinedLock
from . import codecs as _codecs
from .chunking import BLOCK_SIZE, Chunk, FixedChunker
from .compression import CompressedChunk, Compressor, ZlibCompressor
from .container import ContainerStore, Placement
from .hash_pbn import HashPbnTable
from .hashing import SHA256, Fingerprinter
from .lba_map import LbaMap, PbnAllocator, PbnMap, PbnRecord

if TYPE_CHECKING:
    from .journal import MetadataJournal, RecoveryReport

#: Distinguishes "LBA never consulted" from "LBA unmapped" in the
#: batch planner's shadow map.
_UNSET: Any = object()

#: Multi-chunk reads smaller than this decompress inline even on a
#: parallel pool: ``zlib.decompress`` of a 4-KB chunk is only a few
#: microseconds, so small batches lose more to slice dispatch than they
#: gain from overlap (the PR-2 parallel-read regression).
READ_FANOUT_MIN_CHUNKS = 128

__all__ = [
    "ChunkOutcome",
    "WriteOptions",
    "EngineStats",
    "WriteReport",
    "ReadReport",
    "ReductionStats",
    "DedupEngine",
    "LbaStore",
    "MetadataObserver",
    "StageTimer",
    "READ_FANOUT_MIN_CHUNKS",
]


@dataclass(frozen=True)
class WriteOptions:
    """Typed per-call options for the engine's write entry points.

    Replaces the kwarg sprawl that accreted on :meth:`DedupEngine.write`
    / :meth:`DedupEngine.write_many` (PR 5 API consolidation): every
    per-call knob lives here, construction-time knobs stay on the engine
    constructor.  The PR-5 ``digests=`` keyword shim has been removed;
    this object is the only way to pass per-call options.

    ``digests``
        Precomputed SHA-256 fingerprints (e.g. from a NIC that hashed on
        ingest), one per 4-KB chunk in flattened request order; the hash
        stage is skipped.  Length must match the chunk count exactly.
    ``flush``
        Seal the open container once the batch has been written — the
        batch-boundary behaviour systems otherwise issue as a separate
        :meth:`DedupEngine.flush` call.
    """

    digests: Optional[Sequence[bytes]] = None
    flush: bool = False


#: Shared default so hot paths compare identity instead of building an
#: options object per call.
_NO_OPTIONS = WriteOptions()


@dataclass(frozen=True)
class EngineStats:
    """Point-in-time, lock-consistent snapshot of one engine's ledgers.

    The typed return of :meth:`DedupEngine.stats_snapshot` — all raw
    fields are integral (R004), all ratios are derived properties, and
    the whole object is taken under the engine lock so the fields are
    mutually consistent (reading ``engine.stats`` plus the loose
    counters one by one is not).
    """

    logical_bytes: int
    unique_logical_bytes: int
    stored_bytes: int
    reclaimed_stored_bytes: int
    duplicate_chunks: int
    unique_chunks: int
    read_cache_hits: int
    read_cache_misses: int
    gc_containers_reclaimed: int
    gc_bytes_moved: int
    plan_fallback_compressions: int
    plan_wasted_compressions: int
    containers_sealed: int
    #: Hash-PBN index counters (PR 9): negative-filter outcomes, probes
    #: the batched resolve saved via intra-batch digest dedupe, and
    #: total buckets touched.  Defaults keep older snapshot call sites
    #: (and merged sharded snapshots built field-by-field) valid.
    index_filter_hits: int = 0
    index_filter_misses: int = 0
    index_saved_lookups: int = 0
    index_probes: int = 0

    @property
    def live_stored_bytes(self) -> int:
        return self.stored_bytes - self.reclaimed_stored_bytes

    @property
    def dedup_ratio(self) -> float:
        """Fraction of written chunks removed by deduplication."""
        total = self.duplicate_chunks + self.unique_chunks
        return self.duplicate_chunks / total if total else 0.0

    @property
    def compression_ratio(self) -> float:
        """Stored fraction of unique bytes (0.5 = halved)."""
        if self.unique_logical_bytes == 0:
            return 1.0
        return self.stored_bytes / self.unique_logical_bytes

    @property
    def reduction_factor(self) -> float:
        """Logical bytes written per stored byte (higher is better)."""
        if self.stored_bytes == 0:
            return float("inf") if self.logical_bytes else 1.0
        return self.logical_bytes / self.stored_bytes


class StageTimer(Protocol):
    """Per-stage instrumentation hook (see :mod:`repro.perf`).

    The engine calls ``stage(name)`` around each hot-path stage when a
    timer is installed on :attr:`DedupEngine.stage_clock`; with the
    default ``None`` the hot path pays a single identity check per
    stage.
    """

    def stage(self, name: str) -> ContextManager[None]: ...


class MetadataObserver(Protocol):
    """Receiver of the engine's metadata-mutation callbacks.

    :class:`~repro.datared.journal.MetadataJournal` is the canonical
    implementation; anything structurally compatible can plug in.  The
    durability tier added *optional* extended callbacks —
    ``on_unmap(lba)``, ``on_repoint(pbn, container_id, offset)``,
    ``on_snapshot_create(name)`` and ``on_snapshot_delete(name)`` —
    which the engine fires through ``getattr`` guards, so structural
    observers implementing only the three required methods keep working.
    """

    def on_new_chunk(
        self, pbn: int, digest: bytes, container_id: int, offset: int,
        stored_size: int, logical_size: int,
    ) -> None: ...

    def on_map(self, lba: int, pbn: int) -> None: ...

    def on_free(self, pbn: int) -> None: ...


class LbaStore(Protocol):
    """LBA→PBN mapping interface the engine requires.

    Satisfied by the in-memory :class:`~repro.datared.lba_map.LbaMap`
    and the paged :class:`~repro.datared.lba_store.PagedLbaStore`.
    """

    def get(self, lba: int) -> Optional[int]: ...

    def set(self, lba: int, pbn: int) -> Optional[int]: ...

    def unmap(self, lba: int) -> Optional[int]: ...

    def __len__(self) -> int: ...

    def items(self) -> Iterator[Tuple[int, int]]: ...


class ChunkOutcome(NamedTuple):
    """What happened to one chunk of a write request.

    A :class:`~typing.NamedTuple` (not a frozen dataclass): one is built
    per chunk on the write path and tuple construction is ~2x cheaper
    than frozen-dataclass field assignment, while keeping value equality
    and immutability.
    """

    lba: int
    pbn: int
    duplicate: bool
    logical_size: int
    stored_size: int  #: 0 for duplicates (nothing newly stored)


@dataclass
class WriteReport:
    """Everything the system layer needs to account one write request.

    Aggregates are maintained incrementally as outcomes arrive through
    :meth:`add` (load generators read them per request, so re-scanning
    the outcome list on every access was O(chunks) per read).  Appending
    to :attr:`chunks` directly bypasses the running totals — always go
    through :meth:`add`.
    """

    chunks: List[ChunkOutcome] = field(default_factory=list)  # guarded-by: single-writer
    containers_sealed: int = 0  # guarded-by: single-writer
    reclaimed_chunks: int = 0  # guarded-by: single-writer  (last refs dropped)
    _logical_bytes: int = field(default=0, init=False, repr=False, compare=False)  # guarded-by: single-writer
    _stored_bytes: int = field(default=0, init=False, repr=False, compare=False)  # guarded-by: single-writer
    _unique_chunks: int = field(default=0, init=False, repr=False, compare=False)  # guarded-by: single-writer

    def __post_init__(self) -> None:
        for outcome in self.chunks:
            self._tally(outcome)

    def _tally(self, outcome: ChunkOutcome) -> None:
        self._logical_bytes += outcome.logical_size
        self._stored_bytes += outcome.stored_size
        if not outcome.duplicate:
            self._unique_chunks += 1

    def add(self, outcome: ChunkOutcome) -> None:  # repro-lint: hot-path
        """Record one chunk outcome, keeping the aggregates current."""
        self.chunks.append(outcome)
        self._logical_bytes += outcome.logical_size
        self._stored_bytes += outcome.stored_size
        if not outcome.duplicate:
            self._unique_chunks += 1

    @property
    def logical_bytes(self) -> int:
        return self._logical_bytes

    @property
    def unique_chunks(self) -> int:
        return self._unique_chunks

    @property
    def duplicate_chunks(self) -> int:
        return len(self.chunks) - self._unique_chunks

    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes


@dataclass
class ReadReport:
    """Accounting detail for one read request."""

    data: bytes = b""
    chunks_read: int = 0
    stored_bytes_read: int = 0  #: compressed bytes fetched from containers
    unmapped_chunks: int = 0  #: never-written holes (returned as zeros)
    cache_hits: int = 0  #: chunks served from the decompressed-read LRU
    #: (no container fetch, so they add nothing to stored_bytes_read)


@dataclass
class ReductionStats:
    """Cumulative data-reduction effectiveness of an engine.

    ``stored_bytes`` is cumulative (never decremented);
    ``reclaimed_stored_bytes`` tracks space later freed by overwrites, so
    ``live_stored_bytes`` is the current on-SSD footprint.
    """

    logical_bytes: int = 0
    unique_logical_bytes: int = 0
    stored_bytes: int = 0
    reclaimed_stored_bytes: int = 0
    duplicate_chunks: int = 0
    unique_chunks: int = 0

    @property
    def live_stored_bytes(self) -> int:
        return self.stored_bytes - self.reclaimed_stored_bytes

    @property
    def dedup_ratio(self) -> float:
        """Fraction of written chunks removed by deduplication."""
        total = self.duplicate_chunks + self.unique_chunks
        return self.duplicate_chunks / total if total else 0.0

    @property
    def compression_ratio(self) -> float:
        """Stored fraction of unique bytes (0.5 = halved)."""
        if self.unique_logical_bytes == 0:
            return 1.0
        return self.stored_bytes / self.unique_logical_bytes

    @property
    def reduction_factor(self) -> float:
        """Logical bytes written per stored byte (higher is better)."""
        if self.stored_bytes == 0:
            return float("inf") if self.logical_bytes else 1.0
        return self.logical_bytes / self.stored_bytes


class DedupEngine:
    """End-to-end inline deduplication + compression over containers."""

    def __init__(
        self,
        table: Optional[HashPbnTable] = None,
        compressor: Optional[Compressor] = None,
        containers: Optional[ContainerStore] = None,
        chunk_size: int = BLOCK_SIZE,
        num_buckets: int = 1 << 16,
        observer: Optional[MetadataObserver] = None,
        lba_map: Optional[LbaStore] = None,
        pool: Optional[StagePool] = None,
        read_cache_chunks: int = 0,
        registry: Optional[MetricsRegistry] = None,
        fingerprinter: Optional[Fingerprinter] = None,
        batched_resolve: Optional[bool] = None,
        journal: Optional["MetadataJournal"] = None,
    ) -> None:
        """``observer`` receives metadata-mutation callbacks
        (``on_new_chunk``/``on_map``/``on_free``) — the hook
        :class:`~repro.datared.journal.MetadataJournal` plugs into.
        ``lba_map`` accepts any LbaMap-compatible store, e.g. the paged
        :class:`~repro.datared.lba_store.PagedLbaStore` (§2.1.4).
        ``pool`` is the shared :class:`~repro.parallel.StagePool` the
        batched paths (:meth:`write_many`, multi-chunk :meth:`read`)
        fan hashing/compression out on; the default is a serial pool.
        ``read_cache_chunks`` bounds the decompressed-read LRU (0
        disables it): hot re-reads of the same PBN skip the container
        fetch and ``zlib.decompress``.  PBNs are content-addressed while
        live, but a freed PBN may be *reallocated* for new content, so
        entries are dropped on release and on GC repoint.
        ``registry`` is the :class:`~repro.obs.metrics.MetricsRegistry`
        this engine publishes ``engine.*`` gauges into at snapshot time
        (default: the process registry); publication is pull-based via a
        weakly-held collector, so the hot path never touches it.
        ``fingerprinter`` selects the content-identity algorithm (a
        :class:`~repro.datared.hashing.Fingerprinter`, default SHA-256);
        switching it stops deduplicating against chunks hashed by the
        old algorithm but never corrupts data — digests are identity,
        not payload.
        ``batched_resolve`` routes :meth:`write_many`'s Hash-PBN stage
        through :meth:`~repro.datared.hash_pbn.HashPbnTable.lookup_many`
        (one home-sorted, digest-deduped batch probe instead of a table
        lookup per chunk; DESIGN.md §5.9).  Default ``None`` = auto:
        enabled exactly when the table's store is private — an
        interposing store (the table cache under a calibrated device
        model) must see the per-lookup access pattern its accounting
        was calibrated against."""
        #: Guards every piece of mutable metadata below.  Concurrent
        #: callers (the race-stress harness, any future multi-threaded
        #: front end) serialize on it; the single-threaded serving
        #: backend pays one uncontended RLock acquire per request.  The
        #: StagePool workers never touch guarded state (they run pure
        #: hash/compress/decompress), so holding the lock across a
        #: fan-out cannot deadlock.  Rank 20 in
        #: :data:`repro.sync.LOCK_ORDER`: nests inside the
        #: sharded-router lock (10) and around the shard-seal lock (30)
        #: — the lockgraph/lockdep validators enforce the order.
        self.lock = DisciplinedLock("dedup-engine")
        self.chunker = FixedChunker(chunk_size)
        self.table = table if table is not None else HashPbnTable(num_buckets)  # guarded-by: self.lock
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.fingerprinter = fingerprinter if fingerprinter is not None else SHA256
        self.containers = containers if containers is not None else ContainerStore()  # guarded-by: self.lock
        self.lba_map: LbaStore = lba_map if lba_map is not None else LbaMap()  # guarded-by: self.lock
        self.pbn_map = PbnMap()  # guarded-by: self.lock
        self.allocator = PbnAllocator()  # guarded-by: self.lock
        self.stats = ReductionStats()  # guarded-by: self.lock
        self.observer = observer
        #: Group-commit journal (DESIGN.md §5.10).  Armed by the factory
        #: from the config's DurabilityPolicy; when set it is also the
        #: metadata observer, records stage per batch and the engine
        #: fences them (one modeled fsync) at the end of every public
        #: mutating op.  ``None`` costs one identity check per batch.
        self.journal = journal
        if journal is not None:
            if observer is None:
                self.observer = journal
            elif observer is not journal:
                raise ValueError(
                    "pass either journal= or observer=, not two different "
                    "sinks (an armed journal is the engine's observer)"
                )
        #: Named CoW snapshots: name -> {lba: pbn}, one pinned reference
        #: per entry (see :meth:`create_snapshot`).
        self._snapshots: Dict[str, Dict[int, int]] = {}  # guarded-by: self.lock
        #: Container frees deferred until the journal commit that makes
        #: their records durable lands: freeing physical bytes before
        #: the fence would lose acknowledged data if the process died in
        #: between.  Always empty at rest (and when journaling is off).
        self._pending_releases: List[Tuple[int, int, int]] = []  # guarded-by: self.lock
        self._pending_drops: List[int] = []  # guarded-by: self.lock
        self._closed = False  # guarded-by: self.lock
        #: Attached by recovery (:func:`repro.datared.journal.recover_into`).
        self.recovery: Optional["RecoveryReport"] = None
        self.pool = pool if pool is not None else StagePool(1)
        if read_cache_chunks < 0:
            raise ValueError("read_cache_chunks must be >= 0")
        #: Decompressed-chunk LRU keyed by PBN (None when disabled).
        self.read_cache_chunks = read_cache_chunks
        self._read_cache: Optional["OrderedDict[int, bytes]"] = (
            OrderedDict() if read_cache_chunks > 0 else None
        )  # guarded-by: self.lock
        self.read_cache_hits = 0  # guarded-by: self.lock
        self.read_cache_misses = 0  # guarded-by: self.lock
        #: Optional per-stage instrumentation (installed by repro.perf);
        #: ``None`` keeps the hot path uninstrumented.
        self.stage_clock: Optional[StageTimer] = None
        #: Garbage-collection work counters (see :meth:`collect_garbage`).
        self.gc_containers_reclaimed = 0  # guarded-by: self.lock
        self.gc_bytes_moved = 0  # guarded-by: self.lock
        #: Batch-planner accuracy counters: ``plan_fallback_compressions``
        #: counts uniques the planner missed (compressed inline on the
        #: serial stage), ``plan_wasted_compressions`` counts duplicates
        #: it compressed needlessly.  Both stay 0 unless the planner's
        #: shadow walk diverges from execution — a correctness canary.
        self.plan_fallback_compressions = 0  # guarded-by: self.lock
        self.plan_wasted_compressions = 0  # guarded-by: self.lock
        #: Whether write_many resolves digests via table.lookup_many
        #: (auto: only over a private in-memory bucket store).
        self.batched_resolve = (
            self.table.private_store if batched_resolve is None
            else batched_resolve
        )
        #: Live only during a batched-resolve serial walk: digest →
        #: current PBN (or None) for every fingerprint the walk has
        #: mutated since the batch lookup, so later chunks in the batch
        #: observe intra-batch inserts/retires exactly as per-chunk
        #: lookups would.
        self._batch_overrides: Optional[Dict[bytes, Optional[int]]] = None  # guarded-by: self.lock
        #: Pull-model publication: the registry holds this collector via
        #: WeakMethod, so a garbage-collected engine drops out on its own.
        self.registry = registry if registry is not None else get_registry()
        self.registry.register_collector(self._publish_metrics)
        #: When race detection is armed, every WriteReport this engine
        #: creates is wrapped too (their aggregates are single-writer).
        self._watch_report: Optional[Callable[..., Any]] = None
        if os.environ.get("REPRO_RACE_DETECT"):
            # Opt-in runtime race detection: wrap the shared metadata
            # structures so every access records (thread, lock-set).
            # When the variable is unset this costs one dict lookup at
            # construction and installs nothing.
            from ..analysis import racecheck

            racecheck.watch_engine(self)
            self._watch_report = racecheck.watch

    def _new_report(self) -> WriteReport:
        """A fresh WriteReport, race-instrumented when detection is on."""
        report = WriteReport()
        if self._watch_report is not None:
            report = self._watch_report(report, name="write-report")
        return report

    def _active_clock(self) -> Optional[StageTimer]:
        """The stage clock, or ``None`` when it reports itself inactive.

        The hook behind the zero-overhead tracing contract: an installed
        :class:`~repro.obs.trace.TracedStages` exposes ``active=False``
        while tracing is disabled, and the hot paths then take the exact
        clock-less fast path (no context managers, no batch shadow-plan)
        they would with no clock at all.  Clocks without an ``active``
        attribute (``repro.perf``'s ``StageClock``) are always live.
        """
        clock = self.stage_clock
        if clock is None or not getattr(clock, "active", True):
            return None
        return clock

    def stats_snapshot(self) -> EngineStats:
        """A lock-consistent :class:`EngineStats` of every ledger."""
        with self.lock:
            stats = self.stats
            return EngineStats(
                logical_bytes=stats.logical_bytes,
                unique_logical_bytes=stats.unique_logical_bytes,
                stored_bytes=stats.stored_bytes,
                reclaimed_stored_bytes=stats.reclaimed_stored_bytes,
                duplicate_chunks=stats.duplicate_chunks,
                unique_chunks=stats.unique_chunks,
                read_cache_hits=self.read_cache_hits,
                read_cache_misses=self.read_cache_misses,
                gc_containers_reclaimed=self.gc_containers_reclaimed,
                gc_bytes_moved=self.gc_bytes_moved,
                plan_fallback_compressions=self.plan_fallback_compressions,
                plan_wasted_compressions=self.plan_wasted_compressions,
                containers_sealed=self.containers.sealed_count,
                index_filter_hits=self.table.filter_hits,
                index_filter_misses=self.table.filter_misses,
                index_saved_lookups=self.table.saved_batch_lookups,
                index_probes=self.table.probe_count,
            )

    def _publish_metrics(self, registry: MetricsRegistry) -> None:
        """Collector: export the ledgers as ``engine.*`` gauges.

        Integral ledgers publish as integer gauges; the derived ratios
        are the only floats, clamped finite so the snapshot stays
        strict-JSON (``reduction_factor`` is ``inf`` before the first
        stored byte).
        """
        snap = self.stats_snapshot()
        registry.gauge("engine.logical_bytes").set(snap.logical_bytes)
        registry.gauge("engine.unique_logical_bytes").set(
            snap.unique_logical_bytes
        )
        registry.gauge("engine.stored_bytes").set(snap.stored_bytes)
        registry.gauge("engine.live_stored_bytes").set(snap.live_stored_bytes)
        registry.gauge("engine.reclaimed_stored_bytes").set(
            snap.reclaimed_stored_bytes
        )
        registry.gauge("engine.duplicate_chunks").set(snap.duplicate_chunks)
        registry.gauge("engine.unique_chunks").set(snap.unique_chunks)
        registry.gauge("engine.read_cache.hits").set(snap.read_cache_hits)
        registry.gauge("engine.read_cache.misses").set(snap.read_cache_misses)
        registry.gauge("engine.gc.containers_reclaimed").set(
            snap.gc_containers_reclaimed
        )
        registry.gauge("engine.gc.bytes_moved").set(snap.gc_bytes_moved)
        registry.gauge("engine.plan.fallback_compressions").set(
            snap.plan_fallback_compressions
        )
        registry.gauge("engine.plan.wasted_compressions").set(
            snap.plan_wasted_compressions
        )
        registry.gauge("engine.containers_sealed").set(snap.containers_sealed)
        registry.gauge("index.filter.hits").set(snap.index_filter_hits)
        registry.gauge("index.filter.misses").set(snap.index_filter_misses)
        registry.gauge("index.batch.saved_lookups").set(
            snap.index_saved_lookups
        )
        registry.gauge("index.probes").set(snap.index_probes)
        registry.gauge("engine.dedup_ratio").set(snap.dedup_ratio)
        registry.gauge("engine.compression_ratio").set(snap.compression_ratio)
        reduction = snap.reduction_factor
        if not math.isfinite(reduction):
            reduction = 0.0
        registry.gauge("engine.reduction_factor").set(reduction)

    # -- write path (Figure 1a) ------------------------------------------------
    def write(
        self,
        lba: int,
        payload: Union[bytes, bytearray, memoryview],
        options: Optional[WriteOptions] = None,
    ) -> WriteReport:
        """Write ``payload`` at chunk-aligned ``lba``; dedupe + compress.

        Zero-copy: chunks are views of ``payload`` until the container
        boundary materializes them, all within this call (DESIGN.md
        §5.4) — the caller's buffer may be reused once it returns.

        Per-call behaviour (precomputed digests, trailing flush) is
        configured by ``options``; see :class:`WriteOptions`.
        """
        if options is None:
            options = _NO_OPTIONS
        with self.lock:
            if options.digests is not None:
                report = self._write_many_locked(
                    [(lba, payload)], list(options.digests)
                )[0]
            else:
                report = self._new_report()
                sealed_before = self.containers.sealed_count
                for chunk in self.chunker.split(lba, payload):
                    report.add(self._write_chunk(chunk, report))
                report.containers_sealed = (
                    self.containers.sealed_count - sealed_before
                )
            if options.flush:
                self.containers.seal_open()
            self._commit_locked()
            return report

    def write_many(
        self,
        requests: Iterable[Tuple[int, Union[bytes, bytearray, memoryview]]],
        options: Optional[WriteOptions] = None,
    ) -> List[WriteReport]:
        """Write a batch of ``(lba, payload)`` requests, stage-split.

        The batch runs the paper's offload topology in software (§5.2,
        §5.4): fingerprinting fans out across the shared pool (the NIC
        SHA-256 core), the Hash-PBN resolution walks serially (the one
        order-dependent stage), compression of the chunks that will be
        unique fans out (the FPGA DEFLATE engine), and the final
        container-append/metadata-publish stage replays the exact serial
        write path with the precomputed artifacts injected.  Results —
        bytes, :class:`ReductionStats`, container placements, journal
        event order — are identical to calling :meth:`write` per
        request; with a serial pool the code path *is* the serial one.

        Per-call behaviour is configured by ``options``
        (:class:`WriteOptions`): precomputed digests skip the hash
        stage, ``flush`` seals the open container after the batch.
        (The PR-5 deprecated ``digests=`` keyword has been removed.)

        Returns one :class:`WriteReport` per request, in order.
        """
        if options is None:
            options = _NO_OPTIONS
        with self.lock:
            reports = self._write_many_locked(
                requests,
                list(options.digests) if options.digests is not None else None,
            )
            if options.flush:
                self.containers.seal_open()
            self._commit_locked()
            return reports

    def _write_many_locked(  # repro-lint: holds self.lock, hot-path
        self,
        requests: Iterable[Tuple[int, Union[bytes, bytearray, memoryview]]],
        digests: Optional[Sequence[bytes]],
    ) -> List[WriteReport]:
        clock = self._active_clock()
        requests = list(requests)
        reports = [self._new_report() for _ in requests]
        flat: List[Tuple[int, Chunk]] = []
        if clock is None:
            for index, (lba, payload) in enumerate(requests):
                for chunk in self.chunker.split(lba, payload):
                    flat.append((index, chunk))
        else:
            with clock.stage("chunk"):
                for index, (lba, payload) in enumerate(requests):
                    for chunk in self.chunker.split(lba, payload):
                        flat.append((index, chunk))
        if not flat:
            return reports

        # Stage 1 (parallel): fingerprint every chunk.
        if digests is None:
            views = [chunk.data for _, chunk in flat]
            if clock is None:
                digests = self.fingerprinter.digest_many(views, pool=self.pool)
            else:
                with clock.stage("hash"):
                    digests = self.fingerprinter.digest_many(views, pool=self.pool)
        else:
            digests = list(digests)
            if len(digests) != len(flat):
                raise ValueError(
                    f"got {len(digests)} digests for {len(flat)} chunks"
                )

        # Stage 1.5 (serial, batched-resolve mode): resolve the whole
        # batch against the table in one home-sorted, digest-deduped
        # probe pass.  The serial walk then consults the result plus an
        # override map of its own intra-batch mutations instead of
        # issuing one table lookup per chunk.
        resolved: Optional[List[Optional[int]]] = None
        if self.batched_resolve:
            if clock is None:
                resolved = self.table.lookup_many(digests)
            else:
                with clock.stage("lookup"):
                    resolved = self.table.lookup_many(digests)

        # Stage 2 (serial): plan which chunks the serial walk will find
        # unique — a pure shadow simulation, no engine state is touched.
        # With a serial pool there is nothing to fan out, so the plan is
        # skipped entirely and stage 4 compresses inline (identical
        # bytes, one less walk per batch); a stage clock keeps the full
        # decomposition so repro.perf can attribute the compress stage.
        planned = clock is not None or self.pool.is_parallel
        plan = (
            self._plan_batch([chunk for _, chunk in flat], digests)
            if planned
            else []
        )

        # Stage 3 (parallel): compress exactly those chunks.  The
        # compressor handles a process-backed pool itself (views must
        # materialize before crossing the IPC boundary).
        staged: Dict[int, CompressedChunk] = {}
        if plan:
            planned_views = [flat[position][1].data for position in plan]
            if clock is None:
                packed = self.compressor.compress_many(
                    planned_views, pool=self.pool
                )
            else:
                with clock.stage("compress"):
                    packed = self.compressor.compress_many(
                        planned_views, pool=self.pool
                    )
            staged = dict(zip(plan, packed))

        # Stage 4 (serial): the unmodified per-chunk write path, with
        # digest and compression injected.  Per-request sealed-container
        # deltas mirror what per-request write() calls would report.
        current = -1
        sealed_before = self.containers.sealed_count
        if resolved is not None:
            self._batch_overrides = {}
        try:
            for position, ((index, chunk), digest) in enumerate(
                zip(flat, digests)
            ):
                if index != current:
                    if current >= 0:
                        reports[current].containers_sealed = (
                            self.containers.sealed_count - sealed_before
                        )
                    current = index
                    sealed_before = self.containers.sealed_count
                precompressed = staged.pop(position, None)
                outcome = self._write_chunk(
                    chunk, reports[index],
                    digest=digest, precompressed=precompressed,
                    resolved=(
                        resolved[position] if resolved is not None else _UNSET
                    ),
                )
                reports[index].add(outcome)
                if outcome.duplicate:
                    if precompressed is not None:
                        self.plan_wasted_compressions += 1
                elif precompressed is None and planned:
                    # Only a computed plan that *missed* a unique counts
                    # as a fallback; the serial fast path compresses
                    # inline by design.
                    self.plan_fallback_compressions += 1
        finally:
            self._batch_overrides = None
        reports[current].containers_sealed = (
            self.containers.sealed_count - sealed_before
        )
        return reports

    def _plan_batch(  # repro-lint: holds self.lock
        self, chunks: Sequence[Chunk], digests: Sequence[bytes]
    ) -> List[int]:
        """Positions of the chunks the serial walk will compress.

        Replays the write path's metadata effects against *shadow*
        state: batch-local uniques, reference-count deltas on
        pre-existing PBNs, retired fingerprints and remapped LBAs are
        all tracked on the side, so a chunk's classification accounts
        for every earlier chunk in the batch — duplicates of a unique
        planned two positions back, fingerprints retired by an
        overwrite in between, same-LBA rewrites — without touching the
        table cache (presence probes resolve through
        :meth:`~repro.datared.lba_map.PbnMap.find_by_fingerprint`).
        """
        plan: List[int] = []
        planned: Dict[bytes, Dict[str, Any]] = {}  # digest -> live batch-unique token
        retired: Set[bytes] = set()  # fingerprints the walk removes from the table
        ref_delta: Dict[int, int] = {}  # pre-existing pbn -> refcount delta
        dead: Set[int] = set()  # pre-existing pbns fully released
        shadow_lba: Dict[int, Tuple[str, Any]] = {}

        def release(ref: Tuple[str, Any]) -> None:
            kind, target = ref
            if kind == "new":
                target["refs"] -= 1
                if (
                    target["refs"] == 0
                    and planned.get(target["digest"]) is target
                ):
                    del planned[target["digest"]]
            else:
                ref_delta[target] = ref_delta.get(target, 0) - 1
                record = self.pbn_map.get(target)
                if record.refcount + ref_delta[target] == 0:
                    dead.add(target)
                    retired.add(record.fingerprint)

        for position, (chunk, digest) in enumerate(zip(chunks, digests)):
            token = planned.get(digest)
            if token is not None:
                hit: Optional[Tuple[str, Any]] = ("new", token)
            else:
                hit = None
                if digest not in retired:
                    pbn = self.pbn_map.find_by_fingerprint(digest)
                    if pbn is not None and pbn not in dead:
                        hit = ("pre", pbn)
            if hit is None:
                token = {"digest": digest, "refs": 1}
                planned[digest] = token
                plan.append(position)
                hit = ("new", token)
            elif hit[0] == "new":
                hit[1]["refs"] += 1
            else:
                ref_delta[hit[1]] = ref_delta.get(hit[1], 0) + 1

            old = shadow_lba.get(chunk.lba, _UNSET)
            if old is _UNSET:
                pre = self.lba_map.get(chunk.lba)
                old = ("pre", pre) if pre is not None else None
            shadow_lba[chunk.lba] = hit
            if old is not None:
                release(old)
        return plan

    def _write_chunk(  # repro-lint: holds self.lock, hot-path
        self,
        chunk: Chunk,
        report: WriteReport,
        digest: Optional[bytes] = None,
        precompressed: Optional[CompressedChunk] = None,
        resolved: Optional[int] = _UNSET,
    ) -> ChunkOutcome:
        clock = self._active_clock()
        if digest is None:
            digest = self.fingerprinter.digest(chunk.data)
        if resolved is not _UNSET:
            # Batched resolve: the batch lookup answered for table state
            # at batch start; the override map carries every mutation
            # the walk has made since, so the merged view is exactly
            # what a per-chunk lookup would return now.
            overrides = self._batch_overrides
            if overrides is not None and digest in overrides:
                existing_pbn = overrides[digest]
            else:
                existing_pbn = resolved
        elif clock is None:
            existing_pbn = self.table.lookup(digest)
        else:
            with clock.stage("lookup"):
                existing_pbn = self.table.lookup(digest)
        self.stats.logical_bytes += len(chunk.data)

        if existing_pbn is not None:
            # Duplicate: bump the reference, remap the LBA, no data moves.
            self.pbn_map.ref(existing_pbn)
            self._remap(chunk.lba, existing_pbn, report)
            self.stats.duplicate_chunks += 1
            outcome = ChunkOutcome(
                lba=chunk.lba,
                pbn=existing_pbn,
                duplicate=True,
                logical_size=len(chunk.data),
                stored_size=0,
            )
            return outcome

        # Unique: compress, pack, allocate a PBN, publish metadata.
        compressed = (
            precompressed
            if precompressed is not None
            else self.compressor.compress(chunk.data)
        )
        # Materialize here — the container boundary takes the defensive
        # copy of any view-backed payload (DESIGN.md §5.4).
        if clock is None:
            placement = self.containers.append(
                compressed.materialize(), compressed.stored_size
            )
        else:
            with clock.stage("pack"):
                placement = self.containers.append(
                    compressed.materialize(), compressed.stored_size
                )
        if clock is None:
            return self._publish_chunk(chunk, report, digest, compressed, placement)
        with clock.stage("publish"):
            return self._publish_chunk(chunk, report, digest, compressed, placement)

    def _publish_chunk(  # repro-lint: holds self.lock, hot-path
        self,
        chunk: Chunk,
        report: WriteReport,
        digest: bytes,
        compressed: CompressedChunk,
        placement: Placement,
    ) -> ChunkOutcome:
        """Metadata publication for a freshly packed unique chunk."""
        pbn = self.allocator.allocate()
        self.pbn_map.add(
            pbn,
            PbnRecord(
                container_id=placement.container_id,
                offset=placement.offset,
                stored_size=placement.stored_size,
                fingerprint=digest,
            ),
        )
        self.table.insert(digest, pbn)
        if self._batch_overrides is not None:
            self._batch_overrides[digest] = pbn
        if self.observer is not None:
            self.observer.on_new_chunk(
                pbn, digest, placement.container_id, placement.offset,
                placement.stored_size, len(chunk.data),
            )
        self._remap(chunk.lba, pbn, report)
        self.stats.unique_chunks += 1
        self.stats.unique_logical_bytes += len(chunk.data)
        self.stats.stored_bytes += compressed.stored_size
        return ChunkOutcome(
            lba=chunk.lba,
            pbn=pbn,
            duplicate=False,
            logical_size=len(chunk.data),
            stored_size=compressed.stored_size,
        )

    def _remap(  # repro-lint: holds self.lock
        self, lba: int, new_pbn: int, report: WriteReport
    ) -> None:
        """Point the LBA at its new chunk, releasing the old one."""
        old_pbn = self.lba_map.set(lba, new_pbn)
        if self.observer is not None:
            self.observer.on_map(lba, new_pbn)
        if old_pbn is not None and old_pbn != new_pbn:
            self._release(old_pbn, report)
        elif old_pbn == new_pbn:
            # Same content rewritten in place: undo the extra reference.
            self._release(old_pbn, report)

    def _release(  # repro-lint: holds self.lock
        self, pbn: int, report: WriteReport
    ) -> None:
        dead = self.pbn_map.unref(pbn)
        if dead is None:
            return
        # Last reference: reclaim space and retire the fingerprint.
        # The freed PBN may be reallocated for different content, so any
        # cached decompressed bytes for it must go *now*.
        if self._read_cache is not None:
            self._read_cache.pop(pbn, None)
        if self.journal is not None:
            # Defer the physical free to the commit barrier: the bytes
            # may be the only copy of data whose release record is not
            # durable yet (crash before the fence -> replay resurrects
            # the old mapping and must still read these bytes).
            self._pending_releases.append(
                (dead.container_id, dead.offset, dead.stored_size)
            )
        else:
            self.containers.mark_dead(
                dead.container_id, dead.offset, dead.stored_size
            )
        self.table.remove(dead.fingerprint)
        if self._batch_overrides is not None:
            self._batch_overrides[dead.fingerprint] = None
        self.allocator.free(pbn)
        if self.observer is not None:
            self.observer.on_free(pbn)
        self.stats.reclaimed_stored_bytes += dead.stored_size
        report.reclaimed_chunks += 1

    # -- read path (Figure 1b) ---------------------------------------------------
    def read(self, lba: int, num_chunks: int = 1) -> ReadReport:
        """Read ``num_chunks`` chunks starting at chunk-aligned ``lba``.

        Unwritten holes read back as zeros, matching block-device
        semantics.  Multi-chunk reads gather every mapped chunk's
        container payload serially (metadata and container accounting
        keep their order), then decompress across the shared pool when
        it is parallel, reassembling in LBA order.
        """
        if num_chunks < 1:
            raise ValueError("must read at least one chunk")
        if lba % self.chunker.blocks_per_chunk != 0:
            raise ValueError(f"LBA {lba} is not chunk-aligned")
        with self.lock:
            clock = self._active_clock()
            if clock is None:
                return self._read_locked(lba, num_chunks)
            with clock.stage("read"):
                return self._read_locked(lba, num_chunks)

    def _read_locked(  # repro-lint: holds self.lock, hot-path
        self, lba: int, num_chunks: int,
        mapping: Optional[Dict[int, int]] = None,
    ) -> ReadReport:
        report = ReadReport()
        step = self.chunker.blocks_per_chunk
        cache = self._read_cache
        #: Per position: decompressed bytes (hole zeros / cache hit) or
        #: None (container fetch pending decompression).
        slots: List[Optional[bytes]] = []
        pending: List[CompressedChunk] = []
        pending_at: List[int] = []  # slot index of each pending chunk
        pending_pbn: List[int] = []
        zero = b"\x00" * self.chunker.chunk_size
        for position in range(num_chunks):
            chunk_lba = lba + position * step
            pbn = (
                self.lba_map.get(chunk_lba) if mapping is None
                else mapping.get(chunk_lba)
            )
            if pbn is None:
                slots.append(zero)
                report.unmapped_chunks += 1
                continue
            if cache is not None:
                hit = cache.get(pbn)
                if hit is not None:
                    cache.move_to_end(pbn)
                    self.read_cache_hits += 1
                    report.cache_hits += 1
                    report.chunks_read += 1
                    slots.append(hit)
                    continue
                self.read_cache_misses += 1
            record = self.pbn_map.get(pbn)
            payload = self.containers.read(record.container_id, record.offset)
            pending.append(CompressedChunk(
                payload=payload,
                logical_size=self.chunker.chunk_size,
                stored_size=record.stored_size,
            ))
            pending_at.append(position)
            pending_pbn.append(pbn)
            slots.append(None)
            report.chunks_read += 1
            report.stored_bytes_read += record.stored_size
        if pending:
            # Fan out only when the batch is big enough to amortize the
            # dispatch (min_batch): small reads decompress inline.  The
            # tag-dispatched decoder reads every registered codec's
            # payloads regardless of the *configured* write codec; the
            # engine's compressor is only the fallback for pre-tag
            # legacy payloads and dictionary-bound chunks.
            plain = _codecs.decode_many(
                pending,
                pool=self.pool if self.pool.is_parallel else None,
                min_batch=READ_FANOUT_MIN_CHUNKS,
                fallback=self.compressor,
            )
            for position, pbn, data in zip(pending_at, pending_pbn, plain):
                slots[position] = data
                if cache is not None:
                    cache[pbn] = data
            if cache is not None:
                while len(cache) > self.read_cache_chunks:
                    cache.popitem(last=False)
        report.data = b"".join(slots)  # type: ignore[arg-type]
        return report

    # -- maintenance -------------------------------------------------------------
    def trim(self, lba: int) -> WriteReport:
        """Drop ``lba``'s mapping (TRIM/discard), releasing its chunk ref.

        The returned report carries ``reclaimed_chunks=1`` when the
        dropped reference was the chunk's last (its space is reclaimed
        and its fingerprint retired, exactly like an overwrite's
        release); trimming an unmapped LBA is a no-op.  The sharded
        engine and the scatter-gather router use this to evict an LBA's
        stale mapping from a shard the LBA no longer lives on.  With a
        journal armed the unmap emits an ``UNMAP`` record and commits,
        so replay drops the mapping exactly as the live engine did.
        """
        with self.lock:
            report = self._new_report()
            old_pbn = self.lba_map.unmap(lba)
            if old_pbn is not None:
                self._fire_observer("on_unmap", lba)
                self._release(old_pbn, report)
            self._commit_locked()
            return report

    def flush(self) -> None:
        """Seal the open container and commit the journal (batch
        boundary / shutdown barrier)."""
        with self.lock:
            self.containers.seal_open()
            self._commit_locked()

    def collect_garbage(self, threshold: float = 0.5) -> int:
        """Compact sealed containers above the garbage threshold.

        Live chunks move to the open container and their PBN records are
        repointed; fingerprints (and hence dedup identity) are unchanged.
        Returns the number of containers reclaimed.

        Placements resolve through the :class:`~repro.datared.lba_map.PbnMap`
        incremental reverse index, so a collection's work scales with
        the victims' live chunks — not with the total PBN population.
        """
        with self.lock:
            reclaimed = 0
            victims = self.containers.garbage_victims(threshold)
            journaled = self.journal is not None
            for victim in victims:
                for offset, payload in victim.chunks():
                    pbn = self.pbn_map.pbn_at(victim.container_id, offset)
                    if pbn is None:
                        raise KeyError(
                            f"container {victim.container_id} offset {offset} "
                            "has no owning PBN"
                        )
                    record = self.pbn_map.get(pbn)
                    placement = self.containers.append(payload, record.stored_size)
                    if journaled:
                        # The old placement stays readable until the
                        # REPOINT record is fenced: a crash before the
                        # commit replays the pre-GC placements.
                        self._pending_releases.append(
                            (victim.container_id, offset, record.stored_size)
                        )
                    else:
                        victim.mark_dead(offset, record.stored_size)
                    self.pbn_map.repoint(
                        pbn, placement.container_id, placement.offset
                    )
                    self._fire_observer(
                        "on_repoint", pbn, placement.container_id,
                        placement.offset,
                    )
                    # Conservative read-LRU hygiene: the moved chunk's
                    # bytes are identical, but drop the entry anyway so
                    # the cache can never outlive a compaction decision.
                    if self._read_cache is not None:
                        self._read_cache.pop(pbn, None)
                    self.gc_bytes_moved += record.stored_size
                if journaled:
                    self._pending_drops.append(victim.container_id)
                else:
                    self.containers.drop(victim.container_id)
                reclaimed += 1
            self.gc_containers_reclaimed += reclaimed
            self._commit_locked()
            return reclaimed

    # -- durability barrier (DESIGN.md §5.10) ----------------------------------
    def _fire_observer(self, hook_name: str, *args: Any) -> None:
        """Fire an *extended* observer callback through a getattr guard
        (pre-durability structural observers only have the core three)."""
        observer = self.observer
        if observer is None:
            return
        hook = getattr(observer, hook_name, None)
        if hook is not None:
            hook(*args)

    def _commit_locked(  # repro-lint: holds self.lock
        self, checkpoint_if_due: bool = True
    ) -> None:
        """Group-commit barrier at the end of every public mutating op.

        Fences the batch's staged journal records (one modeled fsync),
        *then* applies the container frees those records acknowledge —
        freeing first would lose committed data if the fence never
        landed.  Runs the configured checkpoint cadence last.
        """
        journal = self.journal
        if journal is None:
            return
        journal.commit()
        if self._pending_releases:
            for container_id, offset, stored_size in self._pending_releases:
                self.containers.mark_dead(container_id, offset, stored_size)
            self._pending_releases.clear()
        if self._pending_drops:
            for container_id in self._pending_drops:
                self.containers.drop(container_id)
            self._pending_drops.clear()
        if checkpoint_if_due and journal.should_checkpoint():
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:  # repro-lint: holds self.lock
        # Deferred import: repro.datared.journal imports this module.
        from .journal import CheckpointState

        journal = self.journal
        assert journal is not None
        journal.write_checkpoint(CheckpointState.capture(self))

    def checkpoint(self) -> None:
        """Commit, then write a compact durable image of all metadata.

        Recovery afterwards replays checkpoint + tail instead of
        history-since-birth; the journal truncates the superseded prefix
        lazily on the next commit (see
        :meth:`~repro.datared.journal.MetadataJournal.write_checkpoint`).
        """
        with self.lock:
            if self.journal is None:
                raise ValueError("engine has no journal to checkpoint")
            self._commit_locked(checkpoint_if_due=False)
            self._checkpoint_locked()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Seal, commit, and retire the engine (idempotent).

        The sanctioned shutdown barrier of the engine lifecycle API:
        once ``close()`` returns, the open container is sealed and every
        acknowledged write is fenced in the durable journal image.
        Engines also work as context managers (``with build_engine(cfg)
        as engine: ...``), which calls this on exit.
        """
        with self.lock:
            if self._closed:
                return
            self.containers.seal_open()
            self._commit_locked()
            self._closed = True

    def __enter__(self) -> "DedupEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- snapshots (DESIGN.md §5.10) -------------------------------------------
    def create_snapshot(self, name: str) -> int:
        """O(1)-in-data copy-on-write snapshot of the current LBA tree.

        The snapshot is a named pointer table ``{lba: pbn}`` whose every
        entry holds one extra reference on its chunk, so overwrites
        copy-on-write naturally (the old chunk stays live for the
        snapshot), GC may *move* but never reclaim pinned chunks, and
        deleting the snapshot releases the pins like any overwrite
        would.  No chunk data is copied.  Returns the number of pinned
        chunks.
        """
        with self.lock:
            if name in self._snapshots:
                raise SnapshotError(f"snapshot {name!r} already exists")
            pins = dict(self.lba_map.items())
            for pbn in pins.values():
                self.pbn_map.ref(pbn)
            self._snapshots[name] = pins
            self._fire_observer("on_snapshot_create", name)
            self._commit_locked()
            return len(pins)

    def delete_snapshot(self, name: str) -> WriteReport:
        """Drop a snapshot, releasing its pins.

        The returned report's ``reclaimed_chunks`` counts chunks whose
        last reference the snapshot held (their space is reclaimed).
        """
        with self.lock:
            pins = self._snapshots.pop(name, None)
            if pins is None:
                raise SnapshotError(f"no snapshot named {name!r}")
            # Journal the delete *before* the releases it implies, so
            # replay (which performs the releases at SNAP_DELETE) sees
            # the same order; the FREE records that follow are advisory.
            self._fire_observer("on_snapshot_delete", name)
            report = self._new_report()
            for pbn in pins.values():
                self._release(pbn, report)
            self._commit_locked()
            return report

    def snapshots(self) -> List[str]:
        """Names of the live snapshots, sorted."""
        with self.lock:
            return sorted(self._snapshots)

    def snapshot_contains(self, name: str, lba: int) -> bool:
        """Whether snapshot ``name`` pins a chunk at ``lba``."""
        with self.lock:
            pins = self._snapshots.get(name)
            return pins is not None and lba in pins

    def read_snapshot(
        self, name: str, lba: int, num_chunks: int = 1
    ) -> ReadReport:
        """Read through a snapshot's pointer table instead of the live
        map — the same zero-fill/cache/decode path as :meth:`read`."""
        if num_chunks < 1:
            raise ValueError("must read at least one chunk")
        if lba % self.chunker.blocks_per_chunk != 0:
            raise ValueError(f"LBA {lba} is not chunk-aligned")
        with self.lock:
            pins = self._snapshots.get(name)
            if pins is None:
                raise SnapshotError(f"no snapshot named {name!r}")
            return self._read_locked(lba, num_chunks, mapping=pins)

"""The inline data-reduction engine (paper §2.2, Figure 1).

:class:`DedupEngine` is the functional core shared by both systems: it
performs the complete write flow — chunk, fingerprint, Hash-PBN lookup,
compress unique chunks, pack into containers, update both mapping tables
— and the read flow — LBA→PBN→PBA lookup, container read, decompress.

The engine is *policy-free*: it does not know whether hashing ran on a
NIC or a host core, or whether a bucket came from DRAM or a table SSD.
Every write/read returns a detailed report of what happened (per-chunk
dedup outcomes, bucket accesses, container seals) and the system layers
(:mod:`repro.systems.baseline`, :mod:`repro.systems.fidr`) charge their
device ledgers from those reports according to their own flow topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .chunking import BLOCK_SIZE, Chunk, FixedChunker
from .compression import CompressedChunk, Compressor, ZlibCompressor
from .container import ContainerStore
from .hash_pbn import HashPbnTable
from .hashing import fingerprint
from .lba_map import LbaMap, PbnAllocator, PbnMap, PbnRecord

__all__ = [
    "ChunkOutcome",
    "WriteReport",
    "ReadReport",
    "ReductionStats",
    "DedupEngine",
]


@dataclass(frozen=True)
class ChunkOutcome:
    """What happened to one chunk of a write request."""

    lba: int
    pbn: int
    duplicate: bool
    logical_size: int
    stored_size: int  #: 0 for duplicates (nothing newly stored)


@dataclass
class WriteReport:
    """Everything the system layer needs to account one write request."""

    chunks: List[ChunkOutcome] = field(default_factory=list)
    containers_sealed: int = 0
    reclaimed_chunks: int = 0  #: chunks whose last reference dropped

    @property
    def logical_bytes(self) -> int:
        return sum(outcome.logical_size for outcome in self.chunks)

    @property
    def unique_chunks(self) -> int:
        return sum(1 for outcome in self.chunks if not outcome.duplicate)

    @property
    def duplicate_chunks(self) -> int:
        return sum(1 for outcome in self.chunks if outcome.duplicate)

    @property
    def stored_bytes(self) -> int:
        return sum(outcome.stored_size for outcome in self.chunks)


@dataclass
class ReadReport:
    """Accounting detail for one read request."""

    data: bytes = b""
    chunks_read: int = 0
    stored_bytes_read: int = 0  #: compressed bytes fetched from containers
    unmapped_chunks: int = 0  #: never-written holes (returned as zeros)


@dataclass
class ReductionStats:
    """Cumulative data-reduction effectiveness of an engine.

    ``stored_bytes`` is cumulative (never decremented);
    ``reclaimed_stored_bytes`` tracks space later freed by overwrites, so
    ``live_stored_bytes`` is the current on-SSD footprint.
    """

    logical_bytes: int = 0
    unique_logical_bytes: int = 0
    stored_bytes: int = 0
    reclaimed_stored_bytes: int = 0
    duplicate_chunks: int = 0
    unique_chunks: int = 0

    @property
    def live_stored_bytes(self) -> int:
        return self.stored_bytes - self.reclaimed_stored_bytes

    @property
    def dedup_ratio(self) -> float:
        """Fraction of written chunks removed by deduplication."""
        total = self.duplicate_chunks + self.unique_chunks
        return self.duplicate_chunks / total if total else 0.0

    @property
    def compression_ratio(self) -> float:
        """Stored fraction of unique bytes (0.5 = halved)."""
        if self.unique_logical_bytes == 0:
            return 1.0
        return self.stored_bytes / self.unique_logical_bytes

    @property
    def reduction_factor(self) -> float:
        """Logical bytes written per stored byte (higher is better)."""
        if self.stored_bytes == 0:
            return float("inf") if self.logical_bytes else 1.0
        return self.logical_bytes / self.stored_bytes


class DedupEngine:
    """End-to-end inline deduplication + compression over containers."""

    def __init__(
        self,
        table: Optional[HashPbnTable] = None,
        compressor: Optional[Compressor] = None,
        containers: Optional[ContainerStore] = None,
        chunk_size: int = BLOCK_SIZE,
        num_buckets: int = 1 << 16,
        observer=None,
        lba_map=None,
    ):
        """``observer`` receives metadata-mutation callbacks
        (``on_new_chunk``/``on_map``/``on_free``) — the hook
        :class:`~repro.datared.journal.MetadataJournal` plugs into.
        ``lba_map`` accepts any LbaMap-compatible store, e.g. the paged
        :class:`~repro.datared.lba_store.PagedLbaStore` (§2.1.4)."""
        self.chunker = FixedChunker(chunk_size)
        self.table = table if table is not None else HashPbnTable(num_buckets)
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.containers = containers if containers is not None else ContainerStore()
        self.lba_map = lba_map if lba_map is not None else LbaMap()
        self.pbn_map = PbnMap()
        self.allocator = PbnAllocator()
        self.stats = ReductionStats()
        self.observer = observer
        #: Garbage-collection work counters (see :meth:`collect_garbage`).
        self.gc_containers_reclaimed = 0
        self.gc_bytes_moved = 0

    # -- write path (Figure 1a) ------------------------------------------------
    def write(self, lba: int, payload: bytes) -> WriteReport:
        """Write ``payload`` at chunk-aligned ``lba``; dedupe + compress."""
        report = WriteReport()
        sealed_before = self.containers.sealed_count
        for chunk in self.chunker.split(lba, payload):
            report.chunks.append(self._write_chunk(chunk, report))
        report.containers_sealed = self.containers.sealed_count - sealed_before
        return report

    def _write_chunk(self, chunk: Chunk, report: WriteReport) -> ChunkOutcome:
        digest = fingerprint(chunk.data)
        existing_pbn = self.table.lookup(digest)
        self.stats.logical_bytes += len(chunk.data)

        if existing_pbn is not None:
            # Duplicate: bump the reference, remap the LBA, no data moves.
            self.pbn_map.ref(existing_pbn)
            self._remap(chunk.lba, existing_pbn, report)
            self.stats.duplicate_chunks += 1
            outcome = ChunkOutcome(
                lba=chunk.lba,
                pbn=existing_pbn,
                duplicate=True,
                logical_size=len(chunk.data),
                stored_size=0,
            )
            return outcome

        # Unique: compress, pack, allocate a PBN, publish metadata.
        compressed = self.compressor.compress(chunk.data)
        placement = self.containers.append(
            compressed.payload, compressed.stored_size
        )
        pbn = self.allocator.allocate()
        self.pbn_map.add(
            pbn,
            PbnRecord(
                container_id=placement.container_id,
                offset=placement.offset,
                stored_size=placement.stored_size,
                fingerprint=digest,
            ),
        )
        self.table.insert(digest, pbn)
        if self.observer is not None:
            self.observer.on_new_chunk(
                pbn, digest, placement.container_id, placement.offset,
                placement.stored_size, len(chunk.data),
            )
        self._remap(chunk.lba, pbn, report)
        self.stats.unique_chunks += 1
        self.stats.unique_logical_bytes += len(chunk.data)
        self.stats.stored_bytes += compressed.stored_size
        return ChunkOutcome(
            lba=chunk.lba,
            pbn=pbn,
            duplicate=False,
            logical_size=len(chunk.data),
            stored_size=compressed.stored_size,
        )

    def _remap(self, lba: int, new_pbn: int, report: WriteReport) -> None:
        """Point the LBA at its new chunk, releasing the old one."""
        old_pbn = self.lba_map.set(lba, new_pbn)
        if self.observer is not None:
            self.observer.on_map(lba, new_pbn)
        if old_pbn is not None and old_pbn != new_pbn:
            self._release(old_pbn, report)
        elif old_pbn == new_pbn:
            # Same content rewritten in place: undo the extra reference.
            self._release(old_pbn, report)

    def _release(self, pbn: int, report: WriteReport) -> None:
        dead = self.pbn_map.unref(pbn)
        if dead is None:
            return
        # Last reference: reclaim space and retire the fingerprint.
        self.containers.mark_dead(
            dead.container_id, dead.offset, dead.stored_size
        )
        self.table.remove(dead.fingerprint)
        self.allocator.free(pbn)
        if self.observer is not None:
            self.observer.on_free(pbn)
        self.stats.reclaimed_stored_bytes += dead.stored_size
        report.reclaimed_chunks += 1

    # -- read path (Figure 1b) ---------------------------------------------------
    def read(self, lba: int, num_chunks: int = 1) -> ReadReport:
        """Read ``num_chunks`` chunks starting at chunk-aligned ``lba``.

        Unwritten holes read back as zeros, matching block-device
        semantics.
        """
        if num_chunks < 1:
            raise ValueError("must read at least one chunk")
        if lba % self.chunker.blocks_per_chunk != 0:
            raise ValueError(f"LBA {lba} is not chunk-aligned")
        report = ReadReport()
        pieces = []
        step = self.chunker.blocks_per_chunk
        for position in range(num_chunks):
            chunk_lba = lba + position * step
            pbn = self.lba_map.get(chunk_lba)
            if pbn is None:
                pieces.append(b"\x00" * self.chunker.chunk_size)
                report.unmapped_chunks += 1
                continue
            record = self.pbn_map.get(pbn)
            payload = self.containers.read(record.container_id, record.offset)
            compressed = CompressedChunk(
                payload=payload,
                logical_size=self.chunker.chunk_size,
                stored_size=record.stored_size,
            )
            pieces.append(self.compressor.decompress(compressed))
            report.chunks_read += 1
            report.stored_bytes_read += record.stored_size
        report.data = b"".join(pieces)
        return report

    # -- maintenance -------------------------------------------------------------
    def flush(self) -> None:
        """Seal the open container (batch boundary / shutdown)."""
        self.containers.seal_open()

    def collect_garbage(self, threshold: float = 0.5) -> int:
        """Compact sealed containers above the garbage threshold.

        Live chunks move to the open container and their PBN records are
        repointed; fingerprints (and hence dedup identity) are unchanged.
        Returns the number of containers reclaimed.
        """
        reclaimed = 0
        victims = self.containers.garbage_victims(threshold)
        # Map placements back to PBNs so records can be repointed.
        by_placement = {
            (record.container_id, record.offset): pbn
            for pbn, record in self.pbn_map.records()
        }
        for victim in victims:
            for offset, payload in victim.chunks():
                pbn = by_placement[(victim.container_id, offset)]
                record = self.pbn_map.get(pbn)
                placement = self.containers.append(payload, record.stored_size)
                victim.mark_dead(offset, record.stored_size)
                record.container_id = placement.container_id
                record.offset = placement.offset
                self.gc_bytes_moved += record.stored_size
            self.containers.drop(victim.container_id)
            reclaimed += 1
        self.gc_containers_reclaimed += reclaimed
        return reclaimed

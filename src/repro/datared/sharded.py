"""Fingerprint-sharded dedup engine: N-way parallel resolve+publish.

:class:`ShardedDedupEngine` splits fingerprint space into ``N``
contiguous digest-prefix ranges, each owned by an independent
:class:`~repro.datared.dedup.DedupEngine` shard with its own lock,
Hash-PBN table, containers, PBN space and byte ledgers.  The batched
write path keeps the engine's parallel hash fan-out, then partitions the
chunks by :func:`shard_for_digest` and runs the serial resolve+publish
section **concurrently per shard** — the stage
``BENCH_stages.json`` showed as the post-compression ceiling.

Two invariants make dedup stay *global* while the index scales out
(DESIGN.md §5.7):

* **Shard selection is a pure function of content.**  Identical chunks
  always hash to the same shard, so a duplicate is found no matter
  which client, batch, or LBA wrote the first copy; cross-shard
  duplicate storage is structurally impossible.
* **LBA ownership lives in the router's directory.**  A rewrite whose
  new content hashes to a different shard publishes on the new shard
  first, then trims the stale mapping from the old shard, so every LBA
  is mapped in exactly one shard and the per-shard ledgers sum to the
  global ledger (:func:`repro.analysis.invariants.check_sharded_engine`
  verifies both laws).

With ``num_shards=1`` the scatter degenerates to a single sub-batch on
one shard and the results — bytes, stats, container layout, report
contents — are identical to a plain :class:`DedupEngine`; the
differential suite proves it.
"""

from __future__ import annotations

import math
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .journal import RecoveryReport

from ..errors import ShardError, SnapshotError
from ..obs.metrics import MetricsRegistry, get_registry
from ..parallel import StagePool
from ..sync import DisciplinedLock
from .chunking import BLOCK_SIZE, Chunk, FixedChunker
from .compression import Compressor
from .dedup import (
    DedupEngine,
    EngineStats,
    ReadReport,
    ReductionStats,
    StageTimer,
    WriteOptions,
    WriteReport,
    _NO_OPTIONS,
)
from .hashing import Fingerprinter

__all__ = ["ShardedDedupEngine", "shard_for_digest"]

#: Payload type accepted by the write entry points (mirrors DedupEngine).
_Payload = Union[bytes, bytearray, memoryview]


def shard_for_digest(digest: bytes, num_shards: int) -> int:
    """Map a fingerprint to its owning shard.

    The first 8 digest bytes index a contiguous range partition of the
    64-bit prefix space (``prefix * N >> 64``), so each shard owns one
    consistent slice of fingerprint space and a uniform hash spreads
    chunks evenly.  Pure function of content: the single shard-selection
    helper every path (batched write, single write, router) must use —
    divergent selection would silently break global dedup.
    """
    if num_shards == 1:
        return 0
    prefix = int.from_bytes(digest[:8], "big")
    return (prefix * num_shards) >> 64


class ShardedDedupEngine:
    """N independent dedup shards behind one scatter-gather front door.

    The router owns a single :class:`~repro.sync.DisciplinedLock` with
    the same external semantics as the plain engine's batch-wide lock —
    concurrent callers serialize at the front door — and the win is the
    *intra-batch* cross-shard parallelism of the resolve+publish stage.

    ``stage_clock`` accepts the same timers as ``DedupEngine``; setting
    it propagates the clock to every shard, which is safe for the
    thread-aware :class:`~repro.obs.trace.TracedStages` but **not** for
    ``repro.perf``'s single-threaded ``StageClock`` — the perf harness
    installs one private clock per shard instead.
    """

    def __init__(
        self,
        num_shards: int,
        compressor: Optional[Compressor] = None,
        chunk_size: int = BLOCK_SIZE,
        num_buckets: int = 1 << 16,
        pool: Optional[StagePool] = None,
        read_cache_chunks: int = 0,
        registry: Optional[MetricsRegistry] = None,
        fingerprinter: Optional[Fingerprinter] = None,
        shard_factory: Optional[Callable[[int], DedupEngine]] = None,
    ) -> None:
        """``pool`` is the shared hash/compress fan-out pool (the same
        role it has on ``DedupEngine``); the shard scatter itself runs
        on a private thread pool sized to ``num_shards``.  Each shard
        gets a **private** metrics registry so N ``engine.*`` collectors
        never collide — this engine publishes the summed ``engine.*``
        gauges plus per-shard ``engine.shard.<i>.*`` gauges into
        ``registry`` (default: the process registry).  ``shard_factory``
        overrides shard construction (the systems factory wires custom
        containers per shard); it must honour the shared chunk size.
        ``read_cache_chunks`` and ``num_buckets`` are per-shard budgets.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        #: Rank 10 in :data:`repro.sync.LOCK_ORDER`: the router lock is
        #: the outermost lock in the stack — shard dedup-engine locks
        #: (rank 20) nest inside it on the caller thread (stats, trim),
        #: never the other way around.
        self.lock = DisciplinedLock("sharded-router")
        self.chunker = FixedChunker(chunk_size)
        self.pool = pool if pool is not None else StagePool(1)
        if shard_factory is None:
            def _default_factory(index: int) -> DedupEngine:
                return DedupEngine(
                    compressor=compressor,
                    chunk_size=chunk_size,
                    num_buckets=num_buckets,
                    pool=self.pool,
                    read_cache_chunks=read_cache_chunks,
                    registry=MetricsRegistry(),
                    fingerprinter=fingerprinter,
                )

            shard_factory = _default_factory
        #: The shards, index-addressed by :func:`shard_for_digest`.
        #: Strongly referenced here: each shard's registry holds its
        #: collector only weakly, and this list also keeps the shard
        #: engines alive for the per-shard gauges below.
        self.shards: List[DedupEngine] = [
            shard_factory(index) for index in range(num_shards)
        ]
        for index, shard in enumerate(self.shards):
            if shard.chunker.chunk_size != chunk_size:
                raise ValueError(
                    f"shard {index} chunk_size "
                    f"{shard.chunker.chunk_size} != {chunk_size}"
                )
        self.compressor = self.shards[0].compressor
        self.fingerprinter = self.shards[0].fingerprinter
        #: LBA → owning shard directory.  Every written LBA is recorded
        #: under the router lock; reads and trims resolve through it.
        #: An absent LBA is unmapped everywhere (shard 0 then serves the
        #: canonical zero-fill read).
        self._lba_shard: Dict[int, int] = {}  # guarded-by: self.lock
        #: Scatter pool: one thread per shard, ``min_slice_items=1`` so
        #: a handful of shard tasks never collapse into one serial
        #: slice (the StagePool default of 8 would serialize any
        #: fan-out below 8 shards).  Serial when there is one shard.
        self._fanout = StagePool(
            num_shards if num_shards > 1 else 1,
            backend="thread",
            slices_per_worker=1,
            min_slice_items=1,
        )
        self._stage_clock: Optional[StageTimer] = None
        self._closed = False  # guarded-by: self.lock
        #: Per-shard :class:`~repro.datared.journal.RecoveryReport`\ s
        #: when this cluster was rebuilt from crash images (set by the
        #: systems factory), else ``None``.
        self.recovery: Optional[List["RecoveryReport"]] = None
        #: Cross-shard conflicts a mixed-fence recovery resolved: LBAs
        #: that were mapped on two shards (a rewrite's cross-shard trim
        #: was torn away) and snapshot names that did not reach every
        #: shard's durable prefix (set by the systems factory).
        self.recovery_lba_conflicts = 0
        self.recovery_snapshots_dropped = 0
        self.registry = registry if registry is not None else get_registry()
        self.registry.register_collector(self._publish_metrics)

    # -- instrumentation ---------------------------------------------------------
    @property
    def stage_clock(self) -> Optional[StageTimer]:
        return self._stage_clock

    @stage_clock.setter
    def stage_clock(self, clock: Optional[StageTimer]) -> None:
        self._stage_clock = clock
        for shard in self.shards:
            shard.stage_clock = clock

    def _active_clock(self) -> Optional[StageTimer]:
        clock = self._stage_clock
        if clock is None or not getattr(clock, "active", True):
            return None
        return clock

    # -- stats -------------------------------------------------------------------
    @property
    def stats(self) -> ReductionStats:
        """Cluster-wide :class:`ReductionStats` (summed over shards)."""
        with self.lock:
            merged = ReductionStats()
            for shard in self.shards:
                stats = shard.stats
                with shard.lock:  # lock: dedup-engine
                    merged.logical_bytes += stats.logical_bytes
                    merged.unique_logical_bytes += stats.unique_logical_bytes
                    merged.stored_bytes += stats.stored_bytes
                    merged.reclaimed_stored_bytes += (
                        stats.reclaimed_stored_bytes
                    )
                    merged.duplicate_chunks += stats.duplicate_chunks
                    merged.unique_chunks += stats.unique_chunks
            return merged

    def shard_snapshots(self) -> List[EngineStats]:
        """Per-shard lock-consistent :class:`EngineStats` snapshots."""
        with self.lock:
            return [shard.stats_snapshot() for shard in self.shards]

    def stats_snapshot(self) -> EngineStats:
        """Cluster-wide :class:`EngineStats` (summed over shards)."""
        return _merge_snapshots(self.shard_snapshots())

    def _publish_metrics(self, registry: MetricsRegistry) -> None:
        """Collector: summed ``engine.*`` plus ``engine.shard.<i>.*``.

        The aggregate gauges carry the exact names the plain engine
        publishes, so every ``repro.stats/v1`` consumer (loadgen, obs
        top, the bench CLIs) reads a sharded engine unchanged; ratios
        are recomputed from the summed ledgers.
        """
        snaps = self.shard_snapshots()
        snap = _merge_snapshots(snaps)
        registry.gauge("engine.shards").set(self.num_shards)
        registry.gauge("engine.logical_bytes").set(snap.logical_bytes)
        registry.gauge("engine.unique_logical_bytes").set(
            snap.unique_logical_bytes
        )
        registry.gauge("engine.stored_bytes").set(snap.stored_bytes)
        registry.gauge("engine.live_stored_bytes").set(snap.live_stored_bytes)
        registry.gauge("engine.reclaimed_stored_bytes").set(
            snap.reclaimed_stored_bytes
        )
        registry.gauge("engine.duplicate_chunks").set(snap.duplicate_chunks)
        registry.gauge("engine.unique_chunks").set(snap.unique_chunks)
        registry.gauge("engine.read_cache.hits").set(snap.read_cache_hits)
        registry.gauge("engine.read_cache.misses").set(snap.read_cache_misses)
        registry.gauge("engine.gc.containers_reclaimed").set(
            snap.gc_containers_reclaimed
        )
        registry.gauge("engine.gc.bytes_moved").set(snap.gc_bytes_moved)
        registry.gauge("engine.plan.fallback_compressions").set(
            snap.plan_fallback_compressions
        )
        registry.gauge("engine.plan.wasted_compressions").set(
            snap.plan_wasted_compressions
        )
        registry.gauge("engine.containers_sealed").set(snap.containers_sealed)
        registry.gauge("index.filter.hits").set(snap.index_filter_hits)
        registry.gauge("index.filter.misses").set(snap.index_filter_misses)
        registry.gauge("index.batch.saved_lookups").set(
            snap.index_saved_lookups
        )
        registry.gauge("index.probes").set(snap.index_probes)
        registry.gauge("engine.dedup_ratio").set(snap.dedup_ratio)
        registry.gauge("engine.compression_ratio").set(snap.compression_ratio)
        reduction = snap.reduction_factor
        if not math.isfinite(reduction):
            reduction = 0.0
        registry.gauge("engine.reduction_factor").set(reduction)
        for index, shard_snap in enumerate(snaps):
            prefix = f"engine.shard.{index}"
            registry.gauge(f"{prefix}.logical_bytes").set(
                shard_snap.logical_bytes
            )
            registry.gauge(f"{prefix}.stored_bytes").set(
                shard_snap.stored_bytes
            )
            registry.gauge(f"{prefix}.live_stored_bytes").set(
                shard_snap.live_stored_bytes
            )
            registry.gauge(f"{prefix}.unique_chunks").set(
                shard_snap.unique_chunks
            )
            registry.gauge(f"{prefix}.duplicate_chunks").set(
                shard_snap.duplicate_chunks
            )
            registry.gauge(f"{prefix}.containers_sealed").set(
                shard_snap.containers_sealed
            )

    # -- write path --------------------------------------------------------------
    def write(
        self,
        lba: int,
        payload: _Payload,
        options: Optional[WriteOptions] = None,
    ) -> WriteReport:
        """Write ``payload`` at chunk-aligned ``lba``.

        A single write is a batch of one: it runs the exact batched
        scatter path, so shard selection cannot diverge between the
        entry points (the satellite regression test pins this).
        """
        return self.write_many([(lba, payload)], options)[0]

    def write_many(
        self,
        requests: Iterable[Tuple[int, _Payload]],
        options: Optional[WriteOptions] = None,
    ) -> List[WriteReport]:
        """Scatter a batch across shards; gather per-request reports.

        Chunks are fingerprinted on the shared pool (unchanged hash
        fan-out), partitioned by digest prefix, and each shard's
        sub-batch runs resolve+publish concurrently on the scatter
        pool.  Reports and LBA mappings re-merge in submission order;
        a rewrite that moved an LBA to a new shard trims the stale
        mapping from the old one before the call returns.

        If a shard fails, the other shards complete and stay conserved,
        the directory reflects only the applied writes, and a
        :class:`~repro.errors.ShardError` naming the failed shards is
        raised (per-chunk atomicity, like a split write).
        """
        if options is None:
            options = _NO_OPTIONS
        with self.lock:
            reports = self._write_many_locked(list(requests), options.digests)
            if options.flush:
                for shard in self.shards:
                    shard.flush()
            return reports

    def _write_many_locked(  # repro-lint: holds self.lock, hot-path
        self,
        requests: List[Tuple[int, _Payload]],
        digests: Optional[Sequence[bytes]],
    ) -> List[WriteReport]:
        clock = self._active_clock()
        reports = [WriteReport() for _ in requests]
        flat: List[Tuple[int, Chunk]] = []
        if clock is None:
            for index, (lba, payload) in enumerate(requests):
                for chunk in self.chunker.split(lba, payload):
                    flat.append((index, chunk))
        else:
            with clock.stage("chunk"):
                for index, (lba, payload) in enumerate(requests):
                    for chunk in self.chunker.split(lba, payload):
                        flat.append((index, chunk))
        if not flat:
            return reports

        # Stage 1 (parallel): the unchanged hash fan-out, now at the
        # router so one digest both routes the chunk and skips the
        # shard's own hash stage.
        if digests is None:
            views = [chunk.data for _, chunk in flat]
            if clock is None:
                digests = self.fingerprinter.digest_many(views, pool=self.pool)
            else:
                with clock.stage("hash"):
                    digests = self.fingerprinter.digest_many(
                        views, pool=self.pool
                    )
        else:
            digests = list(digests)
            if len(digests) != len(flat):
                raise ValueError(
                    f"got {len(digests)} digests for {len(flat)} chunks"
                )

        # Stage 2: partition by digest prefix, preserving flat order
        # within each shard's sub-batch.
        assignment = [
            shard_for_digest(digest, self.num_shards) for digest in digests
        ]
        per_shard: List[List[int]] = [[] for _ in range(self.num_shards)]
        for position, shard_index in enumerate(assignment):
            per_shard[shard_index].append(position)
        work = [
            (shard_index, positions)
            for shard_index, positions in enumerate(per_shard)
            if positions
        ]

        # Stage 3 (parallel): per-shard resolve+publish.  Every chunk is
        # its own single-chunk sub-request so the gather can rebuild
        # per-request reports chunk by chunk.  Exceptions are captured
        # per shard — never raised through the pool — so the scatter
        # always runs to completion before the gather inspects it.
        digest_list = list(digests)

        def scatter(
            item: Tuple[int, List[int]],
        ) -> Tuple[int, Union[List[WriteReport], BaseException]]:
            shard_index, positions = item
            shard = self.shards[shard_index]
            sub_requests: List[Tuple[int, _Payload]] = [
                (flat[position][1].lba, flat[position][1].data)
                for position in positions
            ]
            sub_digests = [digest_list[position] for position in positions]
            try:
                return shard_index, shard.write_many(
                    sub_requests, WriteOptions(digests=sub_digests)
                )
            except Exception as error:  # gathered below, per shard
                return shard_index, error

        results = self._fanout.map(scatter, work)

        failed: Set[int] = set()
        failures: List[Tuple[int, BaseException]] = []
        by_position: Dict[int, WriteReport] = {}
        for (shard_index, positions), (_, result) in zip(work, results):
            if isinstance(result, BaseException):
                failed.add(shard_index)
                failures.append((shard_index, result))
                continue
            for position, sub_report in zip(positions, result):
                by_position[position] = sub_report

        # Stage 4 (serial): gather in submission order.  Last writer of
        # an LBA owns it; every other shard that wrote it this batch —
        # plus its previous owner — gets a trim, and the reclaims credit
        # the owning request exactly as an in-shard overwrite would.
        writers: Dict[int, Set[int]] = {}
        final: Dict[int, Tuple[int, int]] = {}  # lba -> (shard, request)
        for position, (request_index, chunk) in enumerate(flat):
            shard_index = assignment[position]
            if shard_index in failed:
                continue
            sub_report = by_position[position]
            reports[request_index].add(sub_report.chunks[0])
            reports[request_index].containers_sealed += (
                sub_report.containers_sealed
            )
            reports[request_index].reclaimed_chunks += (
                sub_report.reclaimed_chunks
            )
            writers.setdefault(chunk.lba, set()).add(shard_index)
            final[chunk.lba] = (shard_index, request_index)

        for lba, (owner, request_index) in final.items():
            stale = writers[lba] - {owner}
            previous = self._lba_shard.get(lba)
            if previous is not None and previous != owner:
                stale.add(previous)
            for shard_index in sorted(stale):
                if shard_index in failed:
                    continue  # unknown state; leave it for the caller
                trim_report = self.shards[shard_index].trim(lba)
                reports[request_index].reclaimed_chunks += (
                    trim_report.reclaimed_chunks
                )
            self._lba_shard[lba] = owner

        if failures:
            detail = "; ".join(
                f"shard {shard_index}: {error!r}"
                for shard_index, error in failures
            )
            raise ShardError(
                f"{len(failures)} shard(s) failed during write_many: "
                f"{detail}",
                tuple(sorted(failed)),
            )
        return reports

    # -- read path ---------------------------------------------------------------
    def read(self, lba: int, num_chunks: int = 1) -> ReadReport:
        """Read ``num_chunks`` chunks starting at chunk-aligned ``lba``.

        Positions resolve to shards through the LBA directory, collapse
        into contiguous same-shard runs, and the runs fan out on the
        scatter pool; the merged report reassembles in LBA order.
        LBAs absent from the directory are unmapped everywhere, so
        shard 0 serves their canonical zero-fill (identical data and
        accounting to the plain engine's hole reads).
        """
        if num_chunks < 1:
            raise ValueError("must read at least one chunk")
        step = self.chunker.blocks_per_chunk
        if lba % step != 0:
            raise ValueError(f"LBA {lba} is not chunk-aligned")
        with self.lock:
            runs: List[Tuple[int, int, int]] = []  # (shard, start, count)
            for position in range(num_chunks):
                chunk_lba = lba + position * step
                shard_index = self._lba_shard.get(chunk_lba, 0)
                if (
                    runs
                    and runs[-1][0] == shard_index
                    and runs[-1][1] + runs[-1][2] * step == chunk_lba
                ):
                    runs[-1] = (shard_index, runs[-1][1], runs[-1][2] + 1)
                else:
                    runs.append((shard_index, chunk_lba, 1))

            def gather(run: Tuple[int, int, int]) -> ReadReport:
                shard_index, start, count = run
                return self.shards[shard_index].read(start, count)

            sub_reports = self._fanout.map(gather, runs)
            merged = ReadReport()
            pieces: List[bytes] = []
            for sub_report in sub_reports:
                pieces.append(sub_report.data)
                merged.chunks_read += sub_report.chunks_read
                merged.stored_bytes_read += sub_report.stored_bytes_read
                merged.unmapped_chunks += sub_report.unmapped_chunks
                merged.cache_hits += sub_report.cache_hits
            merged.data = pieces[0] if len(pieces) == 1 else b"".join(pieces)
            return merged

    # -- maintenance -------------------------------------------------------------
    def trim(self, lba: int) -> WriteReport:
        """Drop ``lba``'s mapping from its owning shard (TRIM/discard)."""
        with self.lock:
            shard_index = self._lba_shard.pop(lba, 0)
            return self.shards[shard_index].trim(lba)

    def flush(self) -> None:
        """Seal every shard's open container (batch boundary)."""
        with self.lock:
            for shard in self.shards:
                shard.flush()

    def collect_garbage(self, threshold: float = 0.5) -> int:
        """Compact each shard's containers; returns total reclaimed."""
        with self.lock:
            return sum(
                shard.collect_garbage(threshold) for shard in self.shards
            )

    # -- snapshots ---------------------------------------------------------------
    def create_snapshot(self, name: str) -> int:
        """Pin the cluster's current LBA→PBN view under ``name``.

        Fans out under the router lock: every shard pins its slice of
        the directory (a shard owning none of the mapped LBAs pins an
        empty view), so the name exists uniformly across shards — the
        uniformity law :func:`~repro.analysis.invariants.check_sharded_engine`
        verifies.  Returns the total number of pinned chunk mappings.
        """
        with self.lock:
            if self.shards and name in self.shards[0].snapshots():
                raise SnapshotError(f"snapshot {name!r} already exists")
            return sum(
                shard.create_snapshot(name) for shard in self.shards
            )

    def delete_snapshot(self, name: str) -> WriteReport:  # repro-lint: holds single-writer
        """Drop ``name`` on every shard; merged reclaim report.

        The merged :class:`WriteReport` is function-local until return,
        so this thread is its single writer by construction.
        """
        with self.lock:
            if self.shards and name not in self.shards[0].snapshots():
                raise SnapshotError(f"unknown snapshot {name!r}")
            merged = WriteReport()
            for shard in self.shards:
                sub_report = shard.delete_snapshot(name)
                merged.reclaimed_chunks += sub_report.reclaimed_chunks
                merged.containers_sealed += sub_report.containers_sealed
            return merged

    def snapshots(self) -> List[str]:
        """Snapshot names (uniform across shards; read from shard 0)."""
        with self.lock:
            return self.shards[0].snapshots()

    def read_snapshot(
        self, name: str, lba: int, num_chunks: int = 1
    ) -> ReadReport:
        """Read from snapshot ``name`` as of its creation point.

        Each chunk position resolves to the shard whose pinned view
        maps it (pure content routing means at most one shard does);
        positions no shard pinned read as the canonical zero-fill from
        shard 0, mirroring :meth:`read`'s hole semantics.
        """
        if num_chunks < 1:
            raise ValueError("must read at least one chunk")
        step = self.chunker.blocks_per_chunk
        if lba % step != 0:
            raise ValueError(f"LBA {lba} is not chunk-aligned")
        with self.lock:
            if self.shards and name not in self.shards[0].snapshots():
                raise SnapshotError(f"unknown snapshot {name!r}")
            merged = ReadReport()
            pieces: List[bytes] = []
            for position in range(num_chunks):
                chunk_lba = lba + position * step
                owner = 0
                for shard_index, shard in enumerate(self.shards):
                    if shard.snapshot_contains(name, chunk_lba):
                        owner = shard_index
                        break
                sub_report = self.shards[owner].read_snapshot(
                    name, chunk_lba, 1
                )
                pieces.append(sub_report.data)
                merged.chunks_read += sub_report.chunks_read
                merged.stored_bytes_read += sub_report.stored_bytes_read
                merged.unmapped_chunks += sub_report.unmapped_chunks
                merged.cache_hits += sub_report.cache_hits
            merged.data = pieces[0] if len(pieces) == 1 else b"".join(pieces)
            return merged

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Flush + commit every shard, then stop the scatter pool.

        The uniform end of the engine lifecycle API (DESIGN.md §5.10):
        seals open containers, fences each shard's journal (when armed)
        and releases the fan-out workers.  Idempotent; the shared
        hash/compress pool is still the caller's to manage.
        """
        with self.lock:
            if self._closed:
                return
            for shard in self.shards:
                shard.close()
            self._closed = True
        self._fanout.shutdown()

    def shutdown(self) -> None:
        """Deprecated alias for :meth:`close` (kept for old callers)."""
        self.close()

    def __enter__(self) -> "ShardedDedupEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _merge_snapshots(snaps: Sequence[EngineStats]) -> EngineStats:
    """Sum per-shard snapshots into one cluster-wide snapshot.

    Every :class:`EngineStats` field is an integral ledger, so the
    cluster view is the plain field-wise sum; the derived ratios then
    recompute from the summed ledgers.
    """
    return EngineStats(
        logical_bytes=sum(s.logical_bytes for s in snaps),
        unique_logical_bytes=sum(s.unique_logical_bytes for s in snaps),
        stored_bytes=sum(s.stored_bytes for s in snaps),
        reclaimed_stored_bytes=sum(s.reclaimed_stored_bytes for s in snaps),
        duplicate_chunks=sum(s.duplicate_chunks for s in snaps),
        unique_chunks=sum(s.unique_chunks for s in snaps),
        read_cache_hits=sum(s.read_cache_hits for s in snaps),
        read_cache_misses=sum(s.read_cache_misses for s in snaps),
        gc_containers_reclaimed=sum(
            s.gc_containers_reclaimed for s in snaps
        ),
        gc_bytes_moved=sum(s.gc_bytes_moved for s in snaps),
        plan_fallback_compressions=sum(
            s.plan_fallback_compressions for s in snaps
        ),
        plan_wasted_compressions=sum(
            s.plan_wasted_compressions for s in snaps
        ),
        containers_sealed=sum(s.containers_sealed for s in snaps),
        index_filter_hits=sum(s.index_filter_hits for s in snaps),
        index_filter_misses=sum(s.index_filter_misses for s in snaps),
        index_saved_lookups=sum(s.index_saved_lookups for s in snaps),
        index_probes=sum(s.index_probes for s in snaps),
    )

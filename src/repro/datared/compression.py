"""Chunk compression (paper §2.1, §5.2.2).

The FIDR prototype compresses unique chunks on a dedicated FPGA engine.
Here compression is a pluggable strategy with two implementations:

* :class:`ZlibCompressor` — real DEFLATE compression.  Used by the
  functional storage server and all correctness tests: data written
  through the system is genuinely compressed and decompressed.
* :class:`ModeledCompressor` — stores payloads verbatim but reports a
  compressed size from the workload's declared compressibility.  Used by
  large performance sweeps where running DEFLATE over hundreds of GB of
  synthetic content would dominate run time without changing any result
  (only sizes feed the performance model).

Both produce :class:`CompressedChunk`, which carries the logical size,
the *stored* size used for capacity/bandwidth accounting, and enough to
reconstruct the original bytes exactly.

Hot-path discipline (DESIGN.md §5.4): a fresh ``CompressedChunk`` may
hold a :class:`memoryview` of the *caller's* buffer — the incompressible
escape path stores the original chunk by reference instead of copying
it.  The view is only valid until the source buffer changes, so the
container boundary calls :meth:`CompressedChunk.materialize` to take
its one defensive copy; everything upstream (hash, DEFLATE, size
accounting) runs on the view.
"""

from __future__ import annotations

import threading
import zlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..obs import trace as _trace

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel import StagePool

__all__ = [
    "CompressedChunk",
    "Compressor",
    "ZlibCompressor",
    "ModeledCompressor",
    "compression_ratio",
]

#: Anything a compressor accepts as chunk content.
Buffer = Union[bytes, bytearray, memoryview]


class CompressedChunk:
    """A compressed chunk payload plus its size accounting.

    ``stored_size`` is the number of bytes the chunk occupies in a
    container on the data SSDs (2-byte field in the PBN-PBA table entry,
    §2.1.4).  ``payload`` round-trips through the matching compressor's
    :meth:`Compressor.decompress`.

    ``payload`` may be a :class:`memoryview` borrowed from the caller's
    write buffer (the zero-copy incompressible path); ``prefix`` holds
    any compressor tag bytes that belong in front of it on disk.  The
    container-format bytes come from :meth:`materialize` — chunks read
    back from a container always carry materialized ``bytes`` payloads
    with an empty prefix.

    A ``__slots__`` value class: one is built per unique chunk on the
    write path, where frozen-dataclass construction costs ~3x a plain
    ``__init__`` (BENCH_stages.json, ``compress`` stage).
    """

    __slots__ = ("payload", "logical_size", "stored_size", "prefix")

    def __init__(
        self,
        payload: Union[bytes, memoryview],
        logical_size: int,
        stored_size: int,
        prefix: bytes = b"",
    ) -> None:
        if logical_size <= 0:
            raise ValueError("logical_size must be positive")
        if not 0 < stored_size <= 0xFFFF:
            raise ValueError(
                f"stored_size {stored_size} outside the 2-byte field "
                "of a PBN-PBA entry"
            )
        self.payload = payload
        self.logical_size = logical_size
        self.stored_size = stored_size
        self.prefix = prefix

    def __repr__(self) -> str:
        return (
            f"CompressedChunk(logical_size={self.logical_size}, "
            f"stored_size={self.stored_size}, prefix={self.prefix!r})"
        )

    def materialize(self) -> bytes:  # repro-lint: hot-path
        """Container-format ``bytes``: the one sanctioned copy point.

        This is where a borrowed view is frozen into an owned buffer —
        after this call the chunk's bytes are immune to mutations of the
        source write buffer (defensive-copy semantics at the container
        boundary, DESIGN.md §5.4).
        """
        if not self.prefix and type(self.payload) is bytes:
            return self.payload
        return b"".join((self.prefix, self.payload))  # repro-lint: copy-ok the container boundary's defensive copy


class Compressor:
    """Strategy interface: compress/decompress one chunk.

    This is the codec plugin contract (see :mod:`repro.datared.codecs`
    for the registry, the on-disk tag allocation, and the optional
    implementations).  Implementations stamp each payload with a 1-byte
    codec tag — either as :attr:`CompressedChunk.prefix` on a fresh
    chunk or as the first payload byte once materialized — so reads can
    dispatch on the tag independent of the configured write codec.
    ``name`` identifies the codec in the registry, in per-codec
    ``compress.<name>`` trace spans, and in routing counters.
    """

    name = "custom"

    def compress(self, data: Buffer) -> CompressedChunk:
        raise NotImplementedError

    def decompress(self, chunk: CompressedChunk) -> bytes:
        raise NotImplementedError

    def train(self, samples: Sequence[Buffer]) -> "Compressor":
        """A new codec tuned to ``samples`` (trained dictionary).

        Codecs without dictionary support — the default — raise
        ``NotImplementedError``; see
        :meth:`repro.datared.codecs.ZstdCodec.train` for the one that
        implements it and DESIGN.md §5.6 for the dictionary lifecycle.
        """
        raise NotImplementedError(
            f"codec {self.name!r} does not support trained dictionaries"
        )

    def compress_many(
        self,
        buffers: Sequence[Buffer],
        pool: Optional["StagePool"] = None,
    ) -> List[CompressedChunk]:  # repro-lint: hot-path
        """Compress a batch (the FPGA DEFLATE engine takes batches, §5.2).

        With a parallel :class:`~repro.parallel.StagePool` the batch
        fans out across its workers (``zlib`` releases the GIL); a
        process-backed pool additionally requires picklable inputs and
        outputs, so buffers are materialized before crossing the IPC
        boundary and results come back with ``bytes`` payloads.
        Results are in input order either way.

        The batch runs under a ``compress.<name>`` trace span, so when
        tracing is enabled each codec's stage time lands in its own
        ``compress.<name>.ns`` histogram; disabled, the span is the
        shared no-op (one dict lookup per batch).
        """
        with _trace.span("compress." + self.name, chunks=len(buffers)):
            if pool is None:
                return [self.compress(data) for data in buffers]
            if pool.requires_pickling:
                portable = [
                    data if type(data) is bytes else bytes(data)  # repro-lint: copy-ok process pools serialize arguments anyway
                    for data in buffers
                ]
                return pool.map(self._compress_portable, portable)
            return pool.map(self.compress, buffers)

    def _compress_portable(self, data: bytes) -> CompressedChunk:
        """Compress with a picklable result (views pinned to bytes)."""
        chunk = self.compress(data)
        if type(chunk.payload) is bytes:
            return chunk
        return CompressedChunk(
            payload=bytes(chunk.payload),  # repro-lint: copy-ok pickled back across the process boundary
            logical_size=chunk.logical_size,
            stored_size=chunk.stored_size,
            prefix=chunk.prefix,
        )

    def decompress_many(
        self,
        chunks: Sequence[CompressedChunk],
        pool: Optional["StagePool"] = None,
        *,
        min_batch: int = 0,
    ) -> List[bytes]:  # repro-lint: hot-path
        """Decompress a batch, in order; ``min_batch`` gates the fan-out
        (decompression is several times cheaper than compression, so
        small batches are not worth a dispatch — see the engine's read
        path)."""
        with _trace.span("decompress." + self.name, chunks=len(chunks)):
            if pool is None:
                return [self.decompress(chunk) for chunk in chunks]
            return pool.map(self.decompress, chunks, min_batch=min_batch)


class ZlibCompressor(Compressor):
    """Real DEFLATE compression via :mod:`zlib`.

    Incompressible chunks whose DEFLATE output exceeds the original are
    stored raw (the standard "store uncompressed" escape every real
    system implements), so ``stored_size <= logical_size`` always holds.
    The raw escape stores a *view* of the caller's buffer — no copy is
    taken until the container boundary materializes the chunk.

    Two hot-path measures keep ``deflate`` setup off the per-chunk bill
    (it otherwise costs more than the compression itself on 4-KB
    inputs):

    * ``window_bits`` sizes the DEFLATE window to 4 KB (``wbits=12``) —
      a 4-KB chunk can never back-reference further, so the compressed
      length is identical to the 32-KB default while ``deflateInit``
      skips most of its window and hash-table setup.
    * Each thread keeps one *reused* raw-deflate ``compressobj``; every
      chunk is emitted as complete deflate blocks terminated by a
      ``Z_FULL_FLUSH``, which resets the dictionary so the output is
      byte-identical whether the state is fresh or reused.  That makes
      chunks self-contained (decompressible independently) and keeps
      serial, thread-pool, and process-pool runs byte-identical.

    The stored form is raw deflate (no zlib header/checksum) behind the
    ``_DEFLATE`` tag byte.
    """

    name = "zlib"
    _RAW = b"\x00"
    _DEFLATE = b"\x01"

    def __init__(self, level: int = 1, window_bits: int = 12) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be 0-9, got {level}")
        if not 9 <= window_bits <= 15:
            raise ValueError(
                f"zlib window_bits must be 9-15, got {window_bits}"
            )
        self.level = level
        self.window_bits = window_bits
        self._local = threading.local()

    def __getstate__(self) -> Dict[str, int]:
        # Deflate state is neither picklable nor portable; a process
        # pool rebuilds it lazily per worker from the parameters.
        return {"level": self.level, "window_bits": self.window_bits}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.level = state["level"]
        self.window_bits = state["window_bits"]
        self._local = threading.local()

    def _squeezer(self) -> "zlib._Compress":
        local = self._local
        try:
            squeezer: "zlib._Compress" = local.squeezer
        except AttributeError:
            squeezer = local.squeezer = zlib.compressobj(
                self.level, zlib.DEFLATED, -self.window_bits
            )
        return squeezer

    def compress(self, data: Buffer) -> CompressedChunk:  # repro-lint: hot-path
        size = len(data)
        if not size:
            raise ValueError("cannot compress an empty chunk")
        squeezer = self._squeezer()
        # One join builds the final tagged container form, so
        # materialize() is a no-op for the deflate branch.
        payload = b"".join(
            (self._DEFLATE, squeezer.compress(data),
             squeezer.flush(zlib.Z_FULL_FLUSH))
        )
        if len(payload) <= size:
            return CompressedChunk(
                payload=payload,
                logical_size=size,
                stored_size=min(len(payload), size),
            )
        # Incompressible: keep a zero-copy reference to the caller's
        # buffer; the container boundary takes the defensive copy.
        raw = data if type(data) is bytes else memoryview(data)
        return CompressedChunk(
            payload=raw,
            logical_size=size,
            stored_size=size,
            prefix=self._RAW,
        )

    def decompress(self, chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
        if chunk.prefix:
            tag: Buffer = chunk.prefix
            body: Buffer = chunk.payload
        else:
            view = memoryview(chunk.payload)
            tag, body = view[:1], view[1:]
        if tag == self._DEFLATE:
            # Cap output at logical_size + 1 so corrupt input cannot
            # balloon memory, then length-check below.
            inflater = zlib.decompressobj(-self.window_bits)
            data = inflater.decompress(body, chunk.logical_size + 1)
        elif tag == self._RAW:
            data = bytes(body)  # repro-lint: copy-ok reads return owned bytes
        else:
            raise ValueError(f"unknown compression tag {bytes(tag)!r}")  # repro-lint: copy-ok error-path formatting
        if len(data) != chunk.logical_size:
            raise ValueError(
                f"decompressed to {len(data)} bytes, expected "
                f"{chunk.logical_size}"
            )
        return data


class ModeledCompressor(Compressor):
    """Size-modelled compression for large performance sweeps.

    The payload is kept verbatim (reads stay correct) while the reported
    stored size is ``logical_size * ratio``, clamped to at least one
    byte.  ``ratio`` is the *compressed fraction*: the paper's "50%
    compression ratio" stores half the bytes, i.e. ``ratio=0.5``.

    Modelled chunks carry the registry's ``0x04`` codec tag like every
    real codec, so they flow through the same tag-dispatched read path
    and mixed-codec containers (a modelled sweep followed by a real
    write, or vice versa) read back correctly.  The tag byte is *not*
    added to ``stored_size`` — the stored size is the model's output,
    not an on-disk measurement.  Pre-tag payloads (stored verbatim with
    no tag byte) remain readable via the length check in
    :meth:`decompress`.
    """

    name = "modeled"
    _MODELED = b"\x04"

    def __init__(self, ratio: float = 0.5) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio

    def compress(self, data: Buffer) -> CompressedChunk:  # repro-lint: hot-path
        if not data:
            raise ValueError("cannot compress an empty chunk")
        stored = max(1, min(len(data), round(len(data) * self.ratio)))
        payload = data if type(data) is bytes else memoryview(data)
        return CompressedChunk(
            payload=payload,
            logical_size=len(data),
            stored_size=stored,
            prefix=self._MODELED,
        )

    def decompress(self, chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
        if chunk.prefix:
            if chunk.prefix != self._MODELED:
                raise ValueError(
                    f"unknown compression tag {chunk.prefix!r}"  # repro-lint: copy-ok error-path formatting
                )
            body: Buffer = chunk.payload
        else:
            view = memoryview(chunk.payload)
            if (
                len(view) == chunk.logical_size + 1
                and view[0] == self._MODELED[0]
            ):
                body = view[1:]
            else:
                # Pre-tag container payload: the chunk bytes verbatim.
                body = chunk.payload
        data = body if type(body) is bytes else bytes(body)  # repro-lint: copy-ok reads return owned bytes
        if len(data) != chunk.logical_size:
            raise ValueError(
                f"decompressed to {len(data)} bytes, expected "
                f"{chunk.logical_size}"
            )
        return data


def compression_ratio(
    logical_bytes: int, stored_bytes: int, *, empty: Optional[float] = None
) -> float:
    """Stored fraction of the logical bytes (lower is better).

    Returns ``empty`` (default: raises) when nothing was written.
    """
    if logical_bytes <= 0:
        if empty is None:
            raise ValueError("no logical bytes written")
        return empty
    return stored_bytes / logical_bytes

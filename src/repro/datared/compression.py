"""Chunk compression (paper §2.1, §5.2.2).

The FIDR prototype compresses unique chunks on a dedicated FPGA engine.
Here compression is a pluggable strategy with two implementations:

* :class:`ZlibCompressor` — real DEFLATE compression.  Used by the
  functional storage server and all correctness tests: data written
  through the system is genuinely compressed and decompressed.
* :class:`ModeledCompressor` — stores payloads verbatim but reports a
  compressed size from the workload's declared compressibility.  Used by
  large performance sweeps where running DEFLATE over hundreds of GB of
  synthetic content would dominate run time without changing any result
  (only sizes feed the performance model).

Both produce :class:`CompressedChunk`, which carries the logical size,
the *stored* size used for capacity/bandwidth accounting, and enough to
reconstruct the original bytes exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CompressedChunk",
    "Compressor",
    "ZlibCompressor",
    "ModeledCompressor",
    "compression_ratio",
]


@dataclass(frozen=True)
class CompressedChunk:
    """A compressed chunk payload plus its size accounting.

    ``stored_size`` is the number of bytes the chunk occupies in a
    container on the data SSDs (2-byte field in the PBN-PBA table entry,
    §2.1.4).  ``payload`` round-trips through the matching compressor's
    :meth:`Compressor.decompress`.
    """

    payload: bytes
    logical_size: int
    stored_size: int

    def __post_init__(self) -> None:
        if self.logical_size <= 0:
            raise ValueError("logical_size must be positive")
        if not 0 < self.stored_size <= 0xFFFF:
            raise ValueError(
                f"stored_size {self.stored_size} outside the 2-byte field "
                "of a PBN-PBA entry"
            )


class Compressor:
    """Strategy interface: compress/decompress one chunk."""

    def compress(self, data: bytes) -> CompressedChunk:
        raise NotImplementedError

    def decompress(self, chunk: CompressedChunk) -> bytes:
        raise NotImplementedError


class ZlibCompressor(Compressor):
    """Real DEFLATE compression via :mod:`zlib`.

    Incompressible chunks whose DEFLATE output exceeds the original are
    stored raw (the standard "store uncompressed" escape every real
    system implements), so ``stored_size <= logical_size`` always holds.
    """

    _RAW = b"\x00"
    _DEFLATE = b"\x01"

    def __init__(self, level: int = 1) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be 0-9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> CompressedChunk:
        if not data:
            raise ValueError("cannot compress an empty chunk")
        squeezed = zlib.compress(data, self.level)
        if len(squeezed) < len(data):
            payload = self._DEFLATE + squeezed
        else:
            payload = self._RAW + data
        return CompressedChunk(
            payload=payload,
            logical_size=len(data),
            stored_size=min(len(payload), len(data)),
        )

    def decompress(self, chunk: CompressedChunk) -> bytes:
        tag, body = chunk.payload[:1], chunk.payload[1:]
        if tag == self._DEFLATE:
            data = zlib.decompress(body)
        elif tag == self._RAW:
            data = body
        else:
            raise ValueError(f"unknown compression tag {tag!r}")
        if len(data) != chunk.logical_size:
            raise ValueError(
                f"decompressed to {len(data)} bytes, expected "
                f"{chunk.logical_size}"
            )
        return data


class ModeledCompressor(Compressor):
    """Size-modelled compression for large performance sweeps.

    The payload is kept verbatim (reads stay correct) while the reported
    stored size is ``logical_size * ratio``, clamped to at least one
    byte.  ``ratio`` is the *compressed fraction*: the paper's "50%
    compression ratio" stores half the bytes, i.e. ``ratio=0.5``.
    """

    def __init__(self, ratio: float = 0.5) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio

    def compress(self, data: bytes) -> CompressedChunk:
        if not data:
            raise ValueError("cannot compress an empty chunk")
        stored = max(1, min(len(data), round(len(data) * self.ratio)))
        return CompressedChunk(
            payload=data, logical_size=len(data), stored_size=stored
        )

    def decompress(self, chunk: CompressedChunk) -> bytes:
        return chunk.payload


def compression_ratio(
    logical_bytes: int, stored_bytes: int, *, empty: Optional[float] = None
) -> float:
    """Stored fraction of the logical bytes (lower is better).

    Returns ``empty`` (default: raises) when nothing was written.
    """
    if logical_bytes <= 0:
        if empty is None:
            raise ValueError("no logical bytes written")
        return empty
    return stored_bytes / logical_bytes

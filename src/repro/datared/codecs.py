"""The codec plugin registry: pluggable compression behind one tag byte.

The paper treats compression as a swappable engine behind a fixed
chunk-in/record-out contract (§2.1, §5.2.2: a dedicated FPGA DEFLATE
core today, anything with the same interface tomorrow).  This module is
that contract rendered as a plugin API:

* Every codec implements the :class:`~repro.datared.compression.Compressor`
  interface (aliased :data:`Codec` here) and stamps its output with a
  **1-byte on-disk tag** — the first byte of every container payload.
  Tags are allocated once, below, and never reused; a container may
  therefore mix chunks from different codecs and still read back
  correctly after any reconfiguration.
* :func:`decode_chunk` / :func:`decode_many` dispatch *reads* on that
  tag, independent of whichever codec is currently configured for
  writes.  Payloads predating the tag discipline (or written by a codec
  with out-of-band state, e.g. a trained dictionary) fall back to the
  engine's configured compressor.
* :func:`register_codec` / :func:`create_codec` name the write-side
  choices.  ``zstd`` and ``lz4`` are optional imports: when their
  backing libraries are absent the codecs stay *registered* but
  unavailable, and selecting them raises a typed
  :class:`~repro.errors.MissingDependencyError` (install the ``codecs``
  extras group).

Tag allocation (DESIGN.md §5.6):

======  ==========  ====================================================
Tag     Codec       Body
======  ==========  ====================================================
0x00    raw         the chunk verbatim (every codec's incompressible
                    escape — shared, so any reader can decode it)
0x01    zlib        raw DEFLATE stream (no zlib header/checksum)
0x02    zstd        one zstd frame with embedded content size
0x03    lz4         one lz4 block, ``store_size=False`` (the logical
                    size travels in the PBN record instead)
0x04    modeled     the chunk verbatim; ``stored_size`` is modelled
======  ==========  ====================================================

Every codec honours the zero-copy discipline (DESIGN.md §5.4): the
incompressible escape stores a *view* of the caller's buffer, and the
single sanctioned copy happens at the container boundary via
:meth:`~repro.datared.compression.CompressedChunk.materialize`.
"""

from __future__ import annotations

import threading
import zlib
from functools import partial
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from ..errors import MissingDependencyError
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .compression import (
    Buffer,
    CompressedChunk,
    Compressor,
    ModeledCompressor,
    ZlibCompressor,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel import StagePool

try:  # optional: the `codecs` extras group
    import zstandard
except ImportError:  # pragma: no cover - environment-dependent
    zstandard = None

try:  # optional: the `codecs` extras group
    import lz4.block
except ImportError:  # pragma: no cover - environment-dependent
    lz4 = None

__all__ = [
    "Codec",
    "TAG_RAW",
    "TAG_DEFLATE",
    "TAG_ZSTD",
    "TAG_LZ4",
    "TAG_MODELED",
    "RawCodec",
    "ZstdCodec",
    "Lz4Codec",
    "AdaptiveCodec",
    "register_codec",
    "register_decoder",
    "create_codec",
    "codec_names",
    "codec_available",
    "available_codecs",
    "decode_chunk",
    "decode_many",
]

#: The plugin interface every codec implements.  An alias, not a copy:
#: :class:`~repro.datared.compression.Compressor` *is* the contract
#: (compress/decompress plus the batched ``*_many`` forms that carry the
#: ``requires_pickling`` semantics for process-backed pools).
Codec = Compressor

# -- tag allocation (append-only; never renumber a shipped tag) -------------
TAG_RAW = 0x00
TAG_DEFLATE = 0x01
TAG_ZSTD = 0x02
TAG_LZ4 = 0x03
TAG_MODELED = 0x04

_RAW_PREFIX = bytes([TAG_RAW])

# The zlib codec predates the registry; its private tag bytes are the
# on-disk format every pre-registry container used, so the allocation
# table above must agree with them byte-for-byte.
assert ZlibCompressor._RAW == bytes([TAG_RAW])
assert ZlibCompressor._DEFLATE == bytes([TAG_DEFLATE])


def _raw_escape(data: Buffer, size: int) -> CompressedChunk:  # repro-lint: hot-path
    """The shared store-uncompressed escape: tag 0x00, borrowed view."""
    raw = data if type(data) is bytes else memoryview(data)
    return CompressedChunk(
        payload=raw, logical_size=size, stored_size=size, prefix=_RAW_PREFIX
    )


def _tag_and_body(chunk: CompressedChunk) -> Tuple[int, Buffer]:  # repro-lint: hot-path
    """Split a chunk into its codec tag and body without copying."""
    if chunk.prefix:
        return chunk.prefix[0], chunk.payload
    if not len(chunk.payload):
        raise ValueError("empty compressed payload")
    view = memoryview(chunk.payload)
    return view[0], view[1:]


def _check_size(data: bytes, chunk: CompressedChunk) -> bytes:
    if len(data) != chunk.logical_size:
        raise ValueError(
            f"decompressed to {len(data)} bytes, expected {chunk.logical_size}"
        )
    return data


# -- per-tag decoders --------------------------------------------------------


def _decode_raw(chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
    _, body = _tag_and_body(chunk)
    return _check_size(bytes(body), chunk)  # repro-lint: copy-ok reads return owned bytes


def _decode_deflate(chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
    _, body = _tag_and_body(chunk)
    # A full 32-KB window decodes any raw-deflate stream compressed with
    # a smaller one, so the reader needs no codec parameters.  Output is
    # capped at logical_size + 1 so corrupt input cannot balloon memory.
    inflater = zlib.decompressobj(-15)
    return _check_size(
        inflater.decompress(body, chunk.logical_size + 1), chunk
    )


_ZSTD_LOCAL = threading.local()


def _decode_zstd(chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
    if zstandard is None:
        raise MissingDependencyError(
            "chunk stored with the 'zstd' codec but the 'zstandard' module "
            "is not installed (install the repro[codecs] extras)"
        )
    _, body = _tag_and_body(chunk)
    try:
        dctx = _ZSTD_LOCAL.dctx
    except AttributeError:
        dctx = _ZSTD_LOCAL.dctx = zstandard.ZstdDecompressor()
    return _check_size(dctx.decompress(body), chunk)


def _decode_lz4(chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
    if lz4 is None:
        raise MissingDependencyError(
            "chunk stored with the 'lz4' codec but the 'lz4' module is not "
            "installed (install the repro[codecs] extras)"
        )
    _, body = _tag_and_body(chunk)
    return _check_size(
        lz4.block.decompress(body, uncompressed_size=chunk.logical_size),
        chunk,
    )


def _decode_modeled(chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
    _, body = _tag_and_body(chunk)
    return _check_size(bytes(body), chunk)  # repro-lint: copy-ok reads return owned bytes


#: Tag byte -> decoder.  Reads dispatch here regardless of the codec
#: currently configured for writes, which is what makes mixed-codec
#: containers (and reconfiguration without rewrite) safe.
_DECODERS: Dict[int, Callable[[CompressedChunk], bytes]] = {
    TAG_RAW: _decode_raw,
    TAG_DEFLATE: _decode_deflate,
    TAG_ZSTD: _decode_zstd,
    TAG_LZ4: _decode_lz4,
    TAG_MODELED: _decode_modeled,
}


def register_decoder(
    tag: int,
    decode: Callable[[CompressedChunk], bytes],
    *,
    replace: bool = False,
) -> None:
    """Claim ``tag`` for ``decode`` (third-party codecs register here).

    Tags are a shared on-disk namespace: claiming an allocated tag
    without ``replace=True`` is an error, because two decoders for one
    tag means stored data whose meaning depends on import order.
    """
    if not 0 <= tag <= 0xFF:
        raise ValueError(f"codec tag must fit one byte, got {tag}")
    if not replace and tag in _DECODERS:
        raise ValueError(f"codec tag 0x{tag:02x} is already allocated")
    _DECODERS[tag] = decode


def decode_chunk(
    chunk: CompressedChunk, fallback: Optional[Compressor] = None
) -> bytes:  # repro-lint: hot-path
    """Decode one chunk by its codec tag.

    ``fallback`` (typically the engine's configured compressor) handles
    what tag dispatch cannot: payloads predating the tag discipline
    (whose first byte is arbitrary chunk data) and codecs whose decode
    needs out-of-band state such as a trained dictionary.  A
    :class:`~repro.errors.MissingDependencyError` is never silently
    masked — a missing library needs installing, not reinterpreting the
    bytes — but when the tag byte came from the *payload* (a container
    read, where a pre-tag chunk's first byte is arbitrary data) the
    fallback gets one attempt first, and the install error resurfaces
    only if it cannot decode either.  A fresh chunk's ``prefix`` tag is
    authoritative, so there the error propagates immediately.
    """
    tag = chunk.prefix[0] if chunk.prefix else (
        chunk.payload[0] if len(chunk.payload) else -1
    )
    decoder = _DECODERS.get(tag)
    if decoder is not None:
        try:
            return decoder(chunk)
        except MissingDependencyError as exc:
            if fallback is None or chunk.prefix:
                raise
            try:
                return fallback.decompress(chunk)
            except Exception:
                raise exc
        except Exception:
            if fallback is None:
                raise
    elif fallback is None:
        raise ValueError(f"unknown codec tag 0x{tag:02x} and no fallback decoder")
    return fallback.decompress(chunk)


def decode_many(
    chunks: Sequence[CompressedChunk],
    pool: Optional["StagePool"] = None,
    *,
    min_batch: int = 0,
    fallback: Optional[Compressor] = None,
) -> List[bytes]:  # repro-lint: hot-path
    """Tag-dispatched batch decode, in input order.

    The batched twin of :func:`decode_chunk`, mirroring
    :meth:`~repro.datared.compression.Compressor.decompress_many`:
    ``min_batch`` gates the fan-out so small reads decompress inline.
    The mapped callable is a partial of a module-level function, so it
    crosses a process-backed pool's pickling boundary when ``fallback``
    does.
    """
    if pool is None:
        return [decode_chunk(chunk, fallback) for chunk in chunks]
    return pool.map(
        partial(decode_chunk, fallback=fallback), chunks, min_batch=min_batch
    )


# -- codec implementations ---------------------------------------------------


class RawCodec(Compressor):
    """Store chunks verbatim (tag 0x00): compression disabled.

    The measurement control for codec sweeps, and the target the
    adaptive codec routes incompressible chunks to.  ``stored_size``
    equals ``logical_size``, exactly like every codec's raw escape.
    """

    name = "raw"

    def compress(self, data: Buffer) -> CompressedChunk:  # repro-lint: hot-path
        size = len(data)
        if not size:
            raise ValueError("cannot compress an empty chunk")
        return _raw_escape(data, size)

    def decompress(self, chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
        tag, body = _tag_and_body(chunk)
        if tag != TAG_RAW:
            raise ValueError(f"unknown compression tag 0x{tag:02x}")
        return _check_size(bytes(body), chunk)  # repro-lint: copy-ok reads return owned bytes


class ZstdCodec(Compressor):
    """Zstandard compression (tag 0x02), optionally dictionary-trained.

    Requires the optional ``zstandard`` module (``repro[codecs]``).
    Each thread keeps one reused compression/decompression context —
    zstd context setup dominates the per-4-KB cost the same way
    ``deflateInit`` does for zlib — and the contexts are rebuilt lazily
    per process-pool worker (they hold C state that cannot be pickled).

    ``dictionary`` carries trained-dictionary bytes: chunks then
    compress against it, and *reading them back requires a codec bound
    to the same dictionary* — tag dispatch alone cannot decode them, so
    the engine's fallback path (its configured compressor) does.  See
    DESIGN.md §5.6 for the dictionary lifecycle.
    """

    name = "zstd"
    _TAG = bytes([TAG_ZSTD])

    def __init__(
        self, level: int = 3, dictionary: Optional[bytes] = None
    ) -> None:
        if zstandard is None:
            raise MissingDependencyError(
                "the 'zstd' codec requires the 'zstandard' module "
                "(install the repro[codecs] extras)"
            )
        if not 1 <= level <= 22:
            raise ValueError(f"zstd level must be 1-22, got {level}")
        self.level = level
        self.dictionary = dictionary
        self._local = threading.local()

    def __getstate__(self) -> Dict[str, object]:
        # Compression contexts hold C state; process-pool workers
        # rebuild them lazily from the parameters.
        return {"level": self.level, "dictionary": self.dictionary}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.level = cast(int, state["level"])
        self.dictionary = cast(Optional[bytes], state["dictionary"])
        self._local = threading.local()

    def _contexts(self) -> Tuple[object, object]:
        local = self._local
        try:
            return local.cctx, local.dctx
        except AttributeError:
            dict_data = (
                zstandard.ZstdCompressionDict(self.dictionary)
                if self.dictionary
                else None
            )
            if dict_data is not None:
                cctx = zstandard.ZstdCompressor(
                    level=self.level, dict_data=dict_data
                )
                dctx = zstandard.ZstdDecompressor(dict_data=dict_data)
            else:
                cctx = zstandard.ZstdCompressor(level=self.level)
                dctx = zstandard.ZstdDecompressor()
            local.cctx, local.dctx = cctx, dctx
            return cctx, dctx

    def train(
        self, samples: Sequence[Buffer], dict_size: int = 16384
    ) -> "ZstdCodec":
        """A new codec bound to a dictionary trained on ``samples``.

        The returned codec's :attr:`dictionary` bytes are the caller's
        to persist — dictionary-compressed chunks are only readable
        through a codec carrying the same dictionary (DESIGN.md §5.6).
        """
        trained = zstandard.train_dictionary(
            dict_size, [bytes(sample) for sample in samples]
        )
        return ZstdCodec(level=self.level, dictionary=trained.as_bytes())

    def compress(self, data: Buffer) -> CompressedChunk:  # repro-lint: hot-path
        size = len(data)
        if not size:
            raise ValueError("cannot compress an empty chunk")
        cctx, _ = self._contexts()
        body = cctx.compress(data)  # type: ignore[attr-defined]
        if 1 + len(body) <= size:
            return CompressedChunk(
                payload=body,
                logical_size=size,
                stored_size=1 + len(body),
                prefix=self._TAG,
            )
        return _raw_escape(data, size)

    def decompress(self, chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
        tag, body = _tag_and_body(chunk)
        if tag == TAG_ZSTD:
            _, dctx = self._contexts()
            return _check_size(dctx.decompress(body), chunk)  # type: ignore[attr-defined]
        if tag == TAG_RAW:
            return _check_size(bytes(body), chunk)  # repro-lint: copy-ok reads return owned bytes
        raise ValueError(f"unknown compression tag 0x{tag:02x}")


class Lz4Codec(Compressor):
    """LZ4 block compression (tag 0x03): speed-first, ratio-second.

    Requires the optional ``lz4`` module (``repro[codecs]``).  Blocks
    are stored without the embedded size header (``store_size=False``)
    — the logical size already travels in the PBN record, so the body
    carries no redundant bytes.
    """

    name = "lz4"
    _TAG = bytes([TAG_LZ4])

    def __init__(self, acceleration: int = 1) -> None:
        if lz4 is None:
            raise MissingDependencyError(
                "the 'lz4' codec requires the 'lz4' module "
                "(install the repro[codecs] extras)"
            )
        if acceleration < 1:
            raise ValueError(
                f"lz4 acceleration must be >= 1, got {acceleration}"
            )
        self.acceleration = acceleration

    def compress(self, data: Buffer) -> CompressedChunk:  # repro-lint: hot-path
        size = len(data)
        if not size:
            raise ValueError("cannot compress an empty chunk")
        body = lz4.block.compress(
            data,
            mode="fast",
            acceleration=self.acceleration,
            store_size=False,
        )
        if 1 + len(body) <= size:
            return CompressedChunk(
                payload=body,
                logical_size=size,
                stored_size=1 + len(body),
                prefix=self._TAG,
            )
        return _raw_escape(data, size)

    def decompress(self, chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
        tag, body = _tag_and_body(chunk)
        if tag == TAG_LZ4:
            return _check_size(
                lz4.block.decompress(
                    body, uncompressed_size=chunk.logical_size
                ),
                chunk,
            )
        if tag == TAG_RAW:
            return _check_size(bytes(body), chunk)  # repro-lint: copy-ok reads return owned bytes
        raise ValueError(f"unknown compression tag 0x{tag:02x}")


class AdaptiveCodec(Compressor):
    """Per-chunk codec routing from a cheap entropy probe.

    Samples up to ``probe_bytes`` bytes (strided across the chunk, so
    mixed content is seen end to end) and counts distinct byte values —
    a crude but monotone entropy proxy costing well under a microsecond:

    * distinct fraction >= ``raw_threshold``: effectively random; skip
      compression entirely (the ``raw`` escape) instead of paying the
      dominant-stage cost for nothing,
    * >= ``fast_threshold``: moderately redundant; take the *fast*
      codec (lz4 when available),
    * below: highly redundant; the *primary* codec's better ratio is
      nearly free on such chunks (zstd when available, zlib otherwise).

    Routing decisions publish as ``codec.adaptive.chosen.<name>``
    counters; batch fan-out probes in the submitting thread and
    delegates each partition to the target codec's own
    ``compress_many``, preserving input order.
    """

    name = "adaptive"

    def __init__(
        self,
        primary: Optional[Compressor] = None,
        fast: Optional[Compressor] = None,
        *,
        probe_bytes: int = 64,
        raw_threshold: float = 0.80,
        fast_threshold: float = 0.30,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        if probe_bytes < 8:
            raise ValueError(f"probe_bytes must be >= 8, got {probe_bytes}")
        if not 0.0 < fast_threshold < raw_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < fast_threshold < "
                f"raw_threshold <= 1, got {fast_threshold}/{raw_threshold}"
            )
        if primary is None:
            primary = (
                ZstdCodec() if zstandard is not None else ZlibCompressor()
            )
        if fast is None:
            fast = Lz4Codec() if lz4 is not None else primary
        self.primary = primary
        self.fast = fast
        self.skip = RawCodec()
        self.probe_bytes = probe_bytes
        self.raw_threshold = raw_threshold
        self.fast_threshold = fast_threshold
        self._build_counters(registry)

    def _build_counters(
        self, registry: Optional[_metrics.MetricsRegistry]
    ) -> None:
        reg = registry if registry is not None else _metrics.get_registry()
        self._chosen: Dict[int, _metrics.Counter] = {
            id(target): reg.counter(f"codec.adaptive.chosen.{target.name}")
            for target in (self.skip, self.fast, self.primary)
        }

    def __getstate__(self) -> Dict[str, object]:
        # Counters hold locks; workers re-resolve them from their own
        # process registry.
        return {
            "primary": self.primary,
            "fast": self.fast,
            "skip": self.skip,
            "probe_bytes": self.probe_bytes,
            "raw_threshold": self.raw_threshold,
            "fast_threshold": self.fast_threshold,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.primary = cast(Compressor, state["primary"])
        self.fast = cast(Compressor, state["fast"])
        self.skip = cast(RawCodec, state["skip"])
        self.probe_bytes = cast(int, state["probe_bytes"])
        self.raw_threshold = cast(float, state["raw_threshold"])
        self.fast_threshold = cast(float, state["fast_threshold"])
        self._build_counters(None)

    def _route(self, data: Buffer) -> Compressor:  # repro-lint: hot-path
        size = len(data)
        step = size // self.probe_bytes or 1
        sample = bytes(memoryview(data)[::step])  # repro-lint: copy-ok probe sample is <= probe_bytes bytes
        distinct = len(set(sample)) / len(sample)
        if distinct >= self.raw_threshold:
            return self.skip
        if distinct >= self.fast_threshold:
            return self.fast
        return self.primary

    def compress(self, data: Buffer) -> CompressedChunk:  # repro-lint: hot-path
        target = self._route(data)
        self._chosen[id(target)].inc()
        return target.compress(data)

    def compress_many(
        self,
        buffers: Sequence[Buffer],
        pool: Optional["StagePool"] = None,
    ) -> List[CompressedChunk]:  # repro-lint: hot-path
        """Probe in the submitting thread, fan each partition out.

        Probing is two orders of magnitude cheaper than compressing, so
        running it serially costs little while keeping the routing
        counters (and process-pool delegation) in the parent.
        """
        with _trace.span("compress." + self.name, chunks=len(buffers)):
            groups: Dict[int, Tuple[Compressor, List[int]]] = {}
            for index, data in enumerate(buffers):
                target = self._route(data)
                entry = groups.get(id(target))
                if entry is None:
                    entry = groups[id(target)] = (target, [])
                entry[1].append(index)
            results: List[Optional[CompressedChunk]] = [None] * len(buffers)
            for target, positions in groups.values():
                self._chosen[id(target)].inc(len(positions))
                packed = target.compress_many(
                    [buffers[position] for position in positions], pool=pool
                )
                for position, chunk in zip(positions, packed):
                    results[position] = chunk
            return cast(List[CompressedChunk], results)

    def decompress(self, chunk: CompressedChunk) -> bytes:  # repro-lint: hot-path
        # Tag dispatch covers everything the sub-codecs emit; the
        # primary is the fallback so dictionary-bound chunks decode too.
        return decode_chunk(chunk, self.primary)


# -- the registry ------------------------------------------------------------


class _CodecEntry(NamedTuple):
    factory: Callable[..., Compressor]
    available: Callable[[], bool]


_CODECS: Dict[str, _CodecEntry] = {}


def register_codec(
    name: str,
    factory: Callable[..., Compressor],
    *,
    available: Optional[Callable[[], bool]] = None,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    ``available`` reports whether the codec's backing library is
    importable *right now* — absent codecs stay listed (so CLIs can name
    them) but :func:`create_codec` raises
    :class:`~repro.errors.MissingDependencyError` for them.
    """
    if not name:
        raise ValueError("codec name must be non-empty")
    if not replace and name in _CODECS:
        raise ValueError(f"codec {name!r} is already registered")
    _CODECS[name] = _CodecEntry(
        factory, available if available is not None else _always
    )


def _always() -> bool:
    return True


def _zstd_importable() -> bool:
    return zstandard is not None


def _lz4_importable() -> bool:
    return lz4 is not None


def codec_names() -> List[str]:
    """Every registered codec name, available or not."""
    return sorted(_CODECS)


def codec_available(name: str) -> bool:
    """Whether ``name`` is registered *and* its backing library imports."""
    entry = _CODECS.get(name)
    return entry is not None and entry.available()


def available_codecs() -> List[str]:
    """The codec names that can actually be constructed here."""
    return [name for name in codec_names() if _CODECS[name].available()]


def create_codec(name: str, **params: object) -> Compressor:
    """Build the codec registered as ``name`` with ``params``.

    Raises ``ValueError`` for an unknown name and
    :class:`~repro.errors.MissingDependencyError` for a registered codec
    whose optional backing library is absent.
    """
    entry = _CODECS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown codec {name!r}; registered: {', '.join(codec_names())}"
        )
    if not entry.available():
        raise MissingDependencyError(
            f"codec {name!r} is registered but its backing library is not "
            "installed (install the repro[codecs] extras)"
        )
    return entry.factory(**params)


register_codec("zlib", ZlibCompressor)
register_codec("raw", RawCodec)
register_codec("modeled", ModeledCompressor)
register_codec("zstd", ZstdCodec, available=_zstd_importable)
register_codec("lz4", Lz4Codec, available=_lz4_importable)
register_codec("adaptive", AdaptiveCodec)

"""Paged, cached LBA→PBN storage (paper §2.1.4).

At PB scale the LBA-PBN array is multi-TB, so it lives on SSD in 4-KB
pages with a small DRAM cache; the paper notes that "as workloads
usually exhibit some address locality, a small DRAM-based cache for the
LBA-PBA table is enough".  :class:`PagedLbaStore` is that structure:

* the map is an array of 6-byte PBN slots, 682 per 4-KB page
  (value 0 = unmapped; stored PBNs are offset by one),
* pages move through any :class:`~repro.datared.hash_pbn.BucketStore`
  (the same 4-KB-page interface the Hash-PBN table uses, so it can sit
  on an in-memory store, raw SSDs, or a :class:`~repro.cache.TableCache`
  for full cached-page semantics),
* it is duck-compatible with :class:`~repro.datared.lba_map.LbaMap`, so
  a :class:`~repro.datared.dedup.DedupEngine` accepts it directly.

Because lookups are *array indexing* (LBA → page, slot), address
locality translates into page-cache hits — the §2.1.4 claim becomes a
measurable property (tested in the suite).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .hash_pbn import BUCKET_SIZE, BucketStore, InMemoryBucketStore
from .lba_map import LBA_PBN_ENTRY_SIZE

__all__ = ["ENTRIES_PER_PAGE", "PagedLbaStore"]

#: 6-byte PBN slots per 4-KB page (682).
ENTRIES_PER_PAGE = BUCKET_SIZE // LBA_PBN_ENTRY_SIZE


class PagedLbaStore:
    """LBA → PBN map as cached 4-KB array pages."""

    def __init__(self, store: Optional[BucketStore] = None) -> None:
        self.store = store if store is not None else InMemoryBucketStore()
        self._size = 0
        self.page_reads = 0
        self.page_writes = 0

    # -- page plumbing ----------------------------------------------------------
    @staticmethod
    def _locate(lba: int) -> Tuple[int, int]:
        if lba < 0:
            raise ValueError(f"negative LBA {lba}")
        return lba // ENTRIES_PER_PAGE, lba % ENTRIES_PER_PAGE

    def _read_page(self, page_index: int) -> bytes:
        self.page_reads += 1
        page = self.store.read_bucket(page_index)
        if len(page) != BUCKET_SIZE:
            raise ValueError("corrupt LBA page")
        return page

    def _slot_value(self, page: bytes, slot: int) -> int:
        offset = slot * LBA_PBN_ENTRY_SIZE
        return int.from_bytes(page[offset : offset + LBA_PBN_ENTRY_SIZE], "big")

    def _write_slot(self, page_index: int, page: bytes, slot: int,
                    raw_value: int) -> None:
        offset = slot * LBA_PBN_ENTRY_SIZE
        updated = (
            page[:offset]
            + raw_value.to_bytes(LBA_PBN_ENTRY_SIZE, "big")
            + page[offset + LBA_PBN_ENTRY_SIZE :]
        )
        self.page_writes += 1
        self.store.write_bucket(page_index, updated)

    # -- LbaMap-compatible interface -----------------------------------------------
    def get(self, lba: int) -> Optional[int]:
        page_index, slot = self._locate(lba)
        raw = self._slot_value(self._read_page(page_index), slot)
        return raw - 1 if raw else None

    def set(self, lba: int, pbn: int) -> Optional[int]:
        """Map ``lba``; returns the previous PBN if remapped."""
        if pbn < 0 or pbn + 1 >= 1 << (8 * LBA_PBN_ENTRY_SIZE):
            raise ValueError(f"PBN {pbn} out of 6-byte range")
        page_index, slot = self._locate(lba)
        page = self._read_page(page_index)
        previous_raw = self._slot_value(page, slot)
        self._write_slot(page_index, page, slot, pbn + 1)
        if not previous_raw:
            self._size += 1
            return None
        return previous_raw - 1

    def unmap(self, lba: int) -> Optional[int]:
        page_index, slot = self._locate(lba)
        page = self._read_page(page_index)
        previous_raw = self._slot_value(page, slot)
        if not previous_raw:
            return None
        self._write_slot(page_index, page, slot, 0)
        self._size -= 1
        return previous_raw - 1

    def __len__(self) -> int:
        return self._size

    def __contains__(self, lba: int) -> bool:
        return self.get(lba) is not None

    def items(self) -> Iterator[Tuple[int, int]]:
        """All mappings (scans every touched page; diagnostics only)."""
        touched = getattr(self.store, "_pages", None)
        if touched is None:
            raise NotImplementedError(
                "items() needs an enumerable backing store"
            )
        for page_index in sorted(touched):
            page = self.store.read_bucket(page_index)
            for slot in range(ENTRIES_PER_PAGE):
                raw = self._slot_value(page, slot)
                if raw:
                    yield page_index * ENTRIES_PER_PAGE + slot, raw - 1

    @property
    def metadata_bytes(self) -> int:
        return self._size * LBA_PBN_ENTRY_SIZE

"""Two-level LBA → PBA mapping (paper §2.1.4).

Because chunks have variable size after compression, the paper maps a
client's logical block address to physical bytes in two steps:

* **LBA → PBN** (:class:`LbaMap`): which stored chunk a logical address
  currently points at.  Entry size: 6 bytes.
* **PBN → PBA** (:class:`PbnMap`): where that chunk lives — the container
  it was packed into, its offset, and its compressed size.  Entry size:
  10 bytes (6-byte PBN index + 2-byte offset + 2-byte size).

This module adds the reference counting a deduplicating system needs on
top: many LBAs may map to one PBN, and a chunk is only reclaimable when
its last reference drops (the paper leaves garbage collection implicit;
see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "LBA_PBN_ENTRY_SIZE",
    "PBN_PBA_ENTRY_SIZE",
    "PbnRecord",
    "LbaMap",
    "PbnAllocator",
    "PbnMap",
    "mapping_bytes_for_capacity",
]

#: Size of one LBA→PBN entry ("6 bytes for PBN", §2.1.4).
LBA_PBN_ENTRY_SIZE = 6

#: Size of one PBN→PBA entry (6-byte PBN + 2-byte offset + 2-byte size).
PBN_PBA_ENTRY_SIZE = 10


class PbnRecord:
    """Physical placement and liveness of one stored chunk.

    ``offset`` is in container-local *slot* units chosen by the container
    layer so it fits the 2-byte field; ``stored_size`` is the compressed
    byte count.  ``fingerprint`` is retained so the Hash-PBN entry can be
    removed when the last reference drops.

    A mutable ``__slots__`` class (``refcount`` changes on every ref /
    unref, and GC repoints ``container_id``/``offset``): one is built
    per unique chunk on the write path, where dataclass construction
    costs ~3x a plain ``__init__`` (BENCH_stages.json, ``publish``
    stage).
    """

    __slots__ = (
        "container_id", "offset", "stored_size", "fingerprint", "refcount"
    )

    def __init__(
        self,
        container_id: int,
        offset: int,
        stored_size: int,
        fingerprint: bytes,
        refcount: int = 1,
    ) -> None:
        if refcount < 0:
            raise ValueError("refcount cannot be negative")
        if stored_size <= 0:
            raise ValueError("stored_size must be positive")
        self.container_id = container_id
        self.offset = offset
        self.stored_size = stored_size
        self.fingerprint = fingerprint
        self.refcount = refcount

    def __repr__(self) -> str:
        return (
            f"PbnRecord(container_id={self.container_id}, "
            f"offset={self.offset}, stored_size={self.stored_size}, "
            f"refcount={self.refcount})"
        )


class LbaMap:
    """LBA → PBN map.

    A production system keeps this as a flat array on SSD with a small
    DRAM cache (§2.1.4 notes address locality makes that cheap); the
    functional model uses a dict keyed by chunk-aligned LBA.
    """

    def __init__(self) -> None:
        self._map: Dict[int, int] = {}

    def get(self, lba: int) -> Optional[int]:
        return self._map.get(lba)

    def set(self, lba: int, pbn: int) -> Optional[int]:
        """Map ``lba`` to ``pbn``; returns the previous PBN if remapped."""
        previous = self._map.get(lba)
        self._map[lba] = pbn
        return previous

    def unmap(self, lba: int) -> Optional[int]:
        """Drop the mapping (TRIM/discard); returns the old PBN if any."""
        return self._map.pop(lba, None)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lba: int) -> bool:
        return lba in self._map

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._map.items())

    @property
    def metadata_bytes(self) -> int:
        """On-disk footprint of the current map."""
        return len(self._map) * LBA_PBN_ENTRY_SIZE


class PbnAllocator:
    """Sequential PBN allocation with free-list reuse."""

    def __init__(self) -> None:
        self._next = 0
        self._free: List[int] = []

    def allocate(self) -> int:
        if self._free:
            return self._free.pop()
        pbn = self._next
        self._next += 1
        return pbn

    def free(self, pbn: int) -> None:
        if pbn < 0 or pbn >= self._next:
            raise ValueError(f"PBN {pbn} was never allocated")
        self._free.append(pbn)

    def ensure_allocated(self, pbn: int) -> None:
        """Mark ``pbn`` (and nothing else) as allocated — journal replay
        restores the allocator without re-running allocations."""
        if pbn < 0:
            raise ValueError(f"negative PBN {pbn}")
        while self._next <= pbn:
            # Intervening PBNs not (yet) seen in the journal stay free.
            self._free.append(self._next)
            self._next += 1
        if pbn in self._free:
            self._free.remove(pbn)

    def reserve_through(self, next_pbn: int) -> None:
        """Advance the high-water mark to ``next_pbn``, freeing the gap.

        Checkpoint restore calls this first (with the checkpointed
        allocator cursor), then :meth:`ensure_allocated` per live PBN —
        reproducing the pre-crash free list exactly, including PBNs that
        were allocated and later freed.
        """
        if next_pbn < self._next:
            raise ValueError(
                f"cannot move the allocator cursor backwards "
                f"({self._next} -> {next_pbn})"
            )
        while self._next < next_pbn:
            self._free.append(self._next)
            self._next += 1

    @property
    def next_pbn(self) -> int:
        """The never-allocated cursor (checkpointed for exact restore)."""
        return self._next

    @property
    def allocated(self) -> int:
        return self._next - len(self._free)


class PbnMap:
    """PBN → placement records with reference counting.

    Two reverse indexes are maintained incrementally alongside the
    records (every mutation goes through :meth:`add`, :meth:`unref` and
    :meth:`repoint`, so they can never drift):

    * fingerprint → PBN (:meth:`find_by_fingerprint`) — a read-only
      mirror of the live Hash-PBN table content, used by the batched
      write planner to classify chunks without touching the table
      cache.
    * ``(container_id, offset)`` → PBN (:meth:`pbn_at`) — used by
      garbage collection to repoint moved chunks without rescanning
      every record.
    """

    def __init__(self) -> None:
        self._records: Dict[int, PbnRecord] = {}
        self._by_fingerprint: Dict[bytes, int] = {}
        self._by_placement: Dict[Tuple[int, int], int] = {}

    def add(self, pbn: int, record: PbnRecord) -> None:
        if pbn in self._records:
            raise ValueError(f"PBN {pbn} already present")
        self._records[pbn] = record
        self._by_fingerprint[record.fingerprint] = pbn
        self._by_placement[(record.container_id, record.offset)] = pbn

    def get(self, pbn: int) -> PbnRecord:
        try:
            return self._records[pbn]
        except KeyError:
            raise KeyError(f"PBN {pbn} has no record") from None

    def ref(self, pbn: int) -> int:
        """Add one reference; returns the new count."""
        record = self.get(pbn)
        record.refcount += 1
        return record.refcount

    def unref(self, pbn: int) -> Optional[PbnRecord]:
        """Drop one reference.

        Returns the record if this was the last reference (the caller
        reclaims the chunk), else ``None``.
        """
        record = self.get(pbn)
        if record.refcount <= 0:
            raise ValueError(f"PBN {pbn} already dead")
        record.refcount -= 1
        if record.refcount == 0:
            del self._records[pbn]
            if self._by_fingerprint.get(record.fingerprint) == pbn:
                del self._by_fingerprint[record.fingerprint]
            placement = (record.container_id, record.offset)
            if self._by_placement.get(placement) == pbn:
                del self._by_placement[placement]
            return record
        return None

    def repoint(self, pbn: int, container_id: int, offset: int) -> None:
        """Move a record's placement (garbage-collection compaction)."""
        record = self.get(pbn)
        old = (record.container_id, record.offset)
        if self._by_placement.get(old) == pbn:
            del self._by_placement[old]
        record.container_id = container_id
        record.offset = offset
        self._by_placement[(container_id, offset)] = pbn

    def find_by_fingerprint(self, digest: bytes) -> Optional[int]:
        """The live PBN storing ``digest``, if any.

        Mirrors the Hash-PBN table's content (both are mutated in
        lock-step by the engine), but resolves from a host-memory dict,
        so probing it never perturbs table-cache state or accounting.
        """
        return self._by_fingerprint.get(digest)

    def pbn_at(self, container_id: int, offset: int) -> Optional[int]:
        """The PBN stored at a container placement, if any."""
        return self._by_placement.get((container_id, offset))

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, pbn: int) -> bool:
        return pbn in self._records

    def records(self) -> Iterator[Tuple[int, PbnRecord]]:
        """Iterate over ``(pbn, record)`` pairs (garbage collection)."""
        return iter(self._records.items())

    @property
    def live_stored_bytes(self) -> int:
        return sum(record.stored_size for record in self._records.values())

    @property
    def metadata_bytes(self) -> int:
        return len(self._records) * PBN_PBA_ENTRY_SIZE


def mapping_bytes_for_capacity(logical_bytes: int, chunk_size: int = 4096) -> int:
    """Total LBA-PBA metadata for a fully-mapped logical capacity.

    Multi-TB at PB scale, which is why the paper keeps it on SSD with a
    small DRAM cache (§2.1.4).
    """
    if logical_bytes < 0 or chunk_size <= 0:
        raise ValueError("sizes must be non-negative / positive")
    chunks = logical_bytes // chunk_size
    return chunks * (LBA_PBN_ENTRY_SIZE + PBN_PBA_ENTRY_SIZE)

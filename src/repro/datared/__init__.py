"""Functional inline data reduction: chunking, hashing, dedup, compression.

This package implements the paper's §2 components on real bytes:

* :mod:`~repro.datared.chunking` — fixed 4-KB chunking and the
  large-chunking read-modify-write pipeline (Figure 3).
* :mod:`~repro.datared.hashing` — SHA-256 chunk fingerprints and the
  bucket index function.
* :mod:`~repro.datared.hash_pbn` — the bucket-based Hash-PBN table over a
  pluggable bucket store.
* :mod:`~repro.datared.lba_map` — the two-level LBA→PBN→PBA mapping with
  reference counting.
* :mod:`~repro.datared.compression` — real (zlib) and size-modelled
  compression strategies.
* :mod:`~repro.datared.container` — 4-MB compressed-chunk containers.
* :mod:`~repro.datared.dedup` — the end-to-end write/read engine.
* :mod:`~repro.datared.lba_store` — the paged, cached LBA→PBN store.
* :mod:`~repro.datared.journal` — metadata journaling + crash recovery.
* :mod:`~repro.datared.cdc` — content-defined chunking (the §2.1.1
  alternative) and a content-addressed stream store.
"""

from .cdc import CdcDedupStore, GearChunker, StreamStats
from .chunking import BLOCK_SIZE, Chunk, FixedChunker, LargeChunkAssembler, RmwStats
from .compression import (
    CompressedChunk,
    Compressor,
    ModeledCompressor,
    ZlibCompressor,
    compression_ratio,
)
from .container import CONTAINER_SIZE, OFFSET_GRANULE, Container, ContainerStore, Placement
from .dedup import (
    ChunkOutcome,
    DedupEngine,
    EngineStats,
    ReadReport,
    ReductionStats,
    WriteOptions,
    WriteReport,
)
from .hash_pbn import (
    BUCKET_CAPACITY,
    BUCKET_SIZE,
    ENTRY_SIZE,
    Bucket,
    BucketStore,
    HashPbnTable,
    InMemoryBucketStore,
    buckets_for_capacity,
    table_bytes_for_capacity,
)
from .journal import JournalRecord, MetadataJournal, RecordKind, recover_engine
from .lba_store import ENTRIES_PER_PAGE, PagedLbaStore
from .hashing import (
    FINGERPRINT_SIZE,
    MAX_PBN,
    PBN_SIZE,
    bucket_index,
    decode_pbn,
    encode_pbn,
    fingerprint,
    fingerprint_many,
)
from .lba_map import (
    LBA_PBN_ENTRY_SIZE,
    PBN_PBA_ENTRY_SIZE,
    LbaMap,
    PbnAllocator,
    PbnMap,
    PbnRecord,
    mapping_bytes_for_capacity,
)

__all__ = [
    "BLOCK_SIZE",
    "CdcDedupStore",
    "GearChunker",
    "JournalRecord",
    "MetadataJournal",
    "RecordKind",
    "StreamStats",
    "recover_engine",
    "ENTRIES_PER_PAGE",
    "PagedLbaStore",
    "BUCKET_CAPACITY",
    "BUCKET_SIZE",
    "CONTAINER_SIZE",
    "Chunk",
    "ChunkOutcome",
    "CompressedChunk",
    "Compressor",
    "Container",
    "ContainerStore",
    "DedupEngine",
    "EngineStats",
    "ENTRY_SIZE",
    "FINGERPRINT_SIZE",
    "FixedChunker",
    "HashPbnTable",
    "InMemoryBucketStore",
    "LBA_PBN_ENTRY_SIZE",
    "LargeChunkAssembler",
    "LbaMap",
    "MAX_PBN",
    "ModeledCompressor",
    "OFFSET_GRANULE",
    "PBN_PBA_ENTRY_SIZE",
    "PBN_SIZE",
    "PbnAllocator",
    "PbnMap",
    "PbnRecord",
    "Placement",
    "ReadReport",
    "ReductionStats",
    "RmwStats",
    "WriteOptions",
    "WriteReport",
    "Bucket",
    "BucketStore",
    "bucket_index",
    "buckets_for_capacity",
    "compression_ratio",
    "decode_pbn",
    "encode_pbn",
    "fingerprint",
    "fingerprint_many",
    "mapping_bytes_for_capacity",
    "table_bytes_for_capacity",
]

"""Functional inline data reduction: chunking, hashing, dedup, compression.

This package implements the paper's §2 components on real bytes:

* :mod:`~repro.datared.chunking` — fixed 4-KB chunking and the
  large-chunking read-modify-write pipeline (Figure 3).
* :mod:`~repro.datared.hashing` — SHA-256 chunk fingerprints and the
  bucket index function.
* :mod:`~repro.datared.hash_pbn` — the bucket-based Hash-PBN table over a
  pluggable bucket store.
* :mod:`~repro.datared.lba_map` — the two-level LBA→PBN→PBA mapping with
  reference counting.
* :mod:`~repro.datared.compression` — real (zlib) and size-modelled
  compression strategies.
* :mod:`~repro.datared.codecs` — the codec plugin registry: tagged
  on-disk payloads, optional zstd/lz4 backends, the adaptive router,
  and the tag-dispatched read path.
* :mod:`~repro.datared.container` — 4-MB compressed-chunk containers.
* :mod:`~repro.datared.dedup` — the end-to-end write/read engine.
* :mod:`~repro.datared.lba_store` — the paged, cached LBA→PBN store.
* :mod:`~repro.datared.journal` — metadata journaling + crash recovery.
* :mod:`~repro.datared.cdc` — content-defined chunking (the §2.1.1
  alternative) and a content-addressed stream store.
"""

from .cdc import CdcDedupStore, GearChunker, StreamStats
from .chunking import BLOCK_SIZE, Chunk, FixedChunker, LargeChunkAssembler, RmwStats
from .codecs import (
    AdaptiveCodec,
    Codec,
    Lz4Codec,
    RawCodec,
    ZstdCodec,
    available_codecs,
    codec_available,
    codec_names,
    create_codec,
    decode_chunk,
    decode_many,
    register_codec,
    register_decoder,
)
from .compression import (
    CompressedChunk,
    Compressor,
    ModeledCompressor,
    ZlibCompressor,
    compression_ratio,
)
from .container import CONTAINER_SIZE, OFFSET_GRANULE, Container, ContainerStore, Placement
from .dedup import (
    ChunkOutcome,
    DedupEngine,
    EngineStats,
    ReadReport,
    ReductionStats,
    WriteOptions,
    WriteReport,
)
from .hash_pbn import (
    BUCKET_CAPACITY,
    BUCKET_SIZE,
    ENTRY_SIZE,
    Bucket,
    BucketStore,
    HashPbnTable,
    InMemoryBucketStore,
    buckets_for_capacity,
    table_bytes_for_capacity,
)
from .journal import (
    CheckpointState,
    JournalRecord,
    MetadataJournal,
    RecordKind,
    RecoveryImage,
    RecoveryReport,
    reconcile_containers,
    recover_engine,
    recover_into,
    replay_journal,
    validate_placements,
)
from .lba_store import ENTRIES_PER_PAGE, PagedLbaStore
from .sharded import ShardedDedupEngine, shard_for_digest
from .hashing import (
    FINGERPRINT_SIZE,
    MAX_PBN,
    PBN_SIZE,
    SHA256,
    Blake3Fingerprinter,
    Fingerprinter,
    Sha256Fingerprinter,
    available_fingerprinters,
    bucket_index,
    create_fingerprinter,
    decode_pbn,
    encode_pbn,
    fingerprint,
    fingerprint_many,
    fingerprinter_available,
    fingerprinter_names,
    register_fingerprinter,
)
from .lba_map import (
    LBA_PBN_ENTRY_SIZE,
    PBN_PBA_ENTRY_SIZE,
    LbaMap,
    PbnAllocator,
    PbnMap,
    PbnRecord,
    mapping_bytes_for_capacity,
)

__all__ = [
    "AdaptiveCodec",
    "BLOCK_SIZE",
    "Blake3Fingerprinter",
    "CdcDedupStore",
    "Codec",
    "Fingerprinter",
    "Lz4Codec",
    "RawCodec",
    "SHA256",
    "Sha256Fingerprinter",
    "ZstdCodec",
    "available_codecs",
    "available_fingerprinters",
    "codec_available",
    "codec_names",
    "create_codec",
    "create_fingerprinter",
    "decode_chunk",
    "decode_many",
    "fingerprinter_available",
    "fingerprinter_names",
    "register_codec",
    "register_decoder",
    "register_fingerprinter",
    "GearChunker",
    "CheckpointState",
    "JournalRecord",
    "MetadataJournal",
    "RecordKind",
    "RecoveryImage",
    "RecoveryReport",
    "StreamStats",
    "reconcile_containers",
    "recover_engine",
    "recover_into",
    "replay_journal",
    "validate_placements",
    "ENTRIES_PER_PAGE",
    "PagedLbaStore",
    "BUCKET_CAPACITY",
    "BUCKET_SIZE",
    "CONTAINER_SIZE",
    "Chunk",
    "ChunkOutcome",
    "CompressedChunk",
    "Compressor",
    "Container",
    "ContainerStore",
    "DedupEngine",
    "EngineStats",
    "ENTRY_SIZE",
    "FINGERPRINT_SIZE",
    "FixedChunker",
    "HashPbnTable",
    "InMemoryBucketStore",
    "LBA_PBN_ENTRY_SIZE",
    "LargeChunkAssembler",
    "LbaMap",
    "MAX_PBN",
    "ModeledCompressor",
    "OFFSET_GRANULE",
    "PBN_PBA_ENTRY_SIZE",
    "PBN_SIZE",
    "PbnAllocator",
    "PbnMap",
    "PbnRecord",
    "Placement",
    "ReadReport",
    "ReductionStats",
    "RmwStats",
    "ShardedDedupEngine",
    "shard_for_digest",
    "WriteOptions",
    "WriteReport",
    "Bucket",
    "BucketStore",
    "bucket_index",
    "buckets_for_capacity",
    "compression_ratio",
    "decode_pbn",
    "encode_pbn",
    "fingerprint",
    "fingerprint_many",
    "mapping_bytes_for_capacity",
    "table_bytes_for_capacity",
]

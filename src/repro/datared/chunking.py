"""Data chunking (paper §2.1.1 and §3.1).

FIDR uses *fixed-size small chunking* (4 KB) because variable-size chunking
is computationally expensive and large chunking causes read-modify-write
(RMW) amplification.  This module provides:

* :class:`FixedChunker` — split client writes into aligned fixed-size
  chunks (the FIDR configuration uses 4 KB).
* :class:`LargeChunkAssembler` — the large-chunking pipeline the paper
  simulates for Figure 3: 4-KB client writes are staged in a request
  buffer; forming an aligned large chunk requires fetching the missing
  4-KB blocks from the SSDs, deduplicating at the large granularity, and
  writing the whole large chunk back if unique.

Addresses: an *LBA* is a logical block address in 4-KB units.  Chunk
boundaries are aligned multiples of the chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

#: Anything the chunker accepts as a write payload (zero-copy friendly).
Buffer = Union[bytes, bytearray, memoryview]

__all__ = [
    "BLOCK_SIZE",
    "Chunk",
    "FixedChunker",
    "RmwStats",
    "LargeChunkAssembler",
]

#: The unit of client addressing: 4 KB, matching the paper's trace blocks.
BLOCK_SIZE = 4096


class Chunk:
    """A fixed-size piece of client data.

    A ``__slots__`` value class rather than a frozen dataclass: one is
    built per 4-KB chunk on the write path, and frozen-dataclass
    construction (``object.__setattr__`` per field) costs ~5x a plain
    ``__init__`` (BENCH_stages.json, ``chunk`` stage).

    Attributes
    ----------
    lba:
        Logical block address of the chunk's first 4-KB block.
    data:
        Chunk payload; always exactly ``chunk_size`` bytes (writes shorter
        than a chunk are zero-padded by the chunker, mirroring a storage
        system's sector semantics).  On the hot path this is a
        :class:`memoryview` *slice of the caller's payload*, not a copy
        (DESIGN.md §5.4): hashing and compression consume the buffer
        protocol directly, and bytes materialize only at the container
        boundary.  Views compare by value, so equality against ``bytes``
        behaves as before.
    """

    __slots__ = ("lba", "data")

    def __init__(self, lba: int, data: Union[bytes, memoryview]) -> None:
        self.lba = lba
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Chunk):
            return NotImplemented
        return self.lba == other.lba and self.data == other.data

    def __repr__(self) -> str:
        return f"Chunk(lba={self.lba}, data=<{len(self.data)} bytes>)"

    def tobytes(self) -> bytes:
        """The payload as real ``bytes`` (copies when data is a view)."""
        data = self.data
        return data if isinstance(data, bytes) else bytes(data)  # repro-lint: copy-ok explicit materialization helper


class FixedChunker:
    """Split (lba, payload) writes into aligned fixed-size chunks.

    ``chunk_size`` must be a positive multiple of :data:`BLOCK_SIZE`.
    Writes must start on a chunk boundary relative to their LBA (the
    storage protocol in §6.2 presents block-aligned requests); payloads
    that do not fill the final chunk are zero-padded.
    """

    def __init__(self, chunk_size: int = BLOCK_SIZE) -> None:
        if chunk_size <= 0 or chunk_size % BLOCK_SIZE != 0:
            raise ValueError(
                f"chunk_size must be a positive multiple of {BLOCK_SIZE}, "
                f"got {chunk_size}"
            )
        self.chunk_size = chunk_size

    @property
    def blocks_per_chunk(self) -> int:
        return self.chunk_size // BLOCK_SIZE

    def split(self, lba: int, payload: Buffer) -> List[Chunk]:  # repro-lint: hot-path
        """Split ``payload`` written at ``lba`` into aligned chunks.

        Zero-copy: each chunk's ``data`` is a :class:`memoryview` slice
        of ``payload``; only a short final chunk is materialized (it
        must be zero-padded to ``chunk_size``).  The caller must keep
        ``payload`` unmodified until the chunks have been consumed —
        the engine materializes them at container-append time, within
        the same write call (DESIGN.md §5.4).
        """
        if lba < 0:
            raise ValueError(f"negative LBA: {lba}")
        if lba % self.blocks_per_chunk != 0:
            raise ValueError(
                f"write at LBA {lba} is not aligned to "
                f"{self.blocks_per_chunk}-block chunks"
            )
        if not payload:
            return []
        view = memoryview(payload)
        chunk_size = self.chunk_size
        chunks: List[Chunk] = []
        for offset in range(0, len(view), chunk_size):
            piece: Union[bytes, memoryview] = view[offset : offset + chunk_size]
            if len(piece) < chunk_size:
                # Tail chunk: pad to a full chunk (sector semantics).
                piece = bytes(piece) + b"\x00" * (chunk_size - len(piece))  # repro-lint: copy-ok zero-padding requires a new buffer
            chunks.append(Chunk(lba + offset // BLOCK_SIZE, piece))
        return chunks

    def chunk_lba(self, block_lba: int) -> int:
        """The aligned chunk LBA containing a 4-KB block address."""
        return block_lba - (block_lba % self.blocks_per_chunk)


@dataclass
class RmwStats:
    """IO accounting for the large-chunking study (Figure 3).

    All counts are in 4-KB block units so chunk sizes compare directly.
    """

    client_blocks: int = 0  #: 4-KB blocks the client actually wrote
    fill_reads: int = 0  #: blocks fetched from SSD to complete a chunk
    dedup_hits: int = 0  #: chunks eliminated as duplicates
    chunk_writes: int = 0  #: blocks written back for unique chunks

    @property
    def total_io_blocks(self) -> int:
        """All SSD traffic (reads for fills + writes of unique chunks)."""
        return self.fill_reads + self.chunk_writes

    def amplification(self, baseline: "RmwStats") -> float:
        """IO increase relative to another configuration's traffic."""
        if baseline.total_io_blocks == 0:
            raise ValueError("baseline performed no IO")
        return self.total_io_blocks / baseline.total_io_blocks


class LargeChunkAssembler:
    """Simulate deduplication with large chunking over a 4-KB write trace.

    The pipeline follows §3.1: writes accumulate in a request buffer
    (default 4 MB = 1024 blocks); when the buffer fills, each touched
    aligned large-chunk extent is assembled.  Blocks of the extent that
    are not in the buffer must be *read* from the SSD (the RMW penalty).
    The assembled chunk is deduplicated by its combined content identity;
    unique chunks are written back whole.

    Content is tracked per 4-KB block via integer *content ids* (the
    workload layer assigns them); a large chunk's identity is the tuple of
    its block contents, so large chunking mechanically loses duplicate
    detection when neighbouring blocks differ — the second effect the
    paper describes.
    """

    def __init__(
        self, chunk_size: int = BLOCK_SIZE, buffer_blocks: int = 1024
    ) -> None:
        if chunk_size <= 0 or chunk_size % BLOCK_SIZE != 0:
            raise ValueError("chunk_size must be a multiple of 4 KB")
        if buffer_blocks < 1:
            raise ValueError("buffer must hold at least one block")
        self.blocks_per_chunk = chunk_size // BLOCK_SIZE
        self.buffer_blocks = buffer_blocks
        self.stats = RmwStats()
        # Stored state: per-block content id currently on "disk" and the
        # set of stored chunk signatures for dedup.
        self._disk: Dict[int, int] = {}
        self._stored_signatures: Dict[Tuple[int, ...], int] = {}
        self._buffer: Dict[int, int] = {}

    def write_block(self, lba: int, content_id: int) -> None:
        """Stage one 4-KB client write; flushes when the buffer fills."""
        if lba < 0:
            raise ValueError(f"negative LBA: {lba}")
        self._buffer[lba] = content_id
        self.stats.client_blocks += 1
        if len(self._buffer) >= self.buffer_blocks:
            self.flush()

    def flush(self) -> None:
        """Assemble and deduplicate every extent touched by the buffer."""
        if not self._buffer:
            return
        extents: Dict[int, Dict[int, int]] = {}
        for lba, content in self._buffer.items():
            base = lba - (lba % self.blocks_per_chunk)
            extents.setdefault(base, {})[lba] = content
        self._buffer.clear()

        for base, written in sorted(extents.items()):
            signature = self._assemble(base, written)
            if signature in self._stored_signatures:
                self.stats.dedup_hits += 1
                # Duplicate: logical remap only, no data IO.
                continue
            self._stored_signatures[signature] = base
            self.stats.chunk_writes += self.blocks_per_chunk
            for offset, content in enumerate(signature):
                self._disk[base + offset] = content

    def _assemble(self, base: int, written: Dict[int, int]) -> Tuple[int, ...]:
        """Build the chunk's content signature, fetching missing blocks."""
        signature: List[int] = []
        for lba in range(base, base + self.blocks_per_chunk):
            if lba in written:
                signature.append(written[lba])
            else:
                # Read-modify-write: the block must come from the SSD.
                self.stats.fill_reads += 1
                signature.append(self._disk.get(lba, 0))
        return tuple(signature)

    def run_trace(self, trace: Sequence[Tuple[int, int]]) -> RmwStats:
        """Process a whole trace of ``(lba, content_id)`` writes."""
        for lba, content_id in trace:
            self.write_block(lba, content_id)
        self.flush()
        return self.stats

    @property
    def dedup_ratio(self) -> float:
        """Fraction of assembled chunks removed by deduplication."""
        total_chunks = (
            self.stats.dedup_hits
            + self.stats.chunk_writes // self.blocks_per_chunk
        )
        if total_chunks == 0:
            return 0.0
        return self.stats.dedup_hits / total_chunks

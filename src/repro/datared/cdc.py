"""Content-defined (variable-size) chunking (paper §2.1.1).

The paper chooses fixed 4-KB chunking "due to high computational
overheads of variable sized chunking", citing systems that offload CDC
to GPUs/FPGAs [9, 28].  This module supplies the alternative so the
trade-off is measurable in this codebase:

* :class:`GearChunker` — Gear-hash CDC (the rolling-hash family those
  accelerators implement): a chunk boundary falls where the rolling
  hash's low bits hit zero, so boundaries follow *content* and survive
  insertions/deletions that shift byte offsets.
* :class:`CdcDedupStore` — a content-addressed store over the same
  Hash-PBN + container machinery the block engine uses: streams are
  recipes of chunk fingerprints; identical content dedupes regardless
  of alignment.

The ``bytes_scanned`` counter captures CDC's cost honestly: every input
byte passes through the rolling hash, which is exactly the
"computational overhead" the paper avoids by fixing the chunk size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .compression import Compressor, ZlibCompressor
from .container import ContainerStore
from .hash_pbn import HashPbnTable
from .hashing import fingerprint
from .lba_map import PbnAllocator

__all__ = ["GearChunker", "CdcDedupStore", "StreamStats"]


def _gear_table(seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


class GearChunker:
    """Gear-hash content-defined chunker.

    ``avg_size`` must be a power of two; the boundary mask keeps
    ``log2(avg_size)`` hash bits, giving a geometric chunk-length
    distribution with that mean, clamped to ``[min_size, max_size]``.
    """

    def __init__(
        self,
        min_size: int = 1024,
        avg_size: int = 4096,
        max_size: int = 16384,
        seed: int = 0x9E3779B9,
    ) -> None:
        if not (0 < min_size <= avg_size <= max_size):
            raise ValueError("need 0 < min <= avg <= max")
        if avg_size & (avg_size - 1):
            raise ValueError("avg_size must be a power of two")
        self.min_size = min_size
        self.avg_size = avg_size
        self.max_size = max_size
        self._gear = _gear_table(seed)
        self._mask = avg_size - 1
        #: Rolling-hash work performed, in input bytes (the CDC cost).
        self.bytes_scanned = 0

    def split(self, payload: bytes) -> List[bytes]:
        """Split ``payload`` at content-defined boundaries."""
        if not payload:
            return []
        chunks: List[bytes] = []
        start = 0
        length = len(payload)
        gear = self._gear
        mask = self._mask
        while start < length:
            end = min(start + self.max_size, length)
            cut = end
            hash_value = 0
            position = start + self.min_size
            if position >= end:
                cut = end
            else:
                # Warm the hash over the skipped minimum region's tail.
                for index in range(max(start, position - 16), position):
                    hash_value = ((hash_value << 1) + gear[payload[index]]) & (
                        (1 << 64) - 1
                    )
                for index in range(position, end):
                    hash_value = ((hash_value << 1) + gear[payload[index]]) & (
                        (1 << 64) - 1
                    )
                    if hash_value & mask == 0:
                        cut = index + 1
                        break
            self.bytes_scanned += cut - start
            chunks.append(payload[start:cut])
            start = cut
        return chunks


@dataclass
class StreamStats:
    """Reduction effectiveness of a CDC store."""

    logical_bytes: int = 0
    unique_chunks: int = 0
    duplicate_chunks: int = 0
    stored_bytes: int = 0

    @property
    def dedup_ratio(self) -> float:
        total = self.unique_chunks + self.duplicate_chunks
        return self.duplicate_chunks / total if total else 0.0

    @property
    def reduction_factor(self) -> float:
        if self.stored_bytes == 0:
            return float("inf") if self.logical_bytes else 1.0
        return self.logical_bytes / self.stored_bytes


class CdcDedupStore:
    """Content-addressed stream store over CDC chunks.

    ``write_stream(name, payload)`` chunks, dedupes and compresses;
    ``read_stream(name)`` reassembles exactly.  Reuses the block
    engine's substrates: a :class:`HashPbnTable` for fingerprints and a
    :class:`ContainerStore` for packed compressed chunks.
    """

    def __init__(
        self,
        chunker: Optional[GearChunker] = None,
        table: Optional[HashPbnTable] = None,
        compressor: Optional[Compressor] = None,
        containers: Optional[ContainerStore] = None,
    ) -> None:
        self.chunker = chunker if chunker is not None else GearChunker()
        self.table = table if table is not None else HashPbnTable(1 << 14)
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.containers = containers if containers is not None else ContainerStore()
        self.allocator = PbnAllocator()
        # PBN -> (container, offset, logical, stored); recipes hold PBNs.
        self._chunks: Dict[int, Tuple[int, int, int, int]] = {}
        self._recipes: Dict[str, List[int]] = {}
        self.stats = StreamStats()

    def write_stream(self, name: str, payload: bytes) -> StreamStats:
        """Store (or replace) a named stream; returns cumulative stats."""
        recipe: List[int] = []
        for chunk in self.chunker.split(payload):
            digest = fingerprint(chunk)
            pbn = self.table.lookup(digest)
            if pbn is None:
                compressed = self.compressor.compress(chunk)
                placement = self.containers.append(
                    compressed.payload, compressed.stored_size
                )
                pbn = self.allocator.allocate()
                self._chunks[pbn] = (
                    placement.container_id,
                    placement.offset,
                    len(chunk),
                    compressed.stored_size,
                )
                self.table.insert(digest, pbn)
                self.stats.unique_chunks += 1
                self.stats.stored_bytes += compressed.stored_size
            else:
                self.stats.duplicate_chunks += 1
            recipe.append(pbn)
            self.stats.logical_bytes += len(chunk)
        self._recipes[name] = recipe
        return self.stats

    def read_stream(self, name: str) -> bytes:
        """Reassemble a stream from its recipe."""
        recipe = self._recipes.get(name)
        if recipe is None:
            raise KeyError(f"unknown stream {name!r}")
        from .compression import CompressedChunk

        pieces: List[bytes] = []
        for pbn in recipe:
            container_id, offset, logical, stored = self._chunks[pbn]
            payload = self.containers.read(container_id, offset)
            compressed = CompressedChunk(
                payload=payload, logical_size=logical, stored_size=stored
            )
            pieces.append(self.compressor.decompress(compressed))
        return b"".join(pieces)

    def streams(self) -> List[str]:
        return sorted(self._recipes)

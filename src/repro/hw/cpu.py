"""Host-CPU cycle ledger (paper §3.2.2, Figure 5, Figure 12, Table 2).

The paper's CPU argument mirrors its memory argument: most baseline CPU
time goes to *management* (table-cache indexing, SSD IO stacks, the
unique-chunk predictor, accelerator scheduling), not data computation.
:class:`CpuLedger` attributes cycles to named tasks; projections to a
target throughput (cores required, Figure 5a) and per-task breakdowns
(Figure 5b, Table 2) are then linear arithmetic over the ledger.

Cycle costs per operation are supplied by the system layer's calibration
constants — the ledger itself is policy-free.
"""

from __future__ import annotations

from typing import Dict, Optional

from .specs import CpuSpec

__all__ = ["CpuLedger"]


class CpuLedger:
    """Per-task CPU cycle accounting for one processed workload."""

    def __init__(self, spec: Optional[CpuSpec] = None):
        self.spec = spec
        self._cycles: Dict[str, float] = {}

    def charge(self, task: str, cycles: float) -> None:
        """Attribute ``cycles`` of host CPU work to ``task``."""
        if cycles < 0:
            raise ValueError("negative cycles")
        self._cycles[task] = self._cycles.get(task, 0.0) + cycles

    # -- reporting -----------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(self._cycles.values())

    def breakdown(self) -> Dict[str, float]:
        """Per-task share of total CPU time (Figure 5b / Table 2)."""
        total = self.total_cycles
        if total == 0:
            return {task: 0.0 for task in self._cycles}
        return {
            task: cycles / total for task, cycles in sorted(self._cycles.items())
        }

    def tasks(self) -> Dict[str, float]:
        return dict(self._cycles)

    def cycles_per_byte(self, logical_bytes: float) -> float:
        """CPU cycles spent per byte of client data processed."""
        if logical_bytes <= 0:
            raise ValueError("ledger covered no client bytes")
        return self.total_cycles / logical_bytes

    def cores_required(
        self, data_throughput: float, logical_bytes: float,
        frequency_hz: Optional[float] = None,
    ) -> float:
        """Cores needed to sustain ``data_throughput`` (Figure 5a).

        Linear projection: cycles-per-client-byte × target bytes/s,
        divided by one core's cycle rate.
        """
        if frequency_hz is None:
            if self.spec is None:
                raise ValueError("no CPU spec attached")
            frequency_hz = self.spec.frequency_hz
        return (
            self.cycles_per_byte(logical_bytes) * data_throughput / frequency_hz
        )

    def utilization(self, data_throughput: float, logical_bytes: float) -> float:
        """Fraction of the socket's total cycle budget consumed."""
        if self.spec is None:
            raise ValueError("no CPU spec attached")
        required = self.cores_required(data_throughput, logical_bytes)
        return required / self.spec.cores

    def grouped_breakdown(self, groups: Dict[str, str]) -> Dict[str, float]:
        """Breakdown with tasks coalesced by ``groups[task] -> label``.

        Unlisted tasks fall into the ``"other"`` group.  Used to map the
        model's fine-grained tasks onto the paper's figure categories.
        """
        shares: Dict[str, float] = {}
        for task, share in self.breakdown().items():
            label = groups.get(task, "other")
            shares[label] = shares.get(label, 0.0) + share
        return shares

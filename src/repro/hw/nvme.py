"""NVMe queue-pair machinery (paper §6.1).

The paper's implementation section is specific about queue placement:
data-SSD submission/completion queues stay in host memory ("similar to
default system"), while the *table* SSDs' queues move into the Cache
HW-Engine, because random 4-KB metadata IO through the host software
stack is what burns CPU (Table 2's 24.7%).

This module models that mechanism explicitly rather than as a cycle
constant: bounded submission/completion rings with head/tail doorbells,
a controller that consumes submissions and produces completions against
an :class:`~repro.hw.ssd.NvmeSsd`, and per-owner doorbell counters — the
mechanistic quantity behind the "who pays for the IO stack" accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..datared.hash_pbn import BUCKET_SIZE, BucketStore
from .ssd import NvmeSsd, SsdArray

__all__ = [
    "NvmeOpcode",
    "NvmeCommand",
    "NvmeCompletion",
    "QueueFull",
    "SubmissionQueue",
    "CompletionQueue",
    "QueuePair",
    "NvmeController",
    "QueuedBucketStore",
]


class NvmeOpcode:
    READ = "read"
    WRITE = "write"


class QueueFull(RuntimeError):
    """Submission with no free slot (the host must back off)."""


@dataclass(frozen=True)
class NvmeCommand:
    """One submission-queue entry."""

    command_id: int
    opcode: str
    address: int
    data: Optional[bytes] = None  # writes carry data

    def __post_init__(self):
        if self.opcode not in (NvmeOpcode.READ, NvmeOpcode.WRITE):
            raise ValueError(f"unknown opcode {self.opcode!r}")
        if self.opcode == NvmeOpcode.WRITE and self.data is None:
            raise ValueError("write commands carry data")


@dataclass(frozen=True)
class NvmeCompletion:
    """One completion-queue entry."""

    command_id: int
    status: int  # 0 = success
    data: Optional[bytes] = None  # reads return data


class _Ring:
    """A bounded ring with head/tail indexes (the NVMe queue shape)."""

    def __init__(self, depth: int):
        if depth < 2 or depth & (depth - 1):
            raise ValueError("queue depth must be a power of two >= 2")
        self.depth = depth
        self._slots: List = [None] * depth
        self.head = 0  # consumer index
        self.tail = 0  # producer index

    @property
    def occupancy(self) -> int:
        return (self.tail - self.head) % (2 * self.depth)

    @property
    def is_full(self) -> bool:
        return self.occupancy == self.depth

    @property
    def is_empty(self) -> bool:
        return self.occupancy == 0

    def push(self, item) -> None:
        if self.is_full:
            raise QueueFull("ring full")
        self._slots[self.tail % self.depth] = item
        self.tail = (self.tail + 1) % (2 * self.depth)

    def pop(self):
        if self.is_empty:
            raise IndexError("ring empty")
        item = self._slots[self.head % self.depth]
        self._slots[self.head % self.depth] = None
        self.head = (self.head + 1) % (2 * self.depth)
        return item


class SubmissionQueue(_Ring):
    pass


class CompletionQueue(_Ring):
    pass


@dataclass
class DoorbellStats:
    """Per-owner doorbell/ops accounting — who ran the IO stack."""

    submissions: int = 0
    completions_reaped: int = 0

    @property
    def total_interactions(self) -> int:
        return self.submissions + self.completions_reaped


class QueuePair:
    """One SQ/CQ pair with an owner ("host" or "engine", §6.1)."""

    def __init__(self, depth: int = 64, owner: str = "host"):
        if owner not in ("host", "engine"):
            raise ValueError("owner must be 'host' or 'engine'")
        self.sq = SubmissionQueue(depth)
        self.cq = CompletionQueue(depth)
        self.owner = owner
        self.stats = DoorbellStats()
        self._next_id = 0

    def submit(self, opcode: str, address: int,
               data: Optional[bytes] = None) -> int:
        """Ring the submission doorbell; returns the command id."""
        command = NvmeCommand(self._next_id, opcode, address, data)
        self.sq.push(command)  # raises QueueFull when saturated
        self._next_id += 1
        self.stats.submissions += 1
        return command.command_id

    def reap(self, limit: int = 64) -> List[NvmeCompletion]:
        """Consume up to ``limit`` completions."""
        completions: List[NvmeCompletion] = []
        while not self.cq.is_empty and len(completions) < limit:
            completions.append(self.cq.pop())
            self.stats.completions_reaped += 1
        return completions


class NvmeController:
    """The device side: drains submissions, executes, completes."""

    def __init__(self, ssd: NvmeSsd, pair: QueuePair):
        self.ssd = ssd
        self.pair = pair
        self.commands_executed = 0

    def process(self, limit: int = 64) -> int:
        """Execute up to ``limit`` queued commands; returns the count."""
        executed = 0
        while not self.pair.sq.is_empty and executed < limit:
            command = self.pair.sq.pop()
            if command.opcode == NvmeOpcode.WRITE:
                assert command.data is not None
                self.ssd.write_block(command.address, command.data)
                completion = NvmeCompletion(command.command_id, 0)
            else:
                try:
                    data = self.ssd.read_block(command.address)
                    completion = NvmeCompletion(command.command_id, 0, data)
                except KeyError:
                    completion = NvmeCompletion(command.command_id, 1)
            self.pair.cq.push(completion)
            executed += 1
        self.commands_executed += executed
        return executed


class QueuedBucketStore(BucketStore):
    """A bucket store that drives table SSDs through real queue pairs.

    One queue pair + controller per drive; each bucket IO is a full
    submit → process → reap cycle, so doorbell counts (and their owner)
    fall out mechanistically.  Unwritten buckets read back empty, like
    a fresh table.
    """

    def __init__(self, array: SsdArray, depth: int = 64, owner: str = "host"):
        self.array = array
        self.owner = owner
        self.pairs = [QueuePair(depth, owner) for _ in array.drives]
        self.controllers = [
            NvmeController(drive, pair)
            for drive, pair in zip(array.drives, self.pairs)
        ]
        self._empty: Optional[bytes] = None

    def _lane(self, index: int) -> int:
        return index % len(self.pairs)

    def read_bucket(self, index: int) -> bytes:
        lane = self._lane(index)
        pair, controller = self.pairs[lane], self.controllers[lane]
        command_id = pair.submit(NvmeOpcode.READ, index)
        controller.process()
        for completion in pair.reap():
            if completion.command_id == command_id:
                if completion.status == 0:
                    assert completion.data is not None
                    return completion.data
                if self._empty is None:
                    from ..datared.hash_pbn import Bucket

                    self._empty = Bucket().to_bytes()
                return self._empty
        raise RuntimeError("completion lost")  # cannot happen synchronously

    def write_bucket(self, index: int, page: bytes) -> None:
        if len(page) != BUCKET_SIZE:
            raise ValueError("bucket pages must be 4 KB")
        lane = self._lane(index)
        pair, controller = self.pairs[lane], self.controllers[lane]
        pair.submit(NvmeOpcode.WRITE, index, page)
        controller.process()
        pair.reap()

    @property
    def doorbell_interactions(self) -> int:
        """Total stack interactions across lanes (the CPU-cost driver
        when ``owner == 'host'``)."""
        return sum(pair.stats.total_interactions for pair in self.pairs)

"""FPGA accelerator engines (paper §2.3, §5.2, §6.1).

Functional models of the three accelerator roles with byte ledgers:

* :class:`HashAccelerator` — SHA-256 cores.  The baseline hosts them on
  the reduction FPGA; FIDR moves them into the NIC (§5.1 idea a).
* :class:`CompressionEngine` — compresses batches of unique chunks and
  accumulates output until the 4-MB container threshold (§5.3 step 8).
  In FIDR the compressed data stays on the engine for a peer-to-peer SSD
  pull; only metadata goes to the host (§6.1).
* :class:`DecompressionEngine` — the read path's inverse.

Each engine tracks PCIe ingress/egress and board-DRAM traffic so the
system layer can project device-level utilizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..datared.compression import CompressedChunk, Compressor, ZlibCompressor
from ..datared.hashing import fingerprint
from .specs import FpgaSpec, VCU1525

__all__ = [
    "EngineTraffic",
    "HashAccelerator",
    "CompressionEngine",
    "DecompressionEngine",
]


@dataclass
class EngineTraffic:
    """Byte ledger for one accelerator."""

    pcie_in: float = 0.0
    pcie_out: float = 0.0
    board_dram: float = 0.0  #: reads + writes on the FPGA board DRAM
    payload_processed: float = 0.0  #: bytes of client data worked on

    def utilization(self, spec: FpgaSpec, data_throughput: float,
                    logical_bytes: float) -> dict:
        """Per-resource busy fractions at a projected client throughput."""
        if logical_bytes <= 0:
            raise ValueError("no client bytes covered")
        scale = data_throughput / logical_bytes
        return {
            "pcie": max(self.pcie_in, self.pcie_out) * scale / spec.pcie.bw,
            "board_dram": self.board_dram * scale / spec.board_dram_bw,
        }


class HashAccelerator:
    """SHA-256 hashing cores with line-rate capacity accounting."""

    def __init__(self, hash_bw: float, spec: Optional[FpgaSpec] = None,
                 name: str = "hash-engine"):
        if hash_bw <= 0:
            raise ValueError("hash bandwidth must be positive")
        self.hash_bw = hash_bw
        self.spec = spec if spec is not None else VCU1525
        self.name = name
        self.traffic = EngineTraffic()
        self.chunks_hashed = 0

    def hash_batch(self, chunks: List[bytes]) -> List[bytes]:
        """Fingerprint a batch; charges DRAM for staging the batch."""
        digests = []
        for data in chunks:
            digests.append(fingerprint(data))
            self.traffic.payload_processed += len(data)
            self.traffic.board_dram += len(data)  # staged once on board
        self.chunks_hashed += len(chunks)
        return digests

    def hashing_time(self, num_bytes: float) -> float:
        """Seconds the cores need for ``num_bytes`` of input."""
        return num_bytes / self.hash_bw


class CompressionEngine:
    """Batch compressor that holds output for a peer-to-peer SSD pull."""

    def __init__(
        self,
        compressor: Optional[Compressor] = None,
        batch_threshold: int = 4 * 1024 * 1024,
        compress_bw: float = 12.8e9,
        spec: Optional[FpgaSpec] = None,
        name: str = "compression-engine",
    ):
        if batch_threshold <= 0:
            raise ValueError("batch threshold must be positive")
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.batch_threshold = batch_threshold
        self.compress_bw = compress_bw
        self.spec = spec if spec is not None else VCU1525
        self.name = name
        self.traffic = EngineTraffic()
        self._pending: List[CompressedChunk] = []
        self._pending_bytes = 0
        self.batches_completed = 0

    def compress_chunk(self, data: bytes) -> Tuple[CompressedChunk, bool]:
        """Compress one unique chunk; returns (result, batch_ready).

        ``batch_ready`` is True when accumulated output crossed the 4-MB
        threshold — the moment the engine ships *metadata* to the host so
        software can arrange the SSD's peer-to-peer pull (§5.3 step 8).
        """
        compressed = self.compressor.compress(data)
        self.traffic.pcie_in += len(data)
        self.traffic.payload_processed += len(data)
        self.traffic.board_dram += len(data) + compressed.stored_size
        self._pending.append(compressed)
        self._pending_bytes += compressed.stored_size
        if self._pending_bytes >= self.batch_threshold:
            return compressed, True
        return compressed, False

    def take_batch(self) -> List[CompressedChunk]:
        """Hand the accumulated batch to the SSD pull (engine egress)."""
        batch, self._pending = self._pending, []
        self.traffic.pcie_out += self._pending_bytes
        self.traffic.board_dram += self._pending_bytes  # read for DMA
        self._pending_bytes = 0
        if batch:
            self.batches_completed += 1
        return batch

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def compression_time(self, num_bytes: float) -> float:
        return num_bytes / self.compress_bw


class DecompressionEngine:
    """The read path's decompressor (FIDR: SSD→engine→NIC, all P2P)."""

    def __init__(
        self,
        compressor: Optional[Compressor] = None,
        decompress_bw: float = 12.8e9,
        spec: Optional[FpgaSpec] = None,
        name: str = "decompression-engine",
    ):
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.decompress_bw = decompress_bw
        self.spec = spec if spec is not None else VCU1525
        self.name = name
        self.traffic = EngineTraffic()
        self.chunks_decompressed = 0

    def decompress_chunk(self, chunk: CompressedChunk) -> bytes:
        data = self.compressor.decompress(chunk)
        self.traffic.pcie_in += chunk.stored_size
        self.traffic.pcie_out += len(data)
        self.traffic.board_dram += chunk.stored_size + len(data)
        self.traffic.payload_processed += len(data)
        self.chunks_decompressed += 1
        return data

    def decompression_time(self, num_bytes: float) -> float:
        return num_bytes / self.decompress_bw

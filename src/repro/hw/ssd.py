"""NVMe SSD models (paper §2.1.3, §6.1).

Two roles:

* **data SSDs** — receive sealed 4-MB containers sequentially and serve
  compressed-chunk reads.  Their NVMe queues stay in host memory in both
  systems (§6.1: sequential container writes have tolerable overhead).
* **table SSDs** — hold the full Hash-PBN table as 4-KB buckets and serve
  the cache's random fetches/flushes.  The baseline drives them from the
  host IO stack (a large CPU cost, Table 2); FIDR moves their queues into
  the Cache HW-Engine (§6.1).

:class:`NvmeSsd` is both a functional byte store and an IO ledger;
:class:`SsdBucketStore` adapts an SSD (array) to the
:class:`~repro.datared.hash_pbn.BucketStore` interface so the functional
table/cache stack runs against "real" table SSDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..datared.hash_pbn import BUCKET_SIZE, BucketStore
from .specs import SsdSpec, SAMSUNG_970_PRO

__all__ = ["IoStats", "NvmeSsd", "SsdArray", "SsdBucketStore"]


@dataclass
class IoStats:
    """Cumulative IO issued to one SSD (or array)."""

    read_ops: int = 0
    write_ops: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    @property
    def total_ops(self) -> int:
        return self.read_ops + self.write_ops

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def merge(self, other: "IoStats") -> "IoStats":
        return IoStats(
            read_ops=self.read_ops + other.read_ops,
            write_ops=self.write_ops + other.write_ops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
        )


class NvmeSsd:
    """Functional block store + IO ledger for one NVMe drive."""

    def __init__(self, spec: Optional[SsdSpec] = None, name: str = "ssd"):
        self.spec = spec if spec is not None else SAMSUNG_970_PRO
        self.name = name
        self.stats = IoStats()
        self._blocks: Dict[int, bytes] = {}
        self.bytes_stored = 0

    # -- functional IO -------------------------------------------------------------
    def write_block(self, address: int, data: bytes) -> None:
        if address < 0:
            raise ValueError("negative address")
        if not data:
            raise ValueError("empty write")
        previous = self._blocks.get(address)
        if previous is not None:
            self.bytes_stored -= len(previous)
        self._blocks[address] = data
        self.bytes_stored += len(data)
        if self.bytes_stored > self.spec.capacity:
            raise RuntimeError(f"{self.name}: capacity exceeded")
        self.stats.write_ops += 1
        self.stats.bytes_written += len(data)

    def read_block(self, address: int) -> bytes:
        data = self._blocks.get(address)
        if data is None:
            raise KeyError(f"{self.name}: nothing stored at {address}")
        self.stats.read_ops += 1
        self.stats.bytes_read += len(data)
        return data

    def trim(self, address: int) -> None:
        data = self._blocks.pop(address, None)
        if data is not None:
            self.bytes_stored -= len(data)

    # -- accounting-only IO (performance paths that skip content) ------------------
    def account_read(self, num_bytes: float, ops: int = 1) -> None:
        self.stats.read_ops += ops
        self.stats.bytes_read += num_bytes

    def account_write(self, num_bytes: float, ops: int = 1) -> None:
        self.stats.write_ops += ops
        self.stats.bytes_written += num_bytes

    # -- timing -----------------------------------------------------------------------
    def read_service_time(self, num_bytes: float) -> float:
        """Seconds for one read: access latency + transfer time."""
        return self.spec.read_latency_s + num_bytes / self.spec.read_bw

    def write_service_time(self, num_bytes: float) -> float:
        return self.spec.write_latency_s + num_bytes / self.spec.write_bw

    def utilization(self, data_throughput: float, logical_bytes: float) -> float:
        """Busy fraction at a projected client throughput (BW terms)."""
        if logical_bytes <= 0:
            raise ValueError("no client bytes covered")
        scale = data_throughput / logical_bytes
        return (
            self.stats.bytes_read * scale / self.spec.read_bw
            + self.stats.bytes_written * scale / self.spec.write_bw
        )


class SsdArray:
    """A stripe of identical SSDs with round-robin block placement."""

    def __init__(self, count: int, spec: Optional[SsdSpec] = None, name: str = "array"):
        if count < 1:
            raise ValueError("need at least one SSD")
        self.drives = [
            NvmeSsd(spec=spec, name=f"{name}[{index}]") for index in range(count)
        ]

    def _drive_for(self, address: int) -> NvmeSsd:
        return self.drives[address % len(self.drives)]

    def write_block(self, address: int, data: bytes) -> None:
        self._drive_for(address).write_block(address, data)

    def read_block(self, address: int) -> bytes:
        return self._drive_for(address).read_block(address)

    @property
    def stats(self) -> IoStats:
        combined = IoStats()
        for drive in self.drives:
            combined = combined.merge(drive.stats)
        return combined

    @property
    def read_bw(self) -> float:
        return sum(drive.spec.read_bw for drive in self.drives)

    @property
    def write_bw(self) -> float:
        return sum(drive.spec.write_bw for drive in self.drives)

    def __len__(self) -> int:
        return len(self.drives)


class SsdBucketStore(BucketStore):
    """Hash-PBN bucket pages stored on a table-SSD array.

    ``queue_owner`` records who pays the NVMe submission cost: the host
    IO stack in the baseline, the Cache HW-Engine in FIDR (§6.1).  The
    system layers read it when charging CPU cycles.
    """

    def __init__(self, array: SsdArray, queue_owner: str = "host"):
        if queue_owner not in ("host", "engine"):
            raise ValueError("queue_owner must be 'host' or 'engine'")
        self.array = array
        self.queue_owner = queue_owner
        self._empty = None  # lazily built empty bucket page

    def read_bucket(self, index: int) -> bytes:
        try:
            return self.array.read_block(index)
        except KeyError:
            # Never-written buckets read back empty, like a fresh table.
            if self._empty is None:
                from ..datared.hash_pbn import Bucket

                self._empty = Bucket().to_bytes()
            return self._empty

    def write_bucket(self, index: int, page: bytes) -> None:
        if len(page) != BUCKET_SIZE:
            raise ValueError("bucket pages must be 4 KB")
        self.array.write_block(index, page)

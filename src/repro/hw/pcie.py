"""PCIe topology with peer-to-peer routing (paper §5.1, §5.6).

FIDR's second idea is routing data NIC→Compression-Engine→data-SSD
directly over PCIe switches, bypassing host memory.  This module models
the socket's PCIe fabric as a two-level tree:

    host/root complex ── switch₀ ── {NIC, Compression Engine, SSDs…}
                      └─ switch₁ ── {…}

Transfers between two devices under the *same* switch consume only their
endpoint links and the switch (peer-to-peer); transfers crossing switches
or touching the host also consume root-complex bandwidth.  §5.6's design
rule — group each NIC/engine/SSD set under one switch — exists precisely
to keep reduction traffic off the root complex.

The topology is a byte ledger (like :class:`~repro.hw.memory.MemoryLedger`);
link utilizations at a target throughput are linear projections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .specs import PcieLinkSpec, PCIE3_X16

__all__ = ["PcieDevice", "PcieTopology", "HOST"]

#: Reserved endpoint name for the host (root complex / DRAM side).
HOST = "host"


@dataclass
class PcieDevice:
    """An endpoint attached to a switch port."""

    name: str
    link: PcieLinkSpec
    switch: int

    bytes_in: float = 0.0  #: toward the device
    bytes_out: float = 0.0  #: from the device

    @property
    def total_bytes(self) -> float:
        return self.bytes_in + self.bytes_out


class PcieTopology:
    """Two-level PCIe fabric with per-link and root-complex ledgers."""

    def __init__(
        self,
        num_switches: int = 1,
        root_complex_bw: float = 128e9,
        switch_uplink: Optional[PcieLinkSpec] = None,
    ):
        if num_switches < 1:
            raise ValueError("need at least one switch")
        self.num_switches = num_switches
        self.root_complex_bw = root_complex_bw
        self.switch_uplink = switch_uplink if switch_uplink is not None else PCIE3_X16
        self._devices: Dict[str, PcieDevice] = {}
        self.root_complex_bytes = 0.0
        self._switch_bytes = [0.0] * num_switches
        self._uplink_bytes = [0.0] * num_switches
        self.p2p_bytes = 0.0  #: bytes that never touched the root complex

    # -- construction -----------------------------------------------------------
    def attach(self, name: str, link: Optional[PcieLinkSpec] = None,
               switch: int = 0) -> PcieDevice:
        """Attach a device to a switch port."""
        if name == HOST:
            raise ValueError(f"{HOST!r} is reserved for the root complex")
        if name in self._devices:
            raise ValueError(f"device {name!r} already attached")
        if not 0 <= switch < self.num_switches:
            raise ValueError(f"no switch {switch}")
        device = PcieDevice(
            name=name, link=link if link is not None else PCIE3_X16, switch=switch
        )
        self._devices[name] = device
        return device

    def device(self, name: str) -> PcieDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"unknown device {name!r}") from None

    # -- transfers ------------------------------------------------------------------
    def transfer(self, src: str, dst: str, num_bytes: float) -> None:
        """Account ``num_bytes`` moving from ``src`` to ``dst``.

        Either endpoint may be :data:`HOST`.  Device↔device transfers
        under one switch are peer-to-peer; everything else crosses the
        root complex.
        """
        if num_bytes < 0:
            raise ValueError("negative transfer")
        if src == dst:
            raise ValueError("source and destination are the same endpoint")
        src_dev = None if src == HOST else self.device(src)
        dst_dev = None if dst == HOST else self.device(dst)

        if src_dev is not None:
            src_dev.bytes_out += num_bytes
            self._switch_bytes[src_dev.switch] += num_bytes
        if dst_dev is not None:
            dst_dev.bytes_in += num_bytes
            self._switch_bytes[dst_dev.switch] += num_bytes

        if src_dev is not None and dst_dev is not None:
            if src_dev.switch == dst_dev.switch:
                self.p2p_bytes += num_bytes
                return
            # Cross-switch: both uplinks and the root complex.
            self._uplink_bytes[src_dev.switch] += num_bytes
            self._uplink_bytes[dst_dev.switch] += num_bytes
            self.root_complex_bytes += num_bytes
            return

        # Host on one side: one uplink plus the root complex.
        endpoint = src_dev if src_dev is not None else dst_dev
        assert endpoint is not None
        self._uplink_bytes[endpoint.switch] += num_bytes
        self.root_complex_bytes += num_bytes

    # -- reporting --------------------------------------------------------------------
    @property
    def total_bytes(self) -> float:
        return sum(device.total_bytes for device in self._devices.values())

    def device_utilization(
        self, name: str, data_throughput: float, logical_bytes: float
    ) -> float:
        """Device-link utilization at a projected client throughput.

        The link is full-duplex; the busier direction binds.
        """
        if logical_bytes <= 0:
            raise ValueError("no client bytes covered")
        device = self.device(name)
        busier = max(device.bytes_in, device.bytes_out)
        return busier / logical_bytes * data_throughput / device.link.bw

    def root_complex_utilization(
        self, data_throughput: float, logical_bytes: float
    ) -> float:
        if logical_bytes <= 0:
            raise ValueError("no client bytes covered")
        demand = self.root_complex_bytes / logical_bytes * data_throughput
        return demand / self.root_complex_bw

    def p2p_fraction(self) -> float:
        """Share of device↔device traffic that stayed peer-to-peer."""
        moved = self.p2p_bytes + self.root_complex_bytes
        return self.p2p_bytes / moved if moved else 0.0

    def devices(self) -> List[PcieDevice]:
        return list(self._devices.values())

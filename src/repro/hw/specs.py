"""Hardware specifications used throughout the model (paper §3.2, §7.1).

Every capacity/bandwidth constant that enters a result lives here as a
named spec with the paper's (or vendor's) source noted, so calibration is
auditable.  Bandwidths are bytes/s, capacities bytes, decimal units
(1 GB/s = 1e9 B/s) to match the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
__all__ = [
    "CpuSpec",
    "DramSpec",
    "PcieLinkSpec",
    "SsdSpec",
    "FpgaSpec",
    "NicSpec",
    "ServerSpec",
    "XEON_E5_2650V4",
    "XEON_E5_4669V4",
    "HIGH_END_SOCKET_DRAM",
    "PROTOTYPE_DRAM",
    "PCIE3_X16",
    "PCIE3_X4",
    "SOCKET_PCIE_1TBPS",
    "SAMSUNG_970_PRO",
    "TABLE_SSD",
    "VCU1525",
    "FIDR_NIC_64G",
    "PROTOTYPE_SERVER",
    "TARGET_SERVER",
]

GB = 1_000_000_000
GIB = 1 << 30


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket."""

    name: str
    cores: int
    frequency_hz: float

    @property
    def total_cycles_per_s(self) -> float:
        return self.cores * self.frequency_hz


@dataclass(frozen=True)
class DramSpec:
    """One socket's memory subsystem."""

    name: str
    channels: int
    bw_per_channel: float  #: bytes/s
    capacity: int  #: bytes

    @property
    def peak_bw(self) -> float:
        return self.channels * self.bw_per_channel


@dataclass(frozen=True)
class PcieLinkSpec:
    """One PCIe link (per direction)."""

    name: str
    lanes: int
    bw_per_lane: float  #: usable bytes/s per lane per direction

    @property
    def bw(self) -> float:
        return self.lanes * self.bw_per_lane


@dataclass(frozen=True)
class SsdSpec:
    """One NVMe SSD."""

    name: str
    capacity: int
    read_bw: float
    write_bw: float
    read_iops: float
    write_iops: float
    read_latency_s: float
    write_latency_s: float


@dataclass(frozen=True)
class FpgaSpec:
    """One FPGA accelerator board."""

    name: str
    luts: int
    flip_flops: int
    brams: int  #: 36-Kb block RAMs
    urams: int  #: 288-Kb UltraRAMs
    board_dram_capacity: int
    board_dram_bw: float
    clock_hz: float
    pcie: PcieLinkSpec


@dataclass(frozen=True)
class NicSpec:
    """One (possibly FPGA-based) NIC."""

    name: str
    network_bw: float  #: bytes/s of client-facing bandwidth
    buffer_capacity: int  #: on-NIC buffering for client requests
    hash_bw: float  #: SHA-256 throughput of the in-NIC hash cores


@dataclass(frozen=True)
class ServerSpec:
    """A complete single-socket storage server configuration."""

    name: str
    cpu: CpuSpec
    dram: DramSpec
    socket_pcie_bw: float  #: total PCIe IO bandwidth of the socket
    nic: NicSpec
    fpga: FpgaSpec
    data_ssd: SsdSpec
    table_ssd: SsdSpec
    num_data_ssds: int
    num_table_ssds: int


# ---------------------------------------------------------------------------
# Named instances
# ---------------------------------------------------------------------------

#: The prototype server's CPU (§7.1): Intel E5-2650 v4, 12C @ 2.2 GHz.
XEON_E5_2650V4 = CpuSpec(name="Intel Xeon E5-2650 v4", cores=12, frequency_hz=2.2e9)

#: The projection target's CPU (§7.5, [20]): E5-4669 v4, 22C @ 2.2 GHz.
XEON_E5_4669V4 = CpuSpec(name="Intel Xeon E5-4669 v4", cores=22, frequency_hz=2.2e9)

#: High-end socket memory (§3.2.1): 8 channels, 170 GB/s theoretical [7].
HIGH_END_SOCKET_DRAM = DramSpec(
    name="8-channel DDR4 (EPYC-class)",
    channels=8,
    bw_per_channel=21.25 * GB,
    capacity=512 * GIB,
)

#: The prototype's 4-channel socket (E5-2650 v4: DDR4-2400).
PROTOTYPE_DRAM = DramSpec(
    name="4-channel DDR4-2400",
    channels=4,
    bw_per_channel=19.2 * GB,
    capacity=128 * GIB,
)

#: PCIe gen3 x16: ~12.8 GB/s usable per direction after encoding/DLLP.
PCIE3_X16 = PcieLinkSpec(name="PCIe 3.0 x16", lanes=16, bw_per_lane=0.8 * GB)

PCIE3_X4 = PcieLinkSpec(name="PCIe 3.0 x4", lanes=4, bw_per_lane=0.8 * GB)

#: "Maximum PCIe BW supported in a CPU socket is 1 Tbps" (§1 footnote):
#: 128 GB/s of socket IO, e.g. AMD EPYC's 128 lanes [7].
SOCKET_PCIE_1TBPS = 128 * GB

#: Samsung 970 Pro 1 TB (§7.1 prototype data/table SSDs).
SAMSUNG_970_PRO = SsdSpec(
    name="Samsung 970 Pro 1TB",
    capacity=1000 * GB,
    read_bw=3.5 * GB,
    write_bw=2.7 * GB,
    read_iops=500_000,
    write_iops=500_000,
    read_latency_s=80e-6,
    write_latency_s=30e-6,
)

#: Table SSDs are the same drives dedicated to metadata; the Cache
#: HW-Engine evaluation connects them at 2 GB/s (Table 5 "Table SSD BW").
TABLE_SSD = replace(SAMSUNG_970_PRO, name="Table SSD (970 Pro)", read_bw=2.0 * GB)

#: Xilinx VCU1525 (§4.3, [47]): VU9P fabric, 64 GB DDR4, 16 GB/s PCIe.
#: LUT/FF/BRAM/URAM totals are the VU9P's, matching the utilization
#: percentages in Tables 4-5 (e.g. 290 K LUTs = 24.5% → ~1182 K total).
VCU1525 = FpgaSpec(
    name="Xilinx VCU1525 (VU9P)",
    luts=1_182_000,
    flip_flops=2_364_000,
    brams=2_160,
    urams=960,
    board_dram_capacity=64 * GIB,
    board_dram_bw=19.2 * GB,  # one DDR4-2400 channel active in the design
    clock_hz=250e6,
    pcie=PCIE3_X16,
)

#: The prototype FIDR NIC (§6.2): 64 Gbps target, two 32-Gbps TCP
#: offload engines, in-NIC buffering in board DRAM, SHA-256 cores sized
#: to line rate.
FIDR_NIC_64G = NicSpec(
    name="FIDR NIC (VCU1525, 64 Gbps)",
    network_bw=8 * GB,
    buffer_capacity=4 * GIB,
    hash_bw=8 * GB,
)

#: The measurement prototype (§7.1): one active E5-2650 v4 socket, four
#: 970 Pros (2 data + 2 table), three VCU1525s.
PROTOTYPE_SERVER = ServerSpec(
    name="FIDR prototype",
    cpu=XEON_E5_2650V4,
    dram=PROTOTYPE_DRAM,
    socket_pcie_bw=40 * GB,
    nic=FIDR_NIC_64G,
    fpga=VCU1525,
    data_ssd=SAMSUNG_970_PRO,
    table_ssd=TABLE_SSD,
    num_data_ssds=2,
    num_table_ssds=2,
)

#: The scaling target (§3.2): a high-end socket with 1-Tbps PCIe,
#: 170 GB/s DRAM, a 22-core Xeon, and enough devices to feed 75 GB/s.
TARGET_SERVER = ServerSpec(
    name="75 GB/s target socket",
    cpu=XEON_E5_4669V4,
    dram=HIGH_END_SOCKET_DRAM,
    socket_pcie_bw=SOCKET_PCIE_1TBPS,
    nic=replace(
        FIDR_NIC_64G, name="FIDR NIC array (10x)", network_bw=80 * GB,
        hash_bw=80 * GB,
    ),
    fpga=VCU1525,
    data_ssd=SAMSUNG_970_PRO,
    table_ssd=TABLE_SSD,
    num_data_ssds=16,
    num_table_ssds=8,
)

"""FPGA resource estimation (paper §7.7, Tables 4 and 5).

Resource counts are *computed* from module parametrics rather than copied
from the paper: each hardware block has a footprint formula (per SHA
core, per tree pipeline level, per NVMe controller, …) and the tree's
memory need is derived from its node geometry.  The per-unit constants
are calibrated once against the paper's prototype (see the fit notes on
each constant); the interesting structure — how resources scale with
line rate, read/write mix, and cache size — then falls out.

Tree geometry follows §6.3: non-leaf nodes keep 2 keys (3-way fan-out,
after Yang & Prasanna [48]) and live in on-chip memory; the leaf level
holds 16 keys per node and lives in FPGA-board DRAM.  Widening only the
leaf is what lets a 13-level on-chip tree index a ~100-GB cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .specs import FpgaSpec, VCU1525

__all__ = [
    "ResourceCount",
    "TreeGeometry",
    "estimate_nic_resources",
    "estimate_cache_engine_resources",
]

_BRAM_BITS = 36 * 1024  #: one 36-Kb block RAM
_URAM_BITS = 288 * 1024  #: one UltraRAM block


@dataclass(frozen=True)
class ResourceCount:
    """LUT/FF/BRAM/URAM usage of one design."""

    luts: int
    flip_flops: int
    brams: int
    urams: int = 0

    def utilization(self, spec: Optional[FpgaSpec] = None) -> Dict[str, float]:
        spec = spec if spec is not None else VCU1525
        shares = {
            "luts": self.luts / spec.luts,
            "flip_flops": self.flip_flops / spec.flip_flops,
            "brams": self.brams / spec.brams,
        }
        if self.urams:
            shares["urams"] = self.urams / spec.urams
        return shares

    def __add__(self, other: "ResourceCount") -> "ResourceCount":
        return ResourceCount(
            luts=self.luts + other.luts,
            flip_flops=self.flip_flops + other.flip_flops,
            brams=self.brams + other.brams,
            urams=self.urams + other.urams,
        )


# ---------------------------------------------------------------------------
# FIDR NIC (Table 4)
# ---------------------------------------------------------------------------

#: Basic NIC + TCP offload engines (two 32-Gbps instances, §6.2).  Fixed
#: function; Table 4 reports it at 166 K LUTs / 169 K FFs / 1024 BRAMs.
_NIC_BASE = ResourceCount(luts=166_000, flip_flops=169_000, brams=1024)

#: One SHA-256 core (opencores sha256_hash_core [13]) plus its share of
#: the data path.  Calibrated so 16 cores ≈ the write-only/mixed LUT
#: delta in Table 4 (125 K − 84 K ≈ doubling 8→16 cores).
_SHA_CORE = ResourceCount(luts=5_125, flip_flops=5_125, brams=3)

#: Per-core sustained SHA-256 throughput at 250 MHz (64-byte block per
#: ~68 cycles ≈ 0.23 GB/s; wider unrolled core in the prototype ≈ 0.5).
_SHA_CORE_BW = 0.5e9

#: Buffer manager, batch scheduler, DMA glue — rate-independent.
_NIC_REDUCTION_BASE = ResourceCount(luts=43_000, flip_flops=46_000, brams=47)


def estimate_nic_resources(
    line_rate: float = 8e9,
    write_fraction: float = 1.0,
    spec: Optional[FpgaSpec] = None,
) -> Dict[str, ResourceCount]:
    """FIDR-NIC resources at a client line rate and read/write mix.

    Only *written* bytes are hashed, so a 50/50 mixed workload needs half
    the SHA cores of a write-only one — the effect Table 4 shows.
    Returns the Table-4 rows: reduction support, base NIC, and total.
    """
    if line_rate <= 0:
        raise ValueError("line rate must be positive")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write fraction must be in [0, 1]")
    hash_bw_needed = line_rate * write_fraction
    cores = max(1, math.ceil(hash_bw_needed / _SHA_CORE_BW))
    reduction = _NIC_REDUCTION_BASE + ResourceCount(
        luts=_SHA_CORE.luts * cores,
        flip_flops=_SHA_CORE.flip_flops * cores,
        brams=_SHA_CORE.brams * cores,
    )
    return {
        "data_reduction_support": reduction,
        "basic_nic_tcp_offload": _NIC_BASE,
        "total": reduction + _NIC_BASE,
    }


# ---------------------------------------------------------------------------
# Cache HW-Engine (Table 5)
# ---------------------------------------------------------------------------

#: Non-leaf node fan-out (2 keys → 3 children, per [48]).
_NONLEAF_FANOUT = 3

#: Keys per leaf node (§6.3's widened leaf).
_LEAF_KEYS = 16

#: Bits per on-chip tree node: 2 keys x 8 B, 3 child pointers x 48 bits,
#: 8 bits of state/valid flags.
_NONLEAF_NODE_BITS = 2 * 64 + 3 * 48 + 8

#: Cache lines are 4-KB table buckets.
_CACHE_LINE_BYTES = 4096


@dataclass(frozen=True)
class TreeGeometry:
    """Derived geometry of a cache-indexing tree."""

    cache_bytes: int
    cache_lines: int
    leaf_nodes: int
    on_chip_levels: int
    off_chip_levels: int  #: always 1 — the leaf level in board DRAM
    on_chip_bits: int

    @property
    def total_levels(self) -> int:
        return self.on_chip_levels + self.off_chip_levels


def tree_geometry(cache_bytes: int) -> TreeGeometry:
    """Size the §6.3 tree for a table cache of ``cache_bytes``.

    Reproduces Table 5's level counts: a 410-MB cache needs 8 on-chip
    levels + the DRAM leaf; a ~100-GB cache needs 13 + 1.
    """
    if cache_bytes <= 0:
        raise ValueError("cache size must be positive")
    lines = max(1, cache_bytes // _CACHE_LINE_BYTES)
    leaves = max(1, math.ceil(lines / _LEAF_KEYS))
    on_chip_levels = max(1, math.ceil(math.log(leaves, _NONLEAF_FANOUT)))
    # Complete 3-ary tree above the leaves.
    nonleaf_nodes = (_NONLEAF_FANOUT**on_chip_levels - 1) // (_NONLEAF_FANOUT - 1)
    return TreeGeometry(
        cache_bytes=cache_bytes,
        cache_lines=lines,
        leaf_nodes=leaves,
        on_chip_levels=on_chip_levels,
        off_chip_levels=1,
        on_chip_bits=nonleaf_nodes * _NONLEAF_NODE_BITS,
    )


#: Engine control plane: free-list manager, DMA, host mailboxes
#: (calibrated to Table 5's medium tree: 316 K LUTs at 9 levels).
_ENGINE_BASE_LUTS = 258_000
_ENGINE_BASE_FFS = 95_000
_ENGINE_BASE_BRAMS = 104

#: Per pipeline level: one search stage + one update stage + crash/replay
#: bookkeeping (fit: (348 − 316) K LUTs across the 13−8 extra levels).
_PER_LEVEL_LUTS = 6_400
_PER_LEVEL_FFS = 5_500
_PER_LEVEL_BRAMS = 8

#: NVMe controller pair for the table SSDs (Table 5 "All" minus the
#: tree-only column: ~4 K LUTs, 16 BRAMs of queue memory).
_NVME_CTRL = ResourceCount(luts=4_000, flip_flops=6_000, brams=16)

#: On-chip memory placement: upper tree levels occupy BRAM up to this
#: budget; deeper (larger) levels spill into URAM, reproducing the large
#: tree's heavy URAM use in Table 5.
_BRAM_TREE_BUDGET_BITS = 230 * _BRAM_BITS


def estimate_cache_engine_resources(
    cache_bytes: int,
    with_table_ssd: bool = True,
    spec: Optional[FpgaSpec] = None,
) -> Dict[str, object]:
    """Cache HW-Engine resources for a given table-cache size.

    Returns the geometry and a :class:`ResourceCount`, i.e. one Table-5
    column.
    """
    geometry = tree_geometry(cache_bytes)
    levels = geometry.total_levels
    luts = _ENGINE_BASE_LUTS + _PER_LEVEL_LUTS * levels
    ffs = _ENGINE_BASE_FFS + _PER_LEVEL_FFS * levels
    brams = _ENGINE_BASE_BRAMS + _PER_LEVEL_BRAMS * levels
    urams = 0

    # Place node storage level by level: small upper levels fit the BRAM
    # budget; the exponentially larger lower levels spill to UltraRAM
    # (Table 5's 78.8% URAM for the ~100-GB tree).
    bram_bits = 0
    uram_bits = 0
    for level in range(1, geometry.on_chip_levels + 1):
        level_bits = _NONLEAF_FANOUT ** (level - 1) * _NONLEAF_NODE_BITS
        if bram_bits + level_bits <= _BRAM_TREE_BUDGET_BITS:
            bram_bits += level_bits
        else:
            uram_bits += level_bits
    brams += math.ceil(bram_bits / _BRAM_BITS)
    if uram_bits:
        urams = math.ceil(uram_bits / _URAM_BITS)

    total = ResourceCount(luts=luts, flip_flops=ffs, brams=brams, urams=urams)
    if with_table_ssd:
        total = total + _NVME_CTRL
    return {"geometry": geometry, "resources": total}

"""NIC models (paper §5.4, Figure 7).

:class:`BaselineNic` is a plain high-performance NIC: every client byte
is DMA'd straight into host memory (Figure 2's first hop) — it only needs
a byte ledger.

:class:`FidrNic` adds the paper's data-reduction layer:

* **in-NIC buffering** — write requests (data + LBA) stay in NIC board
  DRAM; the client gets an immediate ack (§7.6.1's latency hiding relies
  on this buffer being battery-backed),
* **in-NIC hashing** — SHA-256 over buffered chunks, shipping only the
  32-byte digests to the host (§5.1 idea a),
* **read LBA lookup** — incoming reads first check the write buffer and
  are served NIC-locally on a hit (Figure 7's LBA Lookup module),
* **compression scheduling** — once the host returns uniqueness flags,
  the NIC batches *only unique* chunks for the Compression Engine.

All flows are functional (real bytes, real digests) plus ledgered (NIC
DRAM traffic, network bytes, PCIe bytes) for the performance model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..datared.hashing import SHA256, Fingerprinter
from .specs import NicSpec, FIDR_NIC_64G

__all__ = ["NicTraffic", "BaselineNic", "FidrNic", "BufferedWrite"]


@dataclass
class NicTraffic:
    """Byte ledger for one NIC."""

    network_rx: float = 0.0
    network_tx: float = 0.0
    pcie_to_host: float = 0.0
    pcie_from_host: float = 0.0
    nic_dram: float = 0.0  #: board-DRAM reads+writes for buffering
    hashed_bytes: float = 0.0


@dataclass(frozen=True)
class BufferedWrite:
    """One chunk staged in the FIDR NIC's write buffer."""

    lba: int
    data: bytes
    digest: bytes


class BaselineNic:
    """Plain NIC: client data goes straight to host memory."""

    def __init__(self, spec: Optional[NicSpec] = None, name: str = "nic"):
        self.spec = spec if spec is not None else FIDR_NIC_64G
        self.name = name
        self.traffic = NicTraffic()

    def receive(self, num_bytes: float) -> None:
        """Client → NIC → host DRAM."""
        self.traffic.network_rx += num_bytes
        self.traffic.pcie_to_host += num_bytes

    def send(self, num_bytes: float) -> None:
        """Host DRAM → NIC → client."""
        self.traffic.pcie_from_host += num_bytes
        self.traffic.network_tx += num_bytes


class FidrNic:
    """FPGA NIC with in-NIC buffering, hashing, and batch scheduling."""

    def __init__(
        self,
        spec: Optional[NicSpec] = None,
        name: str = "fidr-nic",
        fingerprinter: Optional[Fingerprinter] = None,
    ):
        """``fingerprinter`` is the hash core this NIC models (default
        SHA-256, the paper's RTL core).  It must match the engine the
        digests are shipped to — FIDR wires the engine's own
        fingerprinter in — or every buffered digest would miss."""
        self.spec = spec if spec is not None else FIDR_NIC_64G
        self.name = name
        self.fingerprinter = fingerprinter if fingerprinter is not None else SHA256
        self.traffic = NicTraffic()
        # Write buffer: LBA → buffered chunk, insertion-ordered so the
        # oldest batch drains first.  OrderedDict gives O(1) lookup for
        # the read path's LBA Lookup module.
        self._buffer: "OrderedDict[int, BufferedWrite]" = OrderedDict()
        self._buffered_bytes = 0
        self.read_buffer_hits = 0
        self.read_buffer_misses = 0

    # -- write path ------------------------------------------------------------------
    def buffer_write(self, lba: int, data: bytes) -> None:
        """Stage one chunk (client write) in NIC DRAM; ack is immediate."""
        if not data:
            raise ValueError("empty chunk")
        self.traffic.network_rx += len(data)
        previous = self._buffer.pop(lba, None)
        if previous is not None:
            self._buffered_bytes -= len(previous.data)
        if self._buffered_bytes + len(data) > self.spec.buffer_capacity:
            raise OverflowError(
                f"{self.name}: write buffer overflow "
                f"({self._buffered_bytes + len(data)} bytes)"
            )
        digest = self.fingerprinter.digest(data)
        self.traffic.hashed_bytes += len(data)
        self.traffic.nic_dram += len(data)  # buffered once on arrival
        self._buffer[lba] = BufferedWrite(lba=lba, data=data, digest=digest)
        self._buffered_bytes += len(data)

    def pending_chunks(self) -> int:
        return len(self._buffer)

    def ship_digests(self, batch_size: int) -> List[BufferedWrite]:
        """Send the oldest ``batch_size`` chunks' digests to the host.

        Only 32-byte digests cross PCIe here — the chunks themselves stay
        buffered (the memory-bandwidth win of §5.1).
        """
        batch = list(self._buffer.values())[:batch_size]
        self.traffic.pcie_to_host += 32 * len(batch)
        return batch

    def schedule_unique(
        self, flags: List[Tuple[BufferedWrite, bool]]
    ) -> List[BufferedWrite]:
        """Apply host uniqueness flags; returns the unique-chunk batch.

        Unique chunks go to the Compression Engine peer-to-peer;
        duplicates are simply dropped from the buffer (their metadata
        update happened host-side).  Mirrors Figure 7's compression
        scheduler scanning the flag list.
        """
        unique_batch: List[BufferedWrite] = []
        self.traffic.pcie_from_host += len(flags)  # 1-byte flag each
        for entry, is_unique in flags:
            staged = self._buffer.pop(entry.lba, None)
            if staged is None:
                continue  # overwritten while the host was deciding
            self._buffered_bytes -= len(staged.data)
            self.traffic.nic_dram += len(staged.data)  # read out of DRAM
            if is_unique:
                unique_batch.append(staged)
        return unique_batch

    # -- read path ---------------------------------------------------------------------
    def lookup_read(self, lba: int) -> Optional[bytes]:
        """LBA Lookup: serve a read from the write buffer when possible."""
        staged = self._buffer.get(lba)
        if staged is not None:
            self.read_buffer_hits += 1
            self.traffic.nic_dram += len(staged.data)
            self.traffic.network_tx += len(staged.data)
            return staged.data
        self.read_buffer_misses += 1
        return None

    def send_read_data(self, data: bytes) -> None:
        """Forward decompressed data (fetched P2P from the engine) out."""
        self.traffic.pcie_from_host += len(data)  # engine → NIC transfer
        self.traffic.nic_dram += len(data)
        self.traffic.network_tx += len(data)

    @property
    def buffered_bytes(self) -> int:
        return self._buffered_bytes

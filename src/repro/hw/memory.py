"""Host-DRAM traffic ledger (paper §3.2.1, §4.1, Table 1, Figure 11).

The paper's central memory argument is arithmetic over *which flows cross
host DRAM*: every byte a device DMAs into host memory is one DRAM write,
every byte read out is one DRAM read, and flows re-routed peer-to-peer
simply stop appearing in the ledger.  :class:`MemoryLedger` records that
arithmetic per named data path so Table 1's breakdown and Figure 11's
reductions fall out of the recorded flows.

The ledger also tracks *capacity* per path (Observation #1: bandwidth-
hungry paths need KBs-MBs; the table cache needs 10s-100s of GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .specs import DramSpec

__all__ = ["PathTraffic", "MemoryLedger"]


@dataclass
class PathTraffic:
    """Traffic and footprint attributed to one named data path."""

    bytes_read: float = 0.0
    bytes_written: float = 0.0
    capacity_bytes: float = 0.0  #: resident footprint this path needs

    @property
    def total(self) -> float:
        return self.bytes_read + self.bytes_written


class MemoryLedger:
    """Per-path host-DRAM byte accounting for one processed workload."""

    def __init__(self, spec: Optional[DramSpec] = None):
        self.spec = spec
        self._paths: Dict[str, PathTraffic] = {}

    def _path(self, name: str) -> PathTraffic:
        traffic = self._paths.get(name)
        if traffic is None:
            traffic = PathTraffic()
            self._paths[name] = traffic
        return traffic

    def read(self, path: str, num_bytes: float) -> None:
        """Account DRAM reads on ``path`` (data leaving host memory)."""
        if num_bytes < 0:
            raise ValueError("negative traffic")
        self._path(path).bytes_read += num_bytes

    def write(self, path: str, num_bytes: float) -> None:
        """Account DRAM writes on ``path`` (data landing in host memory)."""
        if num_bytes < 0:
            raise ValueError("negative traffic")
        self._path(path).bytes_written += num_bytes

    def through(self, path: str, num_bytes: float) -> None:
        """A store-and-forward hop: written into DRAM, then read back out.

        This is the baseline's signature pattern (Observation #2): data
        buffered in host memory on its way between two devices costs the
        memory system twice.
        """
        self.write(path, num_bytes)
        self.read(path, num_bytes)

    def require_capacity(self, path: str, num_bytes: float) -> None:
        """Record the resident footprint a path needs (max, not sum)."""
        traffic = self._path(path)
        traffic.capacity_bytes = max(traffic.capacity_bytes, num_bytes)

    # -- reporting ------------------------------------------------------------
    @property
    def total_bytes(self) -> float:
        return sum(traffic.total for traffic in self._paths.values())

    def breakdown(self) -> Dict[str, float]:
        """Per-path share of total DRAM traffic (Table 1's BW columns)."""
        total = self.total_bytes
        if total == 0:
            return {name: 0.0 for name in self._paths}
        return {
            name: traffic.total / total
            for name, traffic in sorted(self._paths.items())
        }

    def path_traffic(self, name: str) -> PathTraffic:
        return self._path(name)

    def paths(self) -> Dict[str, PathTraffic]:
        return dict(self._paths)

    def bandwidth_demand(self, data_throughput: float, logical_bytes: float) -> float:
        """DRAM bandwidth needed to sustain ``data_throughput`` of client
        data, given this ledger covered ``logical_bytes`` of it.

        The paper's projection (Figure 4) is linear: bytes-of-DRAM-traffic
        per byte-of-client-data times the target throughput.
        """
        if logical_bytes <= 0:
            raise ValueError("ledger covered no client bytes")
        return self.total_bytes / logical_bytes * data_throughput

    def amplification(self, logical_bytes: float) -> float:
        """DRAM bytes moved per client byte."""
        if logical_bytes <= 0:
            raise ValueError("ledger covered no client bytes")
        return self.total_bytes / logical_bytes

    def utilization(self, data_throughput: float, logical_bytes: float) -> float:
        """Fraction of the socket's peak DRAM bandwidth consumed."""
        if self.spec is None:
            raise ValueError("no DRAM spec attached")
        return self.bandwidth_demand(data_throughput, logical_bytes) / self.spec.peak_bw

    def capacity_demand(self) -> float:
        """Total resident footprint across paths."""
        return sum(traffic.capacity_bytes for traffic in self._paths.values())

"""Per-stage performance harness for the engine hot path.

``python -m repro.perf`` drives the canonical write workload through a
:class:`~repro.datared.dedup.DedupEngine` with a :class:`StageClock`
installed and emits ``BENCH_stages.json``: wall-clock nanoseconds and
allocation deltas for every hot-path stage —

========  ==========================================================
stage     meaning
========  ==========================================================
chunk     ``FixedChunker.split`` (zero-copy view slicing)
hash      SHA-256 fingerprinting (``fingerprint_many``)
lookup    Hash-PBN table probes for every chunk
compress  DEFLATE of the chunks planned unique
pack      container append (the materialization boundary)
publish   PBN allocation + metadata/table/LBA-map publication
other     everything unattributed (planner, reports, loop glue)
========  ==========================================================

Timings and allocations come from two separate passes over identical
workloads: ``tracemalloc`` slows the interpreter severely, so the
timing pass runs uninstrumented and the allocation pass re-runs with
tracing on.  Each stage reports the *minimum* over ``--rounds`` timing
passes, which strips scheduler noise the same way ``timeit`` does.

The numbers answer "where do the cycles go" for future optimisation
PRs; the CI bench-smoke job uploads the JSON so the trajectory is
visible per commit (see DESIGN.md §5.4 for how to read it).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import socket
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Any, Dict, List, Optional

from .datared import codecs as _codecs
from .datared import hashing as _hashing
from .datared.dedup import DedupEngine
from .datared.hash_pbn import (
    BUCKET_CAPACITY,
    ArenaBucketStore,
    HashPbnTable,
)
from .datared.hashing import MAX_PBN
from .datared.journal import MetadataJournal
from .datared.sharded import ShardedDedupEngine
from .obs import trace as _trace
from .obs.metrics import MetricsRegistry
from .obs.trace import TracedStages
from .parallel import StagePool

__all__ = [
    "StageClock",
    "bench_meta",
    "run_index_bench",
    "run_journal_bench",
    "run_obs_overhead",
    "run_shard_bench",
    "run_stage_bench",
    "main",
]

#: Canonical workload shape (mirrors benchmarks/test_throughput.py).
CHUNK = 4096
BATCH_CHUNKS = 64
DUPLICATE_FRACTION = 0.25
SEED = 0xF1D8


class _StageSpan:
    """Reusable timing span for one stage (non-reentrant)."""

    __slots__ = ("_clock", "_name", "_t0")

    def __init__(self, clock: "StageClock", name: str) -> None:
        self._clock = clock
        self._name = name
        self._t0 = 0

    def __enter__(self) -> None:
        self._t0 = time.perf_counter_ns()

    def __exit__(self, *exc: object) -> None:
        clock = self._clock
        delta = time.perf_counter_ns() - self._t0
        clock.ns[self._name] = clock.ns.get(self._name, 0) + delta
        clock.calls[self._name] = clock.calls.get(self._name, 0) + 1


class _MemorySpan:
    """Reusable allocation span for one stage (needs tracemalloc on)."""

    __slots__ = ("_clock", "_name", "_m0")

    def __init__(self, clock: "StageClock", name: str) -> None:
        self._clock = clock
        self._name = name
        self._m0 = 0

    def __enter__(self) -> None:
        self._m0 = tracemalloc.get_traced_memory()[0]

    def __exit__(self, *exc: object) -> None:
        clock = self._clock
        delta = tracemalloc.get_traced_memory()[0] - self._m0
        clock.alloc[self._name] = clock.alloc.get(self._name, 0) + delta
        clock.calls[self._name] = clock.calls.get(self._name, 0) + 1


class StageClock:
    """Per-stage accumulator the engine's hot path reports into.

    Satisfies :class:`repro.datared.dedup.StageTimer`.  ``memory=True``
    records net-allocation deltas via :mod:`tracemalloc` (the caller
    must have started tracing) instead of wall time.
    """

    def __init__(self, memory: bool = False) -> None:
        self.memory = memory
        self.ns: Dict[str, int] = {}
        self.alloc: Dict[str, int] = {}
        self.calls: Dict[str, int] = {}
        self._spans: Dict[str, Any] = {}

    def stage(self, name: str) -> Any:
        span = self._spans.get(name)
        if span is None:
            span = (
                _MemorySpan(self, name)
                if self.memory
                else _StageSpan(self, name)
            )
            self._spans[name] = span
        return span


def bench_meta() -> Dict[str, Any]:
    """Provenance stamp for every ``BENCH_*.json`` this repo emits."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except OSError:
        sha = "unknown"
    return {
        "git_sha": sha,
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


#: Chunk generators per ``--corpus`` choice: ``mixed`` is the canonical
#: half-random/half-zero shape, ``random`` is incompressible (adaptive
#: should route it to the raw escape), ``zero`` compresses maximally.
_CORPORA = ("mixed", "random", "zero")


def make_workload(
    num_batches: int, seed: int = SEED, corpus: str = "mixed"
) -> List[List[bytes]]:
    """Chunk batches with a duplicate pool (``corpus`` sets the shape)."""
    if corpus not in _CORPORA:
        raise ValueError(f"corpus must be one of {_CORPORA}, got {corpus!r}")
    rng = random.Random(seed)

    def fresh() -> bytes:
        if corpus == "random":
            return rng.randbytes(CHUNK)
        if corpus == "zero":
            return bytes(CHUNK)
        return rng.randbytes(CHUNK // 2) + bytes(CHUNK // 2)

    pool = [fresh() for _ in range(8)]
    batches = []
    for _ in range(num_batches):
        batch = []
        for _ in range(BATCH_CHUNKS):
            if rng.random() < DUPLICATE_FRACTION:
                batch.append(pool[rng.randrange(len(pool))])
            else:
                batch.append(fresh())
        batches.append(batch)
    return batches


def _drive(
    batches: List[List[bytes]],
    clock: Optional[StageClock],
    parallelism: int,
    codec: str = "zlib",
    executor: str = "thread",
    fingerprint: str = "sha256",
) -> int:
    """One full write pass; returns total wall nanoseconds."""
    with StagePool(parallelism, backend=executor) as pool:
        engine = DedupEngine(
            num_buckets=1 << 14,
            compressor=_codecs.create_codec(codec),
            pool=pool,
            fingerprinter=_hashing.create_fingerprinter(fingerprint),
        )
        engine.stage_clock = clock
        start = time.perf_counter_ns()
        lba = 0
        for batch in batches:
            requests = []
            for data in batch:
                requests.append((lba, data))
                lba += engine.chunker.blocks_per_chunk
            engine.write_many(requests)
        engine.flush()
        return time.perf_counter_ns() - start


def run_obs_overhead(num_batches: int = 12, rounds: int = 5) -> Dict[str, Any]:
    """Measure the cost of an *installed but disabled* trace clock.

    The observability contract is that serving installs
    :class:`~repro.obs.trace.TracedStages` unconditionally and the
    enabled flag alone decides whether spans exist.  This harness proves
    the disabled path is free: it interleaves no-clock and
    disabled-clock write passes (interleaving cancels thermal/frequency
    drift) and reports the min-over-rounds throughput of each.  CI gates
    ``ratio`` — traced-disabled MB/s over baseline MB/s — at 0.97.
    """
    batches = make_workload(num_batches)
    moved = num_batches * BATCH_CHUNKS * CHUNK
    was_enabled = _trace.is_enabled()
    _trace.set_enabled(False)
    best_baseline: Optional[int] = None
    best_traced: Optional[int] = None
    try:
        for _ in range(rounds):
            baseline = _drive(batches, None, 1)
            traced = _drive(batches, TracedStages(), 1)
            if best_baseline is None or baseline < best_baseline:
                best_baseline = baseline
            if best_traced is None or traced < best_traced:
                best_traced = traced
    finally:
        _trace.set_enabled(was_enabled)
    assert best_baseline is not None and best_traced is not None
    baseline_mb_s = moved / 1e6 / (best_baseline / 1e9)
    traced_mb_s = moved / 1e6 / (best_traced / 1e9)
    return {
        "baseline_mb_s": round(baseline_mb_s, 2),
        "traced_disabled_mb_s": round(traced_mb_s, 2),
        "ratio": round(traced_mb_s / baseline_mb_s, 4),
        "rounds": rounds,
        "num_batches": num_batches,
    }


def _drive_journaled(
    batches: List[List[bytes]],
    parallelism: int,
    codec: str,
    executor: str,
    fingerprint: str,
    checkpoint_every_commits: Optional[int],
) -> "tuple[int, Dict[str, int]]":
    """One journal-armed write pass; (wall ns, journal stats)."""
    registry = MetricsRegistry()  # keep bench counters out of the global
    journal = MetadataJournal(
        checkpoint_every_commits=checkpoint_every_commits,
        registry=registry,
    )
    with StagePool(parallelism, backend=executor) as pool:
        engine = DedupEngine(
            num_buckets=1 << 14,
            compressor=_codecs.create_codec(codec),
            pool=pool,
            fingerprinter=_hashing.create_fingerprinter(fingerprint),
            registry=registry,
            journal=journal,
        )
        start = time.perf_counter_ns()
        lba = 0
        for batch in batches:
            requests = []
            for data in batch:
                requests.append((lba, data))
                lba += engine.chunker.blocks_per_chunk
            engine.write_many(requests)
        engine.flush()
        elapsed = time.perf_counter_ns() - start
    return elapsed, {
        "records": journal.records_written,
        "commits": journal.commits,
        "checkpoints": journal.checkpoints,
        "image_bytes": journal.size_bytes,
    }


def run_journal_bench(
    num_batches: int = 48,
    rounds: int = 3,
    checkpoint_every_commits: int = 16,
    parallelism: int = 1,
    codec: str = "zlib",
    executor: str = "thread",
    fingerprint: str = "sha256",
    corpus: str = "mixed",
) -> Dict[str, Any]:
    """Measure the durability tax: journal-off vs journal-on writes.

    Three interleaved variants over identical workloads (interleaving
    cancels thermal/frequency drift, min-over-rounds strips scheduler
    noise): no journal, group-commit journal, and journal plus periodic
    checkpoints with lazy truncation.  ``ratio`` is journaled over plain
    write MB/s; CI gates it at 0.85 — the group-commit design exists
    precisely so durability costs one buffered append + fence per
    *batch*, not per chunk.
    """
    batches = make_workload(num_batches, corpus=corpus)
    moved = num_batches * BATCH_CHUNKS * CHUNK
    best: Dict[str, Optional[int]] = {
        "plain": None, "journaled": None, "checkpointed": None,
    }
    stats: Dict[str, Dict[str, int]] = {}
    for _ in range(rounds):
        timings = {"plain": _drive(
            batches, None, parallelism, codec, executor, fingerprint
        )}
        timings["journaled"], stats["journaled"] = _drive_journaled(
            batches, parallelism, codec, executor, fingerprint, None
        )
        timings["checkpointed"], stats["checkpointed"] = _drive_journaled(
            batches, parallelism, codec, executor, fingerprint,
            checkpoint_every_commits,
        )
        for name, elapsed in timings.items():
            previous = best[name]
            if previous is None or elapsed < previous:
                best[name] = elapsed

    def mb_s(name: str) -> float:
        elapsed = best[name]
        assert elapsed is not None
        return round(moved / 1e6 / (elapsed / 1e9), 2)

    plain = mb_s("plain")
    journaled = mb_s("journaled")
    checkpointed = mb_s("checkpointed")
    return {
        "bench": "journal",
        "meta": bench_meta(),
        "num_batches": num_batches,
        "chunks": num_batches * BATCH_CHUNKS,
        "rounds": rounds,
        "parallelism": parallelism,
        "codec": codec,
        "corpus": corpus,
        "checkpoint_every_commits": checkpoint_every_commits,
        "plain_mb_s": plain,
        "journaled_mb_s": journaled,
        "checkpointed_mb_s": checkpointed,
        "ratio": round(journaled / plain, 4),
        "checkpointed_ratio": round(checkpointed / plain, 4),
        "journal": stats["journaled"],
        "checkpointed_journal": stats["checkpointed"],
    }


def run_stage_bench(
    num_batches: int = 48,
    rounds: int = 3,
    parallelism: int = 1,
    codec: str = "zlib",
    executor: str = "thread",
    fingerprint: str = "sha256",
    corpus: str = "mixed",
) -> Dict[str, Any]:
    """Run the per-stage benchmark; returns the BENCH_stages payload."""
    batches = make_workload(num_batches, corpus=corpus)
    chunks = num_batches * BATCH_CHUNKS

    # Timing pass: min over rounds, per stage and for the total.
    best_total = None
    best_clock = None
    for _ in range(rounds):
        clock = StageClock()
        total = _drive(
            batches, clock, parallelism,
            codec=codec, executor=executor, fingerprint=fingerprint,
        )
        if best_total is None or total < best_total:
            best_total, best_clock = total, clock
    assert best_clock is not None and best_total is not None

    # Allocation pass: one traced run (tracemalloc distorts timing, so
    # its numbers never mix into the ns fields).
    memory_clock = StageClock(memory=True)
    tracemalloc.start()
    try:
        _drive(
            batches, memory_clock, parallelism,
            codec=codec, executor=executor, fingerprint=fingerprint,
        )
    finally:
        tracemalloc.stop()

    staged_ns = sum(best_clock.ns.values())
    stages: Dict[str, Any] = {}
    for name in ("chunk", "hash", "lookup", "compress", "pack", "publish"):
        ns = best_clock.ns.get(name, 0)
        stages[name] = {
            "ns": ns,
            "calls": best_clock.calls.get(name, 0),
            "ns_per_chunk": round(ns / chunks, 1),
            "alloc_bytes": memory_clock.alloc.get(name, 0),
        }
    stages["other"] = {
        "ns": best_total - staged_ns,
        "calls": 0,
        "ns_per_chunk": round((best_total - staged_ns) / chunks, 1),
        "alloc_bytes": 0,
    }

    moved = chunks * CHUNK
    return {
        "benchmark": "engine-stage-breakdown",
        "meta": bench_meta(),
        # The stage breakdown always drives the plain (single-shard)
        # engine; the stamp keeps BENCH JSON self-describing next to
        # the BENCH_shards sweep.
        "shards": 1,
        "parallelism": parallelism,
        "codec": codec,
        "executor": executor,
        "fingerprint": fingerprint,
        "corpus": corpus,
        "chunk_size": CHUNK,
        "batch_chunks": BATCH_CHUNKS,
        "num_batches": num_batches,
        "duplicate_fraction": DUPLICATE_FRACTION,
        "rounds": rounds,
        "total_ns": best_total,
        "write_mb_s": round(moved / 1e6 / (best_total / 1e9), 2),
        "note": (
            "ns fields are the minimum-over-rounds uninstrumented "
            "timing pass; alloc_bytes come from a separate "
            "tracemalloc pass and must not be compared with the "
            "timings"
        ),
        "stages": stages,
        "obs_overhead": run_obs_overhead(
            num_batches=max(4, num_batches // 4), rounds=rounds + 2
        ),
    }


def _drive_sharded(
    batches: List[List[bytes]],
    num_shards: int,
    parallelism: int,
    codec: str = "zlib",
    executor: str = "thread",
    fingerprint: str = "sha256",
) -> tuple:
    """One sharded write pass; returns ``(total_ns, router_clock,
    shard_clocks)``.

    The router clock only sees the front-door stages (chunk, hash);
    each shard gets a *private* :class:`StageClock` because the clock
    is not thread-safe and shard tasks run concurrently — installing
    the router clock everywhere (what the ``stage_clock`` setter does,
    correct for the thread-safe ``TracedStages``) would corrupt its
    counters here.  Per-shard chunk counts come from the shard engines'
    own ledgers, not from clock call counts: the batched resolve makes
    one ``lookup`` span per sub-batch, so ``calls["lookup"]`` no longer
    equals chunks.
    """
    with StagePool(parallelism, backend=executor) as pool:
        engine = ShardedDedupEngine(
            num_shards,
            num_buckets=1 << 14,
            compressor=_codecs.create_codec(codec),
            pool=pool,
            fingerprinter=_hashing.create_fingerprinter(fingerprint),
        )
        router_clock = StageClock()
        shard_clocks = [StageClock() for _ in range(num_shards)]
        engine.stage_clock = router_clock
        for shard, shard_clock in zip(engine.shards, shard_clocks):
            shard.stage_clock = shard_clock
        try:
            start = time.perf_counter_ns()
            lba = 0
            for batch in batches:
                requests = []
                for data in batch:
                    requests.append((lba, data))
                    lba += engine.chunker.blocks_per_chunk
                engine.write_many(requests)
            engine.flush()
            total = time.perf_counter_ns() - start
            shard_chunks = [
                snap.unique_chunks + snap.duplicate_chunks
                for snap in engine.shard_snapshots()
            ]
        finally:
            engine.shutdown()
        return total, router_clock, shard_clocks, shard_chunks


def run_shard_bench(
    shard_counts: List[int],
    num_batches: int = 48,
    rounds: int = 3,
    parallelism: int = 1,
    codec: str = "zlib",
    executor: str = "thread",
    fingerprint: str = "sha256",
    corpus: str = "mixed",
) -> Dict[str, Any]:
    """Scaling sweep over shard counts; returns the BENCH_shards payload.

    Every run drives the identical workload.  The ``unsharded`` entry
    is the plain :class:`DedupEngine` (no scatter layer at all) and is
    the denominator of each run's ``vs_unsharded`` ratio — CI gates
    ``shards=1`` at 0.9x of it, so the scatter-gather layer itself must
    stay near-free.  Per-shard ``resolve_publish_ns`` is the §5.7
    parallel section (lookup + pack + publish on the shard thread).
    """
    if not shard_counts:
        raise ValueError("need at least one shard count")
    if any(count < 1 for count in shard_counts):
        raise ValueError(f"shard counts must be >= 1, got {shard_counts}")
    batches = make_workload(num_batches, corpus=corpus)
    chunks = num_batches * BATCH_CHUNKS
    moved = chunks * CHUNK

    best_unsharded: Optional[int] = None
    for _ in range(rounds):
        total = _drive(
            batches, None, parallelism,
            codec=codec, executor=executor, fingerprint=fingerprint,
        )
        if best_unsharded is None or total < best_unsharded:
            best_unsharded = total
    assert best_unsharded is not None
    unsharded_mb_s = moved / 1e6 / (best_unsharded / 1e9)

    runs: List[Dict[str, Any]] = []
    for count in shard_counts:
        best: Optional[tuple] = None
        for _ in range(rounds):
            attempt = _drive_sharded(
                batches, count, parallelism,
                codec=codec, executor=executor, fingerprint=fingerprint,
            )
            if best is None or attempt[0] < best[0]:
                best = attempt
        assert best is not None
        total, router_clock, shard_clocks, shard_chunks = best
        mb_s = moved / 1e6 / (total / 1e9)
        per_shard: List[Dict[str, Any]] = []
        for index, clock in enumerate(shard_clocks):
            lookup = clock.ns.get("lookup", 0)
            pack = clock.ns.get("pack", 0)
            publish = clock.ns.get("publish", 0)
            per_shard.append({
                "shard": index,
                "chunks": shard_chunks[index],
                "lookup_ns": lookup,
                "compress_ns": clock.ns.get("compress", 0),
                "pack_ns": pack,
                "publish_ns": publish,
                "resolve_publish_ns": lookup + pack + publish,
            })
        runs.append({
            "shards": count,
            "total_ns": total,
            "write_mb_s": round(mb_s, 2),
            "vs_unsharded": round(mb_s / unsharded_mb_s, 4),
            "router": {
                "chunk_ns": router_clock.ns.get("chunk", 0),
                "hash_ns": router_clock.ns.get("hash", 0),
            },
            "per_shard": per_shard,
        })

    return {
        "benchmark": "sharded-engine-scaling",
        "meta": bench_meta(),
        "shards": list(shard_counts),
        "parallelism": parallelism,
        "codec": codec,
        "executor": executor,
        "fingerprint": fingerprint,
        "corpus": corpus,
        "chunk_size": CHUNK,
        "batch_chunks": BATCH_CHUNKS,
        "num_batches": num_batches,
        "duplicate_fraction": DUPLICATE_FRACTION,
        "rounds": rounds,
        "unsharded": {
            "total_ns": best_unsharded,
            "write_mb_s": round(unsharded_mb_s, 2),
        },
        "runs": runs,
        "note": (
            "vs_unsharded compares each sharded run against the plain "
            "DedupEngine on the identical workload (min over rounds); "
            "per-shard ns come from private StageClocks on the shard "
            "threads of the best round"
        ),
    }


def _index_memory(
    num_buckets: int, seed: int, packed: bool, target: Optional[int] = None
) -> Dict[str, Any]:
    """Resident bytes/entry of one table configuration via tracemalloc.

    Builds the table *inside* a tracing window, inserting random
    fingerprints until the table is full (or ``target`` entries), and
    reads the **current** traced size afterwards — i.e. what the table
    retains, not what the build transiently allocated.  Digests and PBN
    ints are minted per insert and dropped right after, so the legacy
    table is charged for the tuple/bytes/int graph it keeps alive while
    the packed arena (which copies bytes into the page) is not.
    """
    rng = random.Random(seed)
    tracemalloc.start()
    try:
        before = tracemalloc.get_traced_memory()[0]
        if packed:
            table = HashPbnTable(
                num_buckets, store=ArenaBucketStore(num_buckets)
            )
        else:
            table = HashPbnTable(
                num_buckets, packed=False, negative_filter=False
            )
        count = 0
        pbn = MAX_PBN
        while target is None or count < target:
            try:
                table.insert(rng.randbytes(32), pbn)
            except RuntimeError:
                break
            pbn -= 1
            count += 1
        resident = tracemalloc.get_traced_memory()[0] - before
    finally:
        tracemalloc.stop()
    return {
        "entries": count,
        "resident_bytes": resident,
        "bytes_per_entry": round(resident / count, 2) if count else 0.0,
    }


def run_index_bench(
    num_buckets: int = 1 << 10,
    rounds: int = 3,
    batch_size: int = 4096,
    present_fraction: float = 0.1,
    fill: float = 0.7,
    seed: int = SEED,
) -> Dict[str, Any]:
    """Hash-PBN index microbench; returns the BENCH_index payload.

    Two measurements against the legacy (decoded entry-list, no filter,
    per-call lookup) configuration:

    * ``memory`` — resident bytes per entry via :mod:`tracemalloc`, at
      full table capacity (the memory-dense arena configuration's
      operating point; the gated number) and at the default 0.7 fill.
    * ``resolve`` — lookups/s on a unique-heavy batch
      (``1 - present_fraction`` absent digests plus a sprinkle of
      intra-batch repeats): legacy loops :meth:`HashPbnTable.lookup`
      per digest, packed resolves the whole batch through
      :meth:`HashPbnTable.lookup_many` over an arena store with the
      dense negative filter armed.  Results are asserted identical.
    """
    if not 0 < fill <= 1:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    if not 0 <= present_fraction <= 1:
        raise ValueError(
            f"present_fraction must be in [0, 1], got {present_fraction}"
        )
    operating_target = int(BUCKET_CAPACITY * num_buckets * fill)
    memory = {
        "full": {
            "legacy": _index_memory(num_buckets, seed, packed=False),
            "packed": _index_memory(num_buckets, seed, packed=True),
        },
        "operating": {
            "fill": fill,
            "legacy": _index_memory(
                num_buckets, seed, packed=False, target=operating_target
            ),
            "packed": _index_memory(
                num_buckets, seed, packed=True, target=operating_target
            ),
        },
    }
    for point in memory.values():
        legacy_bpe = point["legacy"]["bytes_per_entry"]
        packed_bpe = point["packed"]["bytes_per_entry"]
        point["ratio"] = (
            round(legacy_bpe / packed_bpe, 2) if packed_bpe else 0.0
        )

    # -- resolve throughput: identical tables, identical batch -------------
    rng = random.Random(seed ^ 0x1D8)
    legacy = HashPbnTable(num_buckets, packed=False, negative_filter=False)
    packed = HashPbnTable(num_buckets, store=ArenaBucketStore(num_buckets))
    present: List[bytes] = []
    for pbn in range(operating_target):
        digest = rng.randbytes(32)
        legacy.insert(digest, pbn)
        packed.insert(digest, pbn)
        present.append(digest)
    batch: List[bytes] = []
    for _ in range(batch_size):
        if rng.random() < present_fraction:
            batch.append(present[rng.randrange(len(present))])
        else:
            batch.append(rng.randbytes(32))
    # A sprinkle of intra-batch repeats so the digest-dedupe path (and
    # its saved-lookups counter) is exercised by the gated run.
    for _ in range(batch_size // 16):
        batch[rng.randrange(batch_size)] = batch[rng.randrange(batch_size)]

    expected = [legacy.lookup(digest) for digest in batch]
    assert packed.lookup_many(batch) == expected, (
        "packed lookup_many diverged from legacy per-call lookups"
    )

    best_legacy: Optional[int] = None
    best_packed: Optional[int] = None
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for digest in batch:
            legacy.lookup(digest)
        legacy_ns = time.perf_counter_ns() - start
        start = time.perf_counter_ns()
        packed.lookup_many(batch)
        packed_ns = time.perf_counter_ns() - start
        if best_legacy is None or legacy_ns < best_legacy:
            best_legacy = legacy_ns
        if best_packed is None or packed_ns < best_packed:
            best_packed = packed_ns
    assert best_legacy is not None and best_packed is not None
    legacy_rate = batch_size / (best_legacy / 1e9)
    packed_rate = batch_size / (best_packed / 1e9)

    return {
        "benchmark": "hash-pbn-index",
        "meta": bench_meta(),
        "num_buckets": num_buckets,
        "bucket_capacity": BUCKET_CAPACITY,
        "rounds": rounds,
        "memory": memory,
        "resolve": {
            "batch_size": batch_size,
            "present_fraction": present_fraction,
            "fill": fill,
            "table_entries": operating_target,
            "legacy_ns": best_legacy,
            "packed_ns": best_packed,
            "legacy_lookups_per_s": round(legacy_rate, 1),
            "packed_lookups_per_s": round(packed_rate, 1),
            "speedup": round(packed_rate / legacy_rate, 2),
            "filter_hits": packed.filter_hits,
            "filter_misses": packed.filter_misses,
            "saved_batch_lookups": packed.saved_batch_lookups,
            "probes": packed.probe_count,
        },
        "note": (
            "memory.full is the gated point (arena tables run at "
            "capacity); bytes/entry are tracemalloc *current* deltas, "
            "so only retained structures count.  resolve times are "
            "min-over-rounds on the identical batch; legacy = decoded "
            "buckets, per-call lookup, no filter; packed = arena store "
            "+ dense negative filter + lookup_many"
        ),
    }


def _parse_shards(value: str) -> List[int]:
    try:
        counts = [int(part) for part in value.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--shards takes a comma list of counts, got {value!r}"
        ) from None
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError(
            f"shard counts must be >= 1, got {value!r}"
        )
    return counts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Per-stage hot-path benchmark (emits BENCH_stages.json)",
    )
    parser.add_argument(
        "--batches", type=int, default=None,
        help="number of 64-chunk batches (default 48, or 6 with --smoke)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing passes; each stage reports its minimum (default 3)",
    )
    parser.add_argument(
        "--parallelism", type=int, default=1,
        help="StagePool worker threads (default 1 = serial)",
    )
    parser.add_argument(
        "--codec", choices=_codecs.codec_names(), default="zlib",
        help="compression codec for the write path (default zlib); "
        f"available here: {', '.join(_codecs.available_codecs())}",
    )
    parser.add_argument(
        "--executor", choices=["thread", "process", "auto"],
        default="thread",
        help="StagePool backend (default thread; the serve/bench CLIs "
        "default to auto)",
    )
    parser.add_argument(
        "--fingerprint", choices=_hashing.fingerprinter_names(),
        default="sha256",
        help="chunk fingerprint algorithm (default sha256)",
    )
    parser.add_argument(
        "--corpus", choices=list(_CORPORA), default="mixed",
        help="chunk content shape: mixed (half random/half zero), "
        "random (incompressible), zero (maximally compressible)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload for CI smoke runs",
    )
    parser.add_argument(
        "--shards", type=_parse_shards, default=None, metavar="N[,N...]",
        help="run the sharded-engine scaling sweep over these shard "
        "counts (e.g. 1,2,4) instead of the stage breakdown; emits "
        "BENCH_shards.json",
    )
    parser.add_argument(
        "--index", action="store_true",
        help="run the Hash-PBN index microbench (packed vs legacy "
        "memory + batched resolve throughput) instead of the stage "
        "breakdown; emits BENCH_index.json",
    )
    parser.add_argument(
        "--journal", action="store_true",
        help="run the durability-tax microbench (journal-off vs "
        "group-commit journal vs journal+checkpoints) instead of the "
        "stage breakdown; emits BENCH_journal.json",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=16, metavar="N",
        help="checkpoint cadence (group commits) for the --journal "
        "bench's checkpointed variant (default 16)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default ./BENCH_stages.json; "
        "./BENCH_shards.json with --shards; ./BENCH_index.json with "
        "--index; ./BENCH_journal.json with --journal)",
    )
    args = parser.parse_args(argv)
    if sum(bool(mode) for mode in (args.index, args.shards, args.journal)) > 1:
        parser.error("--index, --shards and --journal are mutually exclusive")
    if args.out is None:
        if args.index:
            args.out = Path("BENCH_index.json")
        elif args.shards:
            args.out = Path("BENCH_shards.json")
        elif args.journal:
            args.out = Path("BENCH_journal.json")
        else:
            args.out = Path("BENCH_stages.json")
    num_batches = args.batches
    if num_batches is None:
        num_batches = 6 if args.smoke else 48

    if not _codecs.codec_available(args.codec):
        parser.error(
            f"codec {args.codec!r} is registered but its library is not "
            "installed here (install the repro[codecs] extras); "
            f"available: {', '.join(_codecs.available_codecs())}"
        )
    if not _hashing.fingerprinter_available(args.fingerprint):
        parser.error(
            f"fingerprinter {args.fingerprint!r} is registered but its "
            "library is not installed here (install the repro[codecs] "
            f"extras); available: "
            f"{', '.join(_hashing.available_fingerprinters())}"
        )

    if args.index:
        payload = run_index_bench(
            num_buckets=(1 << 8) if args.smoke else (1 << 10),
            rounds=args.rounds,
        )
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        full = payload["memory"]["full"]
        resolve = payload["resolve"]
        print(
            f"hash-pbn index microbench ({payload['num_buckets']} "
            f"buckets, min of {args.rounds} rounds)"
        )
        print(
            f"  memory (full table): legacy "
            f"{full['legacy']['bytes_per_entry']} B/entry, packed "
            f"{full['packed']['bytes_per_entry']} B/entry "
            f"({full['ratio']}x smaller)"
        )
        print(
            f"  resolve ({resolve['batch_size']} digests, "
            f"{int((1 - resolve['present_fraction']) * 100)}% absent): "
            f"legacy {resolve['legacy_lookups_per_s']:,.0f}/s, packed "
            f"{resolve['packed_lookups_per_s']:,.0f}/s "
            f"({resolve['speedup']}x); filter hits "
            f"{resolve['filter_hits']}, saved batch lookups "
            f"{resolve['saved_batch_lookups']}"
        )
        print(f"wrote {args.out}")
        return 0

    if args.journal:
        payload = run_journal_bench(
            num_batches=num_batches, rounds=args.rounds,
            checkpoint_every_commits=args.checkpoint_every,
            parallelism=args.parallelism, codec=args.codec,
            executor=args.executor, fingerprint=args.fingerprint,
            corpus=args.corpus,
        )
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"durability tax ({payload['chunks']} chunks, "
            f"codec={args.codec}, min of {args.rounds} rounds)"
        )
        print(
            f"  plain        {payload['plain_mb_s']:>9.2f} MB/s"
        )
        print(
            f"  journaled    {payload['journaled_mb_s']:>9.2f} MB/s "
            f"(ratio {payload['ratio']:.3f}, gate 0.85; "
            f"{payload['journal']['records']:,} records in "
            f"{payload['journal']['commits']} commits, "
            f"{payload['journal']['image_bytes'] / 1024:.1f} KiB image)"
        )
        print(
            f"  checkpointed {payload['checkpointed_mb_s']:>9.2f} MB/s "
            f"(ratio {payload['checkpointed_ratio']:.3f}, every "
            f"{payload['checkpoint_every_commits']} commits -> "
            f"{payload['checkpointed_journal']['checkpoints']} "
            f"checkpoints, "
            f"{payload['checkpointed_journal']['image_bytes'] / 1024:.1f} "
            "KiB image)"
        )
        print(f"wrote {args.out}")
        return 0

    if args.shards:
        payload = run_shard_bench(
            args.shards,
            num_batches=num_batches, rounds=args.rounds,
            parallelism=args.parallelism, codec=args.codec,
            executor=args.executor, fingerprint=args.fingerprint,
            corpus=args.corpus,
        )
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        chunks = num_batches * BATCH_CHUNKS
        print(
            f"sharded engine scaling ({chunks} chunks, "
            f"parallelism={args.parallelism}, codec={args.codec}, "
            f"unsharded {payload['unsharded']['write_mb_s']} MB/s, "
            f"min of {args.rounds} rounds)"
        )
        print(f"  {'shards':<8}{'MB/s':>10}{'vs unsharded':>14}"
              f"{'resolve+publish ms':>20}")
        for run in payload["runs"]:
            resolve_ms = sum(
                shard["resolve_publish_ns"] for shard in run["per_shard"]
            ) / 1e6
            print(
                f"  {run['shards']:<8}{run['write_mb_s']:>10.2f}"
                f"{run['vs_unsharded']:>13.3f}x{resolve_ms:>19.2f}"
            )
        print(f"wrote {args.out}")
        return 0

    payload = run_stage_bench(
        num_batches=num_batches, rounds=args.rounds,
        parallelism=args.parallelism, codec=args.codec,
        executor=args.executor, fingerprint=args.fingerprint,
        corpus=args.corpus,
    )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    chunks = num_batches * BATCH_CHUNKS
    print(
        f"engine stage breakdown ({chunks} chunks, "
        f"parallelism={payload['parallelism']}, "
        f"codec={payload['codec']}, executor={payload['executor']}, "
        f"corpus={payload['corpus']}, "
        f"{payload['write_mb_s']} MB/s, min of {args.rounds} rounds)"
    )
    print(f"  {'stage':<9}{'us/chunk':>10}{'share':>8}{'alloc KB':>10}")
    for name, stage in payload["stages"].items():
        share = stage["ns"] / payload["total_ns"] if payload["total_ns"] else 0
        print(
            f"  {name:<9}{stage['ns_per_chunk'] / 1000:>10.2f}"
            f"{share:>7.0%}{stage['alloc_bytes'] / 1024:>10.1f}"
        )
    overhead = payload["obs_overhead"]
    print(
        f"obs overhead (tracing installed, disabled): "
        f"{overhead['traced_disabled_mb_s']} vs "
        f"{overhead['baseline_mb_s']} MB/s "
        f"(ratio {overhead['ratio']:.3f}, gate 0.97)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

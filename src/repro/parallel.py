"""Shared thread-pool fan-out for the GIL-releasing pipeline stages.

The paper makes fingerprinting and compression fast by moving them off
the host CPU onto dedicated engines — SHA-256 on the NIC (§5.4) and
DEFLATE on the compression FPGA (§5.2) — while the Hash-PBN resolution
stays a serial, order-dependent stage.  The software analogue of those
engines is a thread pool: CPython's ``hashlib.sha256`` and ``zlib``
both release the GIL on 4-KB buffers, so hashing and compressing many
chunks across threads genuinely overlaps on multi-core hosts.

:class:`StagePool` is that pool, shared by every parallel stage of one
storage stack (the engine's hash fan-out, its compress fan-out, and the
read path's decompress fan-out).  It is deliberately small:

* ``parallelism <= 1`` builds a *no-op* pool — every ``map`` runs
  inline, no threads are ever created, and the serial data path is
  byte-for-byte the pre-existing one.
* :meth:`map` preserves input order and fans work out in **contiguous
  slices** rather than one task per item, because dispatching a 4-KB
  chunk to an executor costs a meaningful fraction of hashing it;
  slicing amortizes the dispatch over dozens of chunks.

The pool carries no storage state, so it is safe to share across
engines; all metadata mutation stays on the caller's thread (see the
"Concurrency model" section of DESIGN.md).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["StagePool"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _run_slice(fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
    return [fn(item) for item in items]


class StagePool:
    """A bounded worker pool for order-preserving stage fan-out.

    Parameters
    ----------
    parallelism:
        Worker-thread count.  ``1`` (the default) disables threading
        entirely — the pool becomes a transparent serial executor.
    slices_per_worker:
        How many slices each worker should receive per :meth:`map`
        call; more slices balance uneven work at the cost of dispatch
        overhead.
    min_slice_items:
        Floor on items per dispatched slice.  Small batches pushed
        through a wide pool would otherwise shatter into slices so thin
        that submit/wakeup overhead exceeds the work itself (hashing or
        zlib on a 4-KB chunk is only tens of microseconds).
    """

    def __init__(
        self,
        parallelism: int = 1,
        *,
        slices_per_worker: int = 4,
        min_slice_items: int = 8,
    ) -> None:
        if slices_per_worker < 1:
            raise ValueError("slices_per_worker must be at least 1")
        if min_slice_items < 1:
            raise ValueError("min_slice_items must be at least 1")
        self.parallelism = max(1, int(parallelism))
        self.slices_per_worker = slices_per_worker
        self.min_slice_items = min_slice_items
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-stage",
            )
            if self.parallelism > 1
            else None
        )

    @property
    def is_parallel(self) -> bool:
        """Whether this pool actually owns worker threads."""
        return self._executor is not None

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        """Apply ``fn`` to every item, returning results in input order.

        ``fn`` must be pure with respect to shared storage state — the
        pool gives no ordering between items, only between stages.
        """
        materialized = items if isinstance(items, list) else list(items)
        if self._executor is None or len(materialized) <= 1:
            return [fn(item) for item in materialized]
        num_slices = min(
            len(materialized),
            self.parallelism * self.slices_per_worker,
            max(1, len(materialized) // self.min_slice_items),
        )
        if num_slices <= 1:
            return [fn(item) for item in materialized]
        bounds = [
            (len(materialized) * i) // num_slices for i in range(num_slices + 1)
        ]
        futures = [
            self._executor.submit(_run_slice, fn, materialized[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
            if hi > lo
        ]
        results: List[_R] = []
        for future in futures:
            results.extend(future.result())
        return results

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent; the pool is unusable
        afterwards)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "StagePool":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[object],
    ) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"StagePool(parallelism={self.parallelism})"

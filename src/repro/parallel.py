"""Shared executor fan-out for the GIL-releasing pipeline stages.

The paper makes fingerprinting and compression fast by moving them off
the host CPU onto dedicated engines — SHA-256 on the NIC (§5.4) and
DEFLATE on the compression FPGA (§5.2) — while the Hash-PBN resolution
stays a serial, order-dependent stage.  The software analogue of those
engines is a worker pool: CPython's ``hashlib.sha256`` and ``zlib``
both release the GIL on 4-KB buffers, so hashing and compressing many
chunks across threads genuinely overlaps on multi-core hosts.

:class:`StagePool` is that pool, shared by every parallel stage of one
storage stack (the engine's hash fan-out, its compress fan-out, and the
read path's decompress fan-out).  It is deliberately small:

* ``parallelism <= 1`` builds a *no-op* pool — every ``map`` runs
  inline, no workers are ever created, and the serial data path is
  byte-for-byte the pre-existing one.
* :meth:`map` preserves input order and fans work out in **contiguous
  slices** rather than one task per item, because dispatching a 4-KB
  chunk to an executor costs a meaningful fraction of hashing it;
  slicing amortizes the dispatch over dozens of chunks.
* ``backend="process"`` swaps the thread pool for a
  :class:`~concurrent.futures.ProcessPoolExecutor`: true multi-core
  fan-out with no GIL contention at all, at the price of pickling every
  argument and result across the IPC boundary.  Stages that hold
  :class:`memoryview` references must materialize them first — the
  :attr:`requires_pickling` flag tells them so (see
  ``Compressor.compress_many``).  Worth it only when per-item work
  clearly exceeds the pickling cost (compression yes, SHA-256 no).

The pool carries no storage state, so it is safe to share across
engines; all metadata mutation stays on the caller's thread (see the
"Concurrency model" section of DESIGN.md).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .obs import metrics as _metrics
from .obs import trace as _trace

__all__ = ["StagePool"]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Accepted executor backends.  ``"auto"`` resolves at construction:
#: process when the pool is parallel *and* the host has more than one
#: core (compression dominates the write path, so GIL-free fan-out is
#: the right default there), thread otherwise.
_BACKENDS = ("thread", "process", "auto")


def _run_slice(fn: Callable[[_T], _R], items: Sequence[_T]) -> List[_R]:
    return [fn(item) for item in items]


def _run_slice_traced(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    context: _trace.ExecutorContext,
) -> Tuple[List[_R], List[_trace.SpanRecord]]:
    """Traced twin of :func:`_run_slice`: adopts the submitting task's
    trace context, times the slice, and ships the captured spans back
    alongside the results.  Module-level and built from picklable
    pieces, so it crosses the process-pool boundary like its twin."""
    with _trace.adopt(context) as captured:
        with _trace.span("pool.slice", items=len(items)):
            results = [fn(item) for item in items]
    return results, list(captured)


class StagePool:
    """A bounded worker pool for order-preserving stage fan-out.

    Parameters
    ----------
    parallelism:
        Worker count.  ``1`` (the default) disables the executor
        entirely — the pool becomes a transparent serial executor.
    backend:
        ``"thread"`` (default), ``"process"``, or ``"auto"``.  Threads
        exploit the GIL-releasing stages with near-zero dispatch cost;
        processes buy GIL-free scaling but pickle all traffic, so
        callables and payloads must be picklable (module-level
        functions or bound methods of picklable objects, ``bytes`` not
        ``memoryview``).  ``"auto"`` picks process when
        ``parallelism > 1`` and ``os.cpu_count() > 1`` — compression is
        the dominant write-path stage and scales GIL-free there — and
        thread otherwise; :attr:`backend` reflects the resolved choice.
    slices_per_worker:
        How many slices each worker should receive per :meth:`map`
        call; more slices balance uneven work at the cost of dispatch
        overhead.
    min_slice_items:
        Floor on items per dispatched slice.  Small batches pushed
        through a wide pool would otherwise shatter into slices so thin
        that submit/wakeup overhead exceeds the work itself (hashing or
        zlib on a 4-KB chunk is only tens of microseconds).
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` the pool counts
        dispatch activity into (default: the process registry).  The
        four ``pool.*`` counters are cached at construction, so each
        :meth:`map` pays two uncontended increments, not a lookup.
    """

    def __init__(
        self,
        parallelism: int = 1,
        *,
        backend: str = "thread",
        slices_per_worker: int = 4,
        min_slice_items: int = 8,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if slices_per_worker < 1:
            raise ValueError("slices_per_worker must be at least 1")
        if min_slice_items < 1:
            raise ValueError("min_slice_items must be at least 1")
        self.parallelism = max(1, int(parallelism))
        if backend == "auto":
            backend = (
                "process"
                if self.parallelism > 1 and (os.cpu_count() or 1) > 1
                else "thread"
            )
        self.backend = backend
        self.slices_per_worker = slices_per_worker
        self.min_slice_items = min_slice_items
        reg = registry if registry is not None else _metrics.get_registry()
        self._maps_total = reg.counter("pool.maps_total")
        self._maps_inline = reg.counter("pool.maps_inline")
        self._slices_dispatched = reg.counter("pool.slices_dispatched")
        self._items_total = reg.counter("pool.items_total")
        self._executor: Optional[Executor] = None
        if self.parallelism > 1:
            if backend == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.parallelism
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="repro-stage",
                )

    @property
    def is_parallel(self) -> bool:
        """Whether this pool actually owns workers."""
        return self._executor is not None

    @property
    def requires_pickling(self) -> bool:
        """Whether mapped callables/items cross an IPC boundary.

        Stages holding :class:`memoryview` references must materialize
        them to ``bytes`` before mapping through such a pool.
        """
        return self._executor is not None and self.backend == "process"

    def map(  # lockgraph: blocking-ok stage fns are lock-free, wait cannot deadlock
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        min_batch: int = 0,
    ) -> List[_R]:
        """Apply ``fn`` to every item, returning results in input order.

        ``fn`` must be pure with respect to shared storage state — the
        pool gives no ordering between items, only between stages.
        That purity contract is also why callers may wait on the pool
        while holding a storage lock: a stage function can never try to
        take one, so the ``future.result()`` waits below cannot re-enter
        the lock order (sanctioned for ``repro.analysis.lockgraph`` on
        the ``def`` line above).

        ``min_batch`` is an inline threshold: batches smaller than it
        run on the calling thread even when the pool is parallel.
        Stages whose per-item work is cheap (decompression) use it so
        small batches never pay dispatch overhead for sub-microsecond
        wins — the cause of the PR-2 parallel *read* regression.
        """
        materialized = items if isinstance(items, list) else list(items)
        self._maps_total.inc()
        self._items_total.inc(len(materialized))
        if (
            self._executor is None
            or len(materialized) <= 1
            or len(materialized) < min_batch
        ):
            self._maps_inline.inc()
            return [fn(item) for item in materialized]
        num_slices = min(
            len(materialized),
            self.parallelism * self.slices_per_worker,
            max(1, len(materialized) // self.min_slice_items),
        )
        if num_slices <= 1:
            self._maps_inline.inc()
            return [fn(item) for item in materialized]
        bounds = [
            (len(materialized) * i) // num_slices for i in range(num_slices + 1)
        ]
        spans = zip(bounds, bounds[1:])
        results: List[_R] = []
        # When the submitting task is tracing, dispatch the traced slice
        # runner: workers adopt the parent's trace context (thread or
        # process — the context and the captured SpanRecords are both
        # picklable) and return their spans for the parent to merge, so
        # the ring stays parent-ordered and a process child's spans are
        # not stranded in its own interpreter.
        context = _trace.current_context()
        if context is None:
            futures = [
                self._executor.submit(_run_slice, fn, materialized[lo:hi])
                for lo, hi in spans
                if hi > lo
            ]
            self._slices_dispatched.inc(len(futures))
            for future in futures:
                results.extend(future.result())
            return results
        traced_futures = [
            self._executor.submit(
                _run_slice_traced, fn, materialized[lo:hi], context
            )
            for lo, hi in spans
            if hi > lo
        ]
        self._slices_dispatched.inc(len(traced_futures))
        for traced in traced_futures:
            slice_results, slice_spans = traced.result()
            results.extend(slice_results)
            _trace.merge(slice_spans)
        return results

    def shutdown(self) -> None:
        """Stop the workers (idempotent; the pool is unusable
        afterwards)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "StagePool":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[object],
    ) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"StagePool(parallelism={self.parallelism}, "
            f"backend={self.backend!r})"
        )

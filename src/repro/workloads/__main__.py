"""Workload tooling from the command line.

Usage::

    python -m repro.workloads gen --workload write-h --chunks 20000 -o trace.txt
    python -m repro.workloads gen --profile mail --writes 50000 -o mail.txt
    python -m repro.workloads inspect trace.txt
    python -m repro.workloads list
"""

from __future__ import annotations

import argparse
import sys

from ..analysis.report import format_table, pct
from .generator import WORKLOADS, build_workload
from .synthetic import MAIL_PROFILE, WEBVM_PROFILE, synthesize
from .trace import Trace

PROFILES = {"mail": MAIL_PROFILE, "webvm": WEBVM_PROFILE}


def _cmd_list(_args) -> int:
    rows = []
    for key, spec in WORKLOADS.items():
        rows.append([
            key,
            spec.name,
            pct(spec.dedup_target),
            pct(spec.hit_rate_target),
            pct(spec.read_fraction),
        ])
    print(format_table(
        headers=["key", "name", "dedup target", "hit-rate target", "reads"],
        rows=rows,
        title="Table-3 workloads",
    ))
    print("\nraw trace profiles:", ", ".join(PROFILES))
    return 0


def _cmd_gen(args) -> int:
    if args.workload:
        spec = WORKLOADS.get(args.workload)
        if spec is None:
            print(f"unknown workload {args.workload!r}; try `list`",
                  file=sys.stderr)
            return 2
        trace = build_workload(
            spec, num_chunks=args.chunks, replicas=args.replicas,
            seed=args.seed,
        )
    else:
        profile = PROFILES.get(args.profile or "")
        if profile is None:
            print("need --workload or --profile {mail,webvm}", file=sys.stderr)
            return 2
        trace = synthesize(profile, args.writes, seed=args.seed)
    trace.save(args.output)
    print(f"wrote {len(trace):,} requests to {args.output} "
          f"(dedup {trace.content_dedup_ratio():.1%}, "
          f"{trace.address_footprint():,} distinct LBAs)")
    return 0


def _cmd_inspect(args) -> int:
    trace = Trace.load(args.path)
    rows = [
        ["requests", f"{len(trace):,}"],
        ["writes", f"{trace.write_count:,}"],
        ["reads", f"{trace.read_count:,}"],
        ["content dedup ratio", pct(trace.content_dedup_ratio())],
        ["address footprint", f"{trace.address_footprint():,} blocks"],
        ["logical volume", f"{trace.write_count * 4096 / 1e6:,.1f} MB"],
    ]
    print(format_table(headers=["metric", "value"], rows=rows,
                       title=trace.name))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.workloads")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list known workloads/profiles")

    gen = commands.add_parser("gen", help="generate a trace file")
    gen.add_argument("--workload", help="a Table-3 workload key (see list)")
    gen.add_argument("--profile", help="a raw profile: mail or webvm")
    gen.add_argument("--chunks", type=int, default=16_000,
                     help="workload volume in 4-KB chunks")
    gen.add_argument("--writes", type=int, default=16_000,
                     help="raw-profile write count")
    gen.add_argument("--replicas", type=int, default=2)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("-o", "--output", required=True)

    inspect = commands.add_parser("inspect", help="summarize a trace file")
    inspect.add_argument("path")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "gen":
        return _cmd_gen(args)
    return _cmd_inspect(args)


if __name__ == "__main__":
    raise SystemExit(main())

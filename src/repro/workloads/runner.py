"""Replay a trace through a system (the experiment driver).

:func:`replay` feeds every request of a :class:`~repro.workloads.trace.Trace`
into a :class:`~repro.systems.base.ReductionSystem`, materializing write
content through a :class:`~repro.workloads.content.ContentFactory`, and
returns the system's accounting report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..systems.accounting import SystemReport
from ..systems.base import ReductionSystem
from .content import ContentFactory
from .trace import OpKind, Trace

__all__ = ["ReplayResult", "replay"]


@dataclass
class ReplayResult:
    """Outcome of one trace replay."""

    report: SystemReport
    writes: int
    reads: int

    @property
    def measured_dedup(self) -> float:
        return self.report.reduction.dedup_ratio

    @property
    def measured_hit_rate(self) -> float:
        return self.report.cache_stats.hit_rate

    @property
    def measured_comp_ratio(self) -> float:
        return self.report.reduction.compression_ratio


def replay(
    system: ReductionSystem,
    trace: Trace,
    factory: Optional[ContentFactory] = None,
    flush: bool = True,
) -> ReplayResult:
    """Run ``trace`` through ``system`` and report.

    Requests are block-level (4 KB); the system's chunk size must match
    the block size for direct replay (the FIDR configuration).
    """
    factory = factory if factory is not None else ContentFactory()
    chunk_size = system.engine.chunker.chunk_size
    if factory.chunk_size != chunk_size:
        raise ValueError(
            f"content factory produces {factory.chunk_size}-byte blocks "
            f"but the system chunks at {chunk_size}"
        )
    writes = reads = 0
    for request in trace:
        if request.op == OpKind.WRITE:
            system.write(request.lba, factory.chunk(request.content_id))
            writes += 1
        else:
            system.read(request.lba, 1)
            reads += 1
    if flush:
        system.flush()
    return ReplayResult(report=system.report(), writes=writes, reads=reads)

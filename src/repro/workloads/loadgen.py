"""Concurrent load generator for the asyncio serving layer.

Drives N :class:`~repro.net.aserver.AsyncProtocolClient` connections
against one :class:`~repro.net.aserver.AsyncProtocolServer` with a
configurable read/write mix, verifies every read against the bytes the
generator itself wrote, and reports aggregate throughput plus latency
percentiles — the client's-eye view of the paper's §7.6 throughput
experiments.

Each client owns a disjoint LBA region (client ``i`` starts at
``i * lbas_per_client * blocks_per_chunk``), so read-back verification
is deterministic even though all clients run concurrently against the
shared backend.  Within a client, operations run sequentially (closed
loop, think time zero); concurrency comes from the client count, which
is how the paper's testbed scales offered load too.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..net.aserver import AsyncProtocolClient, AsyncProtocolServer
from ..systems.server import StorageServer

__all__ = ["LoadGenConfig", "LoadGenResult", "drive", "run_against"]


@dataclass
class LoadGenConfig:
    """Shape of the offered load."""

    clients: int = 8
    ops_per_client: int = 50
    read_fraction: float = 0.5
    #: chunks moved per operation (multi-chunk reads/writes exercise the
    #: v2 ``count`` field).
    chunks_per_op: int = 1
    #: distinct chunk-aligned LBAs in each client's private region.
    lbas_per_client: int = 16
    #: fraction of writes that repeat an earlier payload (dedup fodder).
    duplicate_fraction: float = 0.3
    seed: int = 0xF1D8
    protocol_version: int = 2

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError("need at least one client")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.lbas_per_client < self.chunks_per_op:
            raise ValueError("client region smaller than one operation")


@dataclass
class LoadGenResult:
    """Aggregate outcome of one load-generation run."""

    clients: int
    total_ops: int
    read_ops: int
    write_ops: int
    verified_reads: int
    elapsed_s: float
    bytes_written: int
    bytes_read: int
    latencies_ms: List[float] = field(repr=False, default_factory=list)
    #: The server's ``repro.stats/v1`` snapshot, scraped over the wire
    #: via the v2 STATS op after the fleet finishes (None if the scrape
    #: failed — e.g. the server vanished mid-teardown).
    server_stats: Optional[Dict[str, Any]] = field(repr=False, default=None)

    @property
    def throughput_ops(self) -> float:
        return self.total_ops / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def throughput_mb_s(self) -> float:
        moved = self.bytes_written + self.bytes_read
        return moved / 1e6 / self.elapsed_s if self.elapsed_s else 0.0

    def percentile(self, fraction: float) -> float:
        """Latency percentile in milliseconds (0 <= fraction <= 1)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def p50_ms(self) -> float:
        return self.percentile(0.50)

    @property
    def p99_ms(self) -> float:
        return self.percentile(0.99)

    def render(self) -> str:
        lines = [
            "concurrent serving load — client-side view",
            f"  clients          {self.clients}",
            f"  operations       {self.total_ops} "
            f"({self.write_ops} writes / {self.read_ops} reads)",
            f"  verified reads   {self.verified_reads}/{self.read_ops} "
            "byte-exact",
            f"  elapsed          {self.elapsed_s * 1e3:.1f} ms",
            f"  throughput       {self.throughput_ops:,.0f} ops/s "
            f"({self.throughput_mb_s:.1f} MB/s)",
            f"  latency p50/p99  {self.p50_ms:.2f} / {self.p99_ms:.2f} ms",
        ]
        if self.server_stats is not None:
            gauges = self.server_stats.get("gauges", {})
            lines.append(
                "  server (STATS)   "
                f"dedup {gauges.get('engine.dedup_ratio', 0.0):.3f}, "
                "compression "
                f"{gauges.get('engine.compression_ratio', 1.0):.3f}, "
                "reduction "
                f"{gauges.get('engine.reduction_factor', 0.0):.2f}x"
            )
        return "\n".join(lines)


@dataclass
class _ClientTally:
    reads: int = 0
    writes: int = 0
    verified: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    latencies_ms: List[float] = field(default_factory=list)


async def _run_client(
    index: int,
    host: str,
    port: int,
    config: LoadGenConfig,
    chunk_size: int,
    blocks_per_chunk: int,
) -> _ClientTally:
    rng = random.Random((config.seed << 8) ^ index)
    tally = _ClientTally()
    region_base = index * config.lbas_per_client * blocks_per_chunk
    span = config.lbas_per_client - config.chunks_per_op + 1
    written = {}  # chunk slot -> payload chunk
    pool = [rng.randbytes(chunk_size) for _ in range(8)]

    def make_chunk() -> bytes:
        if rng.random() < config.duplicate_fraction:
            return pool[rng.randrange(len(pool))]
        return rng.randbytes(chunk_size)

    async with await AsyncProtocolClient.connect(
        host, port, version=config.protocol_version
    ) as client:
        for _ in range(config.ops_per_client):
            slot = rng.randrange(span)
            lba = region_base + slot * blocks_per_chunk
            slots = range(slot, slot + config.chunks_per_op)
            do_read = (
                rng.random() < config.read_fraction
                and all(s in written for s in slots)
            )
            start = time.perf_counter()
            if do_read:
                data = await client.read(lba, config.chunks_per_op)
                tally.latencies_ms.append((time.perf_counter() - start) * 1e3)
                tally.reads += 1
                tally.bytes_read += len(data)
                expected = b"".join(written[s] for s in slots)
                if data == expected:
                    tally.verified += 1
            else:
                chunks = [make_chunk() for _ in slots]
                await client.write(lba, b"".join(chunks))
                tally.latencies_ms.append((time.perf_counter() - start) * 1e3)
                tally.writes += 1
                tally.bytes_written += chunk_size * len(chunks)
                for s, chunk in zip(slots, chunks):
                    written[s] = chunk
    return tally


async def drive(
    host: str,
    port: int,
    config: LoadGenConfig,
    *,
    chunk_size: int = 4096,
    blocks_per_chunk: int = 1,
) -> LoadGenResult:
    """Run the configured client fleet against a listening server."""
    start = time.perf_counter()
    tallies = await asyncio.gather(*(
        _run_client(i, host, port, config, chunk_size, blocks_per_chunk)
        for i in range(config.clients)
    ))
    elapsed = time.perf_counter() - start
    result = LoadGenResult(
        clients=config.clients,
        total_ops=sum(t.reads + t.writes for t in tallies),
        read_ops=sum(t.reads for t in tallies),
        write_ops=sum(t.writes for t in tallies),
        verified_reads=sum(t.verified for t in tallies),
        elapsed_s=elapsed,
        bytes_written=sum(t.bytes_written for t in tallies),
        bytes_read=sum(t.bytes_read for t in tallies),
    )
    for tally in tallies:
        result.latencies_ms.extend(tally.latencies_ms)
    result.server_stats = await _scrape_stats(host, port)
    return result


async def _scrape_stats(host: str, port: int) -> Optional[Dict[str, Any]]:
    """Fetch the server's live stats snapshot (best-effort).

    Always speaks v2 — even when the fleet ran v1 clients — because
    STATS is a v2-only op; a failure (server gone, connection refused)
    degrades to ``None`` rather than failing the run whose numbers are
    already collected.
    """
    try:
        async with await AsyncProtocolClient.connect(
            host, port, version=2
        ) as client:
            return await client.stats()
    except (ReproError, OSError):
        return None


def run_against(
    storage: StorageServer,
    config: Optional[LoadGenConfig] = None,
    *,
    queue_depth: int = 64,
    workers: int = 2,
    offload: bool = True,
    write_split_chunks: int = 64,
) -> LoadGenResult:
    """Start a server on a free port, drive the fleet, tear down.

    The synchronous entry point benchmarks and examples use; everything
    runs in one fresh event loop.  ``offload``/``write_split_chunks``
    pass through to :class:`~repro.net.aserver.AsyncProtocolServer`;
    backend parallelism is the *storage side's* knob — build the
    storage with ``SystemConfig(parallelism=N)`` to fan its pipeline
    stages out.
    """
    config = config if config is not None else LoadGenConfig()

    async def _main() -> LoadGenResult:
        async with AsyncProtocolServer(
            storage, queue_depth=queue_depth, workers=workers,
            offload=offload, write_split_chunks=write_split_chunks,
        ) as server:
            return await drive(
                server.host,
                server.port,
                config,
                chunk_size=storage.chunk_size,
                blocks_per_chunk=storage.system.engine.chunker.blocks_per_chunk,
            )

    return asyncio.run(_main())

"""Table-3 workload construction (paper §7.1).

The paper builds four workloads from trace portions using five factors:

1. pick a trace portion sized so a fixed small table cache sees the
   target hit rate,
2. replicate it to reach the evaluation volume,
3. systematically modify content across replicas so the aggregate dedup
   ratio equals a single replica's,
4. force 50% compressibility,
5. size the reduction table for 500 GB of unique compressed storage
   with a 2.8% in-memory cache.

:data:`WORKLOADS` encodes Table 3's four rows;
:func:`build_workload` applies the recipe at a configurable (scaled-down)
volume.  Factor 1's "portion" maps to the synthesizer's duplication
recency window (see :mod:`repro.workloads.synthetic`); factors 2-3 use
:meth:`~repro.workloads.trace.Trace.replicate`; factor 4 is the content
factory's compress fraction; factor 5 is the system's ``cache_lines`` /
``num_buckets`` ratio, exposed here as sizing helpers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Optional

from .synthetic import MAIL_PROFILE, WEBVM_PROFILE, TraceProfile, synthesize
from .trace import IoRequest, OpKind, Trace

__all__ = ["WorkloadSpec", "WORKLOADS", "build_workload", "cache_sizing"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table-3 row."""

    name: str
    profile: TraceProfile
    dedup_target: float  #: Table 3 "Dedup. ratio"
    comp_ratio: float  #: Table 3 "Comp. ratio" (stored fraction)
    hit_rate_target: float  #: Table 3 "Table cache hit rate"
    read_fraction: float = 0.0  #: 0.5 for Read-Mixed
    #: duplication-recency window (factor 1's portion size analogue):
    #: larger window → colder duplicate buckets → lower hit rate.
    reuse_window: int = 1024
    #: override of the profile's recency skew; 0 = uniform reuse over
    #: the window (coldest duplicates), None = keep the profile's.
    reuse_skew: Optional[float] = None


#: Table 3, scaled knobs.  Windows are tuned for the default experiment
#: scale (cache_lines ≈ 1024); tab03 measures the realized numbers.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "write-h": WorkloadSpec(
        name="Write-H",
        profile=MAIL_PROFILE,
        dedup_target=0.88,
        comp_ratio=0.50,
        hit_rate_target=0.90,
        reuse_window=700,
    ),
    "write-m": WorkloadSpec(
        name="Write-M",
        profile=MAIL_PROFILE,
        dedup_target=0.84,
        comp_ratio=0.50,
        hit_rate_target=0.81,
        reuse_window=2600,
        reuse_skew=0.0,
    ),
    "write-l": WorkloadSpec(
        name="Write-L",
        profile=WEBVM_PROFILE,
        dedup_target=0.431,
        comp_ratio=0.50,
        hit_rate_target=0.45,
        reuse_window=8000,
        reuse_skew=0.0,
    ),
    "read-mixed": WorkloadSpec(
        name="Read-Mixed",
        profile=MAIL_PROFILE,
        dedup_target=0.88,
        comp_ratio=0.50,
        hit_rate_target=0.90,
        read_fraction=0.5,
        reuse_window=700,
    ),
    # §3.2's profiling workloads (Figures 4-5, Tables 1-2): dedup and
    # compression both 50%.
    "profiling-write": WorkloadSpec(
        name="Write-only (profiling)",
        profile=MAIL_PROFILE,
        dedup_target=0.50,
        comp_ratio=0.50,
        hit_rate_target=0.75,
        reuse_window=1500,
        reuse_skew=0.2,
    ),
    "profiling-mixed": WorkloadSpec(
        name="Mixed read/write (profiling)",
        profile=MAIL_PROFILE,
        dedup_target=0.50,
        comp_ratio=0.50,
        hit_rate_target=0.75,
        read_fraction=0.5,
        reuse_window=1500,
        reuse_skew=0.2,
    ),
}


def build_workload(
    spec: WorkloadSpec,
    num_chunks: int = 20_000,
    replicas: int = 2,
    seed: int = 0,
) -> Trace:
    """Apply the five-factor recipe at ``num_chunks`` total volume.

    For Read-Mixed, half the requests are reads of uniformly random
    previously-written addresses (Table 3's definition).
    """
    if num_chunks < replicas:
        raise ValueError("workload smaller than the replica count")
    profile = replace(
        spec.profile,
        dedup_target=spec.dedup_target,
        reuse_window=spec.reuse_window,
    )
    if spec.reuse_skew is not None:
        profile = replace(profile, reuse_skew=spec.reuse_skew)
    write_budget = num_chunks
    if spec.read_fraction > 0:
        write_budget = max(1, int(num_chunks * (1 - spec.read_fraction)))
    base = synthesize(profile, max(1, write_budget // replicas), seed=seed)
    combined = base.replicate(replicas, lba_stride=profile.address_blocks)
    combined.name = f"{spec.name.lower()}-{num_chunks}"

    if spec.read_fraction <= 0:
        return combined

    # Interleave reads of random valid addresses among the writes.
    rng = random.Random(seed ^ 0xEAD)
    mixed = Trace(name=combined.name)
    written: list = []
    written_set = set()
    read_budget = num_chunks - write_budget
    writes_emitted = 0
    for request in combined.requests:
        mixed.append(request)
        if request.lba not in written_set:
            written_set.add(request.lba)
            written.append(request.lba)
        writes_emitted += 1
        # Keep the requested mix as we go (reads trail writes slightly
        # so every read has a valid target).
        while written and read_budget > 0 and (
            writes_emitted * spec.read_fraction
            > (len(mixed) - writes_emitted) * (1 - spec.read_fraction)
        ):
            mixed.append(IoRequest(OpKind.READ, rng.choice(written)))
            read_budget -= 1
    return mixed


def cache_sizing(
    unique_stored_bytes: int = 500 * 10**9,
    cache_fraction: float = 0.028,
    comp_ratio: float = 0.5,
    chunk_size: int = 4096,
) -> Dict[str, int]:
    """Factor 5: table and cache sizes for a target unique capacity.

    The paper assumes 500 GB of unique compressed storage and caches
    2.8% of the reduction table in memory.
    """
    from ..datared.hash_pbn import BUCKET_SIZE, buckets_for_capacity

    unique_logical = int(unique_stored_bytes / comp_ratio)
    buckets = buckets_for_capacity(unique_logical, chunk_size)
    cache_lines = max(1, int(buckets * cache_fraction))
    return {
        "num_buckets": buckets,
        "cache_lines": cache_lines,
        "table_bytes": buckets * BUCKET_SIZE,
        "cache_bytes": cache_lines * BUCKET_SIZE,
    }

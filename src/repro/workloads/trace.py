"""IO trace structures (paper §7.1).

Traces are block-level: each request touches one 4-KB block by LBA.
Because no public traces carry real data content (the paper's footnote
3), content is represented by an integer *content id* — two blocks with
the same id have byte-identical content, materialized on demand by
:mod:`repro.workloads.content`.  This is exactly the information the FIU
traces provide (block address + content hash).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

__all__ = ["OpKind", "IoRequest", "Trace"]


class OpKind:
    WRITE = "W"
    READ = "R"


@dataclass(frozen=True)
class IoRequest:
    """One 4-KB block IO."""

    op: str
    lba: int
    content_id: int = 0  #: identity of the written content (writes only)

    def __post_init__(self):
        if self.op not in (OpKind.WRITE, OpKind.READ):
            raise ValueError(f"unknown op {self.op!r}")
        if self.lba < 0:
            raise ValueError(f"negative LBA {self.lba}")


@dataclass
class Trace:
    """An ordered sequence of block IOs plus descriptive metadata."""

    name: str
    requests: List[IoRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[IoRequest]:
        return iter(self.requests)

    def append(self, request: IoRequest) -> None:
        self.requests.append(request)

    # -- derived properties -------------------------------------------------------
    @property
    def write_count(self) -> int:
        return sum(1 for request in self.requests if request.op == OpKind.WRITE)

    @property
    def read_count(self) -> int:
        return len(self.requests) - self.write_count

    def content_dedup_ratio(self) -> float:
        """Fraction of writes whose content was already written earlier
        in the trace — the trace's intrinsic deduplication opportunity."""
        seen = set()
        duplicates = 0
        writes = 0
        for request in self.requests:
            if request.op != OpKind.WRITE:
                continue
            writes += 1
            if request.content_id in seen:
                duplicates += 1
            else:
                seen.add(request.content_id)
        return duplicates / writes if writes else 0.0

    def address_footprint(self) -> int:
        """Distinct LBAs touched."""
        return len({request.lba for request in self.requests})

    def writes(self) -> Iterator[Tuple[int, int]]:
        """(lba, content_id) pairs of the write requests, in order."""
        for request in self.requests:
            if request.op == OpKind.WRITE:
                yield request.lba, request.content_id

    # -- (de)serialization --------------------------------------------------------------
    def dumps(self) -> str:
        """Compact text form: one ``op lba content`` line per request."""
        out = io.StringIO()
        out.write(f"# trace: {self.name}\n")
        for request in self.requests:
            out.write(f"{request.op} {request.lba} {request.content_id}\n")
        return out.getvalue()

    @classmethod
    def loads(cls, text: str) -> "Trace":
        name = "trace"
        requests: List[IoRequest] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# trace:"):
                    name = line.split(":", 1)[1].strip()
                continue
            op, lba, content = line.split()
            requests.append(IoRequest(op, int(lba), int(content)))
        return cls(name=name, requests=requests)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as handle:
            return cls.loads(handle.read())

    # -- transformations --------------------------------------------------------------------
    def replicate(
        self, copies: int, content_stride: int = 1 << 32, lba_stride: int = 0
    ) -> "Trace":
        """The paper's replication with systematic modification (§7.1
        factors 2-3): repeat the trace ``copies`` times, offsetting each
        replica's content ids so cross-replica duplication vanishes and
        the aggregate dedup ratio equals a single replica's.

        A non-zero ``lba_stride`` also shifts each replica's address
        space.  With modified content, replaying the same LBAs would
        turn every cross-replica write into an overwrite whose old chunk
        must be garbage-collected — churn the paper's workloads do not
        contain — so workload construction passes the trace's address
        footprint as the stride.
        """
        if copies < 1:
            raise ValueError("need at least one copy")
        combined = Trace(name=f"{self.name}x{copies}")
        for replica in range(copies):
            content_offset = replica * content_stride
            lba_offset = replica * lba_stride
            for request in self.requests:
                if request.op == OpKind.WRITE:
                    combined.append(
                        IoRequest(
                            request.op,
                            request.lba + lba_offset,
                            request.content_id + content_offset,
                        )
                    )
                else:
                    combined.append(
                        IoRequest(request.op, request.lba + lba_offset)
                    )
        return combined

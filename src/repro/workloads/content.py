"""Chunk content materialization with controlled compressibility.

The paper sets compressibility to 50% "by concatenating a 50%
compressible string to all trace requests" (§7.1 factor 4).  We do the
equivalent per chunk: a content id deterministically expands to a 4-KB
block whose leading fraction is pseudo-random (incompressible) and whose
tail is a repeating pattern (maximally compressible), so DEFLATE output
lands near the requested stored fraction.

Generation is deterministic in ``(content_id, compress_fraction)`` —
the same id always yields the same bytes, which is what makes content
ids a faithful stand-in for real duplicate data.  A bounded LRU memo
keeps repeated materialization cheap.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict
__all__ = ["ContentFactory"]


class ContentFactory:
    """Deterministic content_id → chunk-bytes expansion."""

    def __init__(
        self,
        chunk_size: int = 4096,
        compress_fraction: float = 0.5,
        cache_entries: int = 4096,
        seed: int = 0x51DE,
    ):
        if chunk_size < 64:
            raise ValueError("chunk_size too small")
        if not 0.0 < compress_fraction <= 1.0:
            raise ValueError("compress_fraction must be in (0, 1]")
        self.chunk_size = chunk_size
        self.compress_fraction = compress_fraction
        self.seed = seed
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._cache_entries = cache_entries

    def chunk(self, content_id: int) -> bytes:
        """The 4-KB block for ``content_id``."""
        cached = self._cache.get(content_id)
        if cached is not None:
            self._cache.move_to_end(content_id)
            return cached
        data = self._generate(content_id)
        self._cache[content_id] = data
        if len(self._cache) > self._cache_entries:
            self._cache.popitem(last=False)
        return data

    def _generate(self, content_id: int) -> bytes:
        rng = random.Random((content_id << 16) ^ self.seed)
        # DEFLATE keeps the random part nearly verbatim and collapses the
        # repeated tail, with a small header/length overhead we shave off
        # the random region so the stored fraction lands on target.
        random_bytes = max(0, int(self.chunk_size * self.compress_fraction) - 16)
        head = rng.randbytes(random_bytes)
        filler = (b"\xa5" * 64)
        tail_len = self.chunk_size - random_bytes
        tail = (filler * (tail_len // len(filler) + 1))[:tail_len]
        return head + tail

    def measured_ratio(self, content_id: int, level: int = 1) -> float:
        """Actual DEFLATE stored fraction of a generated chunk."""
        data = self.chunk(content_id)
        return len(zlib.compress(data, level)) / len(data)

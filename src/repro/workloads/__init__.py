"""Workload synthesis: traces, content, and the Table-3 recipe."""

from .content import ContentFactory
from .generator import WORKLOADS, WorkloadSpec, build_workload, cache_sizing
from .loadgen import LoadGenConfig, LoadGenResult, drive, run_against
from .runner import ReplayResult, replay
from .synthetic import MAIL_PROFILE, WEBVM_PROFILE, TraceProfile, synthesize
from .trace import IoRequest, OpKind, Trace

__all__ = [
    "ContentFactory",
    "IoRequest",
    "LoadGenConfig",
    "LoadGenResult",
    "MAIL_PROFILE",
    "OpKind",
    "ReplayResult",
    "Trace",
    "TraceProfile",
    "WEBVM_PROFILE",
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "cache_sizing",
    "drive",
    "replay",
    "run_against",
    "synthesize",
]

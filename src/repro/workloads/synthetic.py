"""FIU-like trace synthesis (paper §3.1, §7.1).

The paper builds workloads from FIU's mail-server and webVM traces [39].
Those traces provide block addresses and content hashes; since they are
not redistributable with content, we synthesize traces with the same
statistical knobs the paper's workload construction cares about:

* **content duplication** — each write reuses recently written content
  with probability ``dedup_target`` (FIU mail ≈ 0.85+, webVM ≈ 0.43),
  with Zipf-like skew toward the hottest content,
* **duplication recency** — reuse is drawn from a sliding window of the
  most recent distinct contents.  The window size is what controls the
  Hash-PBN *cache hit rate* downstream: duplicates of recent content
  find their bucket still cached, uniques land in uniformly random
  buckets of a table far larger than the cache.  (This mirrors the
  paper's factor 1: picking a trace portion to hit a target hit rate.)
* **address patterns** — short runs of sequential 4-KB writes starting
  at random offsets (mail is dominated by small random-ish writes; webVM
  is more sequential), which is what makes large chunking suffer
  read-modify-writes in Figure 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from .trace import IoRequest, OpKind, Trace

__all__ = ["TraceProfile", "MAIL_PROFILE", "WEBVM_PROFILE", "synthesize"]


@dataclass(frozen=True)
class TraceProfile:
    """Statistical shape of one synthesized trace."""

    name: str
    dedup_target: float  #: probability a write duplicates prior content
    reuse_window: int  #: distinct recent contents eligible for reuse
    reuse_skew: float  #: Zipf-ish exponent over the window (0 = uniform)
    address_blocks: int  #: LBA space, in 4-KB blocks
    run_min: int  #: shortest sequential write run
    run_max: int  #: longest sequential write run
    random_run_fraction: float  #: runs starting at a random LBA

    def __post_init__(self):
        if not 0.0 <= self.dedup_target < 1.0:
            raise ValueError("dedup_target must be in [0, 1)")
        if self.reuse_window < 1:
            raise ValueError("reuse window must be positive")
        if not 1 <= self.run_min <= self.run_max:
            raise ValueError("bad run bounds")
        if self.address_blocks < self.run_max:
            raise ValueError("address space smaller than a run")


#: FIU mail server: small scattered writes, heavy duplication of recent
#: content (mailbox copies, repeated attachments).
MAIL_PROFILE = TraceProfile(
    name="mail",
    dedup_target=0.88,
    reuse_window=1024,
    reuse_skew=0.8,
    address_blocks=1 << 20,
    run_min=1,
    run_max=4,
    random_run_fraction=0.75,
)

#: FIU webVM: moderate duplication, longer sequential bursts.
WEBVM_PROFILE = TraceProfile(
    name="webvm",
    dedup_target=0.431,
    reuse_window=8192,
    reuse_skew=0.4,
    address_blocks=1 << 20,
    run_min=4,
    run_max=16,
    random_run_fraction=0.45,
)


def synthesize(
    profile: TraceProfile, num_writes: int, seed: int = 0,
    first_content_id: int = 1,
) -> Trace:
    """Generate ``num_writes`` block writes following ``profile``."""
    if num_writes < 1:
        raise ValueError("need at least one write")
    rng = random.Random(seed)
    trace = Trace(name=f"{profile.name}-{num_writes}w-s{seed}")
    # Sliding window of recent distinct content ids as a ring buffer
    # (O(1) insert and age-biased sampling).
    recent: list = []
    head = 0  # next overwrite position once the ring is full
    next_content = first_content_id
    cursor = rng.randrange(profile.address_blocks)

    def pick_recent() -> int:
        # Zipf-ish: bias toward the newest entries of the window.
        u = rng.random() ** (1.0 + profile.reuse_skew)
        age = min(int(u * len(recent)), len(recent) - 1)
        return recent[(head - 1 - age) % len(recent)]

    produced = 0
    while produced < num_writes:
        if rng.random() < profile.random_run_fraction or cursor >= profile.address_blocks:
            cursor = rng.randrange(profile.address_blocks)
        run = rng.randint(profile.run_min, profile.run_max)
        run = min(run, num_writes - produced, profile.address_blocks - cursor)
        for _ in range(run):
            if recent and rng.random() < profile.dedup_target:
                content = pick_recent()
            else:
                content = next_content
                next_content += 1
                if len(recent) < profile.reuse_window:
                    recent.append(content)  # fill phase: oldest stays at 0
                else:
                    recent[head] = content
                    head = (head + 1) % len(recent)
            trace.append(IoRequest(OpKind.WRITE, cursor, content))
            cursor += 1
            produced += 1
    return trace

"""Lock discipline primitives shared by the stack and its analysis tools.

The storage stack's concurrency contract (DESIGN.md §5.2) is enforced,
not assumed: every lock guarding shared metadata is a
:class:`DisciplinedLock`, which — besides being a plain reentrant lock —
registers itself in a per-thread *held set* on acquire and removes
itself on release.  Three consumers read that set:

* the repro-lint rule **R002** checks statically that fields annotated
  ``# guarded-by: <lock>`` are only mutated inside a ``with`` block on
  that lock (or in a helper annotated ``# repro-lint: holds <lock>``);
* the runtime race detector (:mod:`repro.analysis.racecheck`) records
  the held set on every access to a watched object and reports when two
  threads touch the same field with **disjoint** lock sets and at least
  one write — the classic Eraser lock-set algorithm;
* the runtime **lockdep** validator (this module, modelled on the Linux
  kernel's lock validator) records, when armed, every *held-set →
  acquired* edge into a process-global order graph and reports cycles,
  declared-rank inversions, and unranked locks on the spot — one bad
  interleaving seen once proves the deadlock, no hang required.

Lock hierarchy
--------------
Locks are grouped into **lock classes** by name (every
``DisciplinedLock("dedup-engine")`` instance — one per shard — belongs
to the class ``dedup-engine``), and the classes carry a declared total
order in :data:`LOCK_ORDER` (DESIGN.md §5.8):

    ``sharded-router`` (10) < ``dedup-engine`` (20) < ``shard-seal`` (30)

A thread may only acquire a lock of *higher* rank than every lock it
already holds; re-acquiring the same lock object (reentrancy) is always
fine.  The static twin of this check is ``repro.analysis.lockgraph``
plus repro-lint R011; the runtime twin is armed with ``REPRO_LOCKDEP=1``
(or :func:`enable_lockdep`) and costs one module-global load per
acquire when disarmed — proven by test, like the race detector.

The held-set bookkeeping is two ``dict`` operations per acquire/release
pair on an uncontended ``RLock``; it is cheap enough to stay on in
production, which is what makes the runtime detectors trustworthy —
they observe the real locks, not shadow ones.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Type

__all__ = [
    "LOCK_ORDER",
    "DisciplinedLock",
    "LockdepViolation",
    "disable_lockdep",
    "enable_lockdep",
    "held_locks",
    "lockdep_dump_json",
    "lockdep_edges",
    "lockdep_enabled",
    "lockdep_violations",
    "reset_lockdep",
]

#: The declared lock hierarchy: lock-class name → rank.  A thread may
#: only acquire a lock whose rank is strictly greater than the rank of
#: every DisciplinedLock it already holds (reentrant re-acquire of the
#: same object excepted).  Register every new lock class here — an
#: unregistered name constructs an *unranked* lock, which both
#: ``repro.analysis.lockgraph`` and repro-lint R011 flag.  Gaps in the
#: numbering are deliberate: future tiers (e.g. the durability
#: journal's lock) slot in without renumbering.
LOCK_ORDER: Dict[str, int] = {
    # The sharded engine's router: LBA→shard directory and scatter
    # orchestration.  Outermost — held while shard engine locks are
    # taken (stats merge, cross-shard trim, flush/GC sweeps).
    "sharded-router": 10,
    # A DedupEngine's metadata lock (one instance per shard).  Guards
    # the Hash-PBN table, PBN/LBA maps, containers, and stats.
    "dedup-engine": 20,
    # The factory's seal-callback serializer: shard worker threads seal
    # containers while holding their shard's engine lock.  Innermost.
    "shard-seal": 30,
}


class _HeldState(threading.local):
    """Per-thread map of held DisciplinedLocks to their entry counts."""

    def __init__(self) -> None:
        self.held: Dict["DisciplinedLock", int] = {}


_state = _HeldState()


def held_locks() -> FrozenSet["DisciplinedLock"]:
    """The :class:`DisciplinedLock`\\ s the calling thread holds now."""
    return frozenset(_state.held)


@dataclass(frozen=True)
class LockdepViolation:
    """One lock-order violation observed by the runtime validator."""

    kind: str  #: ``"cycle"`` | ``"rank"`` | ``"unranked"``
    acquired: str  #: lock class being acquired at the violation
    held: Tuple[str, ...]  #: lock classes the thread held at that moment
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "acquired": self.acquired,
            "held": list(self.held),
            "message": self.message,
        }


class _LockDep:
    """Process-global observed lock-order graph (armed mode only).

    Nodes are lock classes (names); an edge ``A → B`` means some thread
    acquired a ``B`` lock while holding an ``A`` lock.  Each edge insert
    runs an incremental cycle check (is ``A`` reachable from ``B``?), a
    declared-rank check, and an unranked-class check, so a violation is
    reported at the first acquisition that proves it — the Linux
    lockdep property: one clean run of a bad order is enough.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: held-class → acquired-class → observation count.
        self._edges: Dict[str, Dict[str, int]] = {}
        self._violations: List[LockdepViolation] = []
        self._flagged_unranked: Set[str] = set()
        #: (held, acquired) pairs already reported, to keep one
        #: violation per bad edge rather than one per acquisition.
        self._flagged_edges: Set[Tuple[str, str]] = set()

    # -- recording ---------------------------------------------------------

    def record(
        self,
        held: Iterable["DisciplinedLock"],
        acquired: "DisciplinedLock",
    ) -> None:
        held_list = list(held)
        held_names = tuple(sorted(lock.name for lock in held_list))
        with self._lock:
            if (
                acquired.rank is None
                and acquired.name not in self._flagged_unranked
            ):
                self._flagged_unranked.add(acquired.name)
                self._violations.append(
                    LockdepViolation(
                        kind="unranked",
                        acquired=acquired.name,
                        held=held_names,
                        message=(
                            f"lock class {acquired.name!r} has no rank; "
                            "register it in repro.sync.LOCK_ORDER or pass "
                            "rank= explicitly"
                        ),
                    )
                )
            for other in held_list:
                self._record_edge(other, acquired, held_names)

    def _record_edge(
        self,
        held_lock: "DisciplinedLock",
        acquired: "DisciplinedLock",
        held_names: Tuple[str, ...],
    ) -> None:
        source, target = held_lock.name, acquired.name
        key = (source, target)
        targets = self._edges.setdefault(source, {})
        is_new = target not in targets
        targets[target] = targets.get(target, 0) + 1
        if key in self._flagged_edges:
            return
        if source == target:
            # Same class, different instance (reentrant re-acquire of
            # the same object never reaches the recorder): two threads
            # doing this in opposite instance orders would deadlock.
            self._flagged_edges.add(key)
            self._violations.append(
                LockdepViolation(
                    kind="cycle",
                    acquired=target,
                    held=held_names,
                    message=(
                        f"two locks of class {target!r} held at once; "
                        "same-class nesting has no defined instance order"
                    ),
                )
            )
            return
        if (
            held_lock.rank is not None
            and acquired.rank is not None
            and held_lock.rank >= acquired.rank
        ):
            self._flagged_edges.add(key)
            self._violations.append(
                LockdepViolation(
                    kind="rank",
                    acquired=target,
                    held=held_names,
                    message=(
                        f"acquired {target!r} (rank {acquired.rank}) while "
                        f"holding {source!r} (rank {held_lock.rank}); the "
                        "declared order requires strictly increasing ranks"
                    ),
                )
            )
            return
        if is_new:
            path = self._find_path(target, source)
            if path is not None:
                self._flagged_edges.add(key)
                chain = " -> ".join(path + [target])
                self._violations.append(
                    LockdepViolation(
                        kind="cycle",
                        acquired=target,
                        held=held_names,
                        message=(
                            f"acquiring {target!r} while holding {source!r} "
                            f"closes the lock-order cycle {chain}"
                        ),
                    )
                )

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path ``start → … → goal`` in the observed edge graph."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for neighbor in self._edges.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append((neighbor, path + [neighbor]))
        return None

    # -- inspection --------------------------------------------------------

    def edges(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                source: dict(targets)
                for source, targets in self._edges.items()
            }

    def violations(self) -> List[LockdepViolation]:
        with self._lock:
            return list(self._violations)

    def clear(self) -> None:
        with self._lock:
            self._edges.clear()
            self._violations.clear()
            self._flagged_unranked.clear()
            self._flagged_edges.clear()


#: The armed validator, or ``None`` when lockdep is off.  Keeping the
#: disarmed representation at ``None`` (rather than a no-op object with
#: a method call) holds the disarmed acquire cost to one module-global
#: load plus an ``is not None`` test — the zero-overhead-when-unset
#: guarantee the overhead test pins.
_lockdep: Optional[_LockDep] = (
    _LockDep() if os.environ.get("REPRO_LOCKDEP") else None
)


def lockdep_enabled() -> bool:
    """Whether the runtime lock-order validator is armed."""
    return _lockdep is not None


def enable_lockdep() -> None:
    """Arm the validator (idempotent; keeps already-recorded edges)."""
    global _lockdep
    if _lockdep is None:
        _lockdep = _LockDep()


def disable_lockdep() -> None:
    """Disarm the validator and drop its graph."""
    global _lockdep
    _lockdep = None


def reset_lockdep() -> None:
    """Forget all recorded edges and violations (stays armed if armed)."""
    if _lockdep is not None:
        _lockdep.clear()


def lockdep_edges() -> Dict[str, Dict[str, int]]:
    """Observed ``held-class → acquired-class → count`` edges so far."""
    return _lockdep.edges() if _lockdep is not None else {}


def lockdep_violations() -> List[LockdepViolation]:
    """All lock-order violations observed since the last reset."""
    return _lockdep.violations() if _lockdep is not None else []


def lockdep_dump_json(path: str) -> None:
    """Write the observed order graph as a JSON artifact.

    ``python -m repro.analysis lockgraph --observed <path>`` merges
    these runtime edges with the static graph into one report.
    """
    payload = {
        "version": 1,
        "tool": "lockdep",
        "edges": [
            {"held": source, "acquired": target, "count": count}
            for source, targets in sorted(lockdep_edges().items())
            for target, count in sorted(targets.items())
        ],
        "violations": [v.as_dict() for v in lockdep_violations()],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


class DisciplinedLock:
    """A named, ranked reentrant lock that tracks which threads hold it.

    Use exactly like ``threading.RLock``::

        lock = DisciplinedLock("dedup-engine")
        with lock:
            ...  # held_locks() includes `lock` here

    Reentrant acquisition is counted, so the lock leaves the holder's
    held set only when the outermost ``with`` exits.

    ``name`` doubles as the lock's *class* in the declared hierarchy:
    :attr:`rank` resolves from :data:`LOCK_ORDER` unless passed
    explicitly (tests and fixtures build ad-hoc hierarchies that way).
    A lock whose name is unregistered gets ``rank=None`` and is flagged
    by lockgraph/R011 and, when armed, by runtime lockdep.
    """

    def __init__(self, name: str, rank: Optional[int] = None):
        self.name = name
        self.rank = rank if rank is not None else LOCK_ORDER.get(name)
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            held = _state.held
            lockdep = _lockdep
            if lockdep is not None and self not in held:
                lockdep.record(held, self)
            held[self] = held.get(self, 0) + 1
        return acquired

    def release(self) -> None:
        # Release the underlying lock *first*: a non-owner release
        # raises RuntimeError there, and mutating the held set before
        # that check would corrupt the caller thread's bookkeeping on
        # the way to the exception (the PR-8 satellite regression).
        self._lock.release()
        held = _state.held
        depth = held.get(self, 0)
        if depth <= 1:
            held.pop(self, None)
        else:
            held[self] = depth - 1

    def __enter__(self) -> "DisciplinedLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def held_by_me(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return self in _state.held

    def __repr__(self) -> str:
        rank = f", rank={self.rank}" if self.rank is not None else ""
        return f"DisciplinedLock({self.name!r}{rank})"

"""Lock discipline primitives shared by the stack and its analysis tools.

The storage stack's concurrency contract (DESIGN.md §5.2) is enforced,
not assumed: every lock guarding shared metadata is a
:class:`DisciplinedLock`, which — besides being a plain reentrant lock —
registers itself in a per-thread *held set* on acquire and removes
itself on release.  Two consumers read that set:

* the repro-lint rule **R002** checks statically that fields annotated
  ``# guarded-by: <lock>`` are only mutated inside a ``with`` block on
  that lock (or in a helper annotated ``# repro-lint: holds <lock>``);
* the runtime race detector (:mod:`repro.analysis.racecheck`) records
  the held set on every access to a watched object and reports when two
  threads touch the same field with **disjoint** lock sets and at least
  one write — the classic Eraser lock-set algorithm.

The held-set bookkeeping is two ``dict`` operations per acquire/release
pair on an uncontended ``RLock``; it is cheap enough to stay on in
production, which is what makes the runtime detector trustworthy — it
observes the real locks, not shadow ones.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Dict, FrozenSet, Optional, Type

__all__ = ["DisciplinedLock", "held_locks"]


class _HeldState(threading.local):
    """Per-thread map of held DisciplinedLocks to their entry counts."""

    def __init__(self) -> None:
        self.held: Dict["DisciplinedLock", int] = {}


_state = _HeldState()


def held_locks() -> FrozenSet["DisciplinedLock"]:
    """The :class:`DisciplinedLock`\\ s the calling thread holds now."""
    return frozenset(_state.held)


class DisciplinedLock:
    """A named reentrant lock that tracks which threads hold it.

    Use exactly like ``threading.RLock``::

        lock = DisciplinedLock("dedup-engine")
        with lock:
            ...  # held_locks() includes `lock` here

    Reentrant acquisition is counted, so the lock leaves the holder's
    held set only when the outermost ``with`` exits.
    """

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _state.held[self] = _state.held.get(self, 0) + 1
        return acquired

    def release(self) -> None:
        depth = _state.held.get(self, 0)
        if depth <= 1:
            _state.held.pop(self, None)
        else:
            _state.held[self] = depth - 1
        self._lock.release()

    def __enter__(self) -> "DisciplinedLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def held_by_me(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return self in _state.held

    def __repr__(self) -> str:
        return f"DisciplinedLock({self.name!r})"

"""The simplified storage access protocol (paper §6.2).

The prototype speaks "a simplified protocol (instead of a complete
protocol like iSCSI)": requests carry an operation type, an LBA, and
data; the flow is write→ack and read→ack-with-data.  This module
implements that wire format and both endpoints:

* frame encoding/decoding with length prefixes and a CRC (corrupt or
  truncated frames are detected, never mis-parsed),
* :class:`ProtocolServer` — decodes request frames, drives a
  :class:`~repro.systems.server.StorageServer`, encodes acks,
* :class:`ProtocolClient` — the mirror side, with a blocking-style API
  over any byte transport.

The encoding is deliberately small (the paper's point): a 16-byte
header is all the NIC's protocol layer must parse before acting.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional

from ..systems.server import StorageServer

__all__ = [
    "Op",
    "Frame",
    "encode_frame",
    "FrameDecoder",
    "ProtocolError",
    "ProtocolServer",
    "ProtocolClient",
]

#: header: magic, op, flags, reserved, lba, payload length, crc32(payload)
_HEADER = struct.Struct(">BBBBQII")
_MAGIC = 0xF1


class Op:
    WRITE = 1
    READ = 2
    WRITE_ACK = 3
    READ_ACK = 4
    ERROR = 5


class ProtocolError(ValueError):
    """A malformed or corrupt frame."""


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    op: int
    lba: int
    payload: bytes = b""
    flags: int = 0


def encode_frame(op: int, lba: int, payload: bytes = b"", flags: int = 0) -> bytes:
    """Serialize one frame."""
    if op not in (Op.WRITE, Op.READ, Op.WRITE_ACK, Op.READ_ACK, Op.ERROR):
        raise ProtocolError(f"unknown op {op}")
    if lba < 0:
        raise ProtocolError("negative LBA")
    header = _HEADER.pack(
        _MAGIC, op, flags, 0, lba, len(payload), zlib.crc32(payload)
    )
    return header + payload


class FrameDecoder:
    """Incremental decoder over a byte stream (frames may arrive split
    or coalesced, as on a real TCP stream)."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Append stream bytes; returns every complete frame."""
        self._buffer += data
        frames: List[Frame] = []
        while True:
            frame = self._try_decode()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_decode(self) -> Optional[Frame]:
        if len(self._buffer) < _HEADER.size:
            return None
        magic, op, flags, _, lba, length, crc = _HEADER.unpack_from(
            self._buffer, 0
        )
        if magic != _MAGIC:
            raise ProtocolError("bad magic: stream out of sync")
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[_HEADER.size : end])
        if zlib.crc32(payload) != crc:
            raise ProtocolError("payload CRC mismatch")
        del self._buffer[:end]
        if op not in (Op.WRITE, Op.READ, Op.WRITE_ACK, Op.READ_ACK, Op.ERROR):
            raise ProtocolError(f"unknown op {op}")
        return Frame(op=op, lba=lba, payload=payload, flags=flags)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


class ProtocolServer:
    """Server endpoint: request frames in, ack frames out.

    Reads use the frame's ``flags`` field as the chunk count (the
    protocol's length field, §6.2: "the requested address (i.e., LBA)
    and data").
    """

    def __init__(self, server: StorageServer):
        self.server = server
        self._decoder = FrameDecoder()
        self.requests_served = 0

    def handle_bytes(self, data: bytes) -> bytes:
        """Feed stream bytes; returns the concatenated response frames."""
        responses = []
        for frame in self._decoder.feed(data):
            responses.append(self._handle(frame))
        return b"".join(responses)

    def _handle(self, frame: Frame) -> bytes:
        self.requests_served += 1
        if frame.op == Op.WRITE:
            if not frame.payload:
                return encode_frame(Op.ERROR, frame.lba, b"empty write")
            self.server.write(frame.lba, frame.payload)
            # §7.6.1: the ack is immediate — data is durable in the
            # (battery-backed) NIC buffer, not yet reduced.
            return encode_frame(Op.WRITE_ACK, frame.lba)
        if frame.op == Op.READ:
            num_chunks = max(1, frame.flags)
            data = self.server.read(frame.lba, num_chunks)
            return encode_frame(Op.READ_ACK, frame.lba, data)
        return encode_frame(Op.ERROR, frame.lba, b"unexpected op")


class ProtocolClient:
    """Client endpoint with a call-style API over a request function.

    ``transport`` is any callable ``bytes -> bytes`` (e.g. a
    :meth:`ProtocolServer.handle_bytes` bound method, or a socket shim).
    """

    def __init__(self, transport):
        self._transport = transport
        self._decoder = FrameDecoder()

    def _roundtrip(self, request: bytes) -> Frame:
        frames = self._decoder.feed(self._transport(request))
        if not frames:
            raise ProtocolError("no response frame")
        return frames[0]

    def write(self, lba: int, payload: bytes) -> None:
        response = self._roundtrip(encode_frame(Op.WRITE, lba, payload))
        if response.op != Op.WRITE_ACK:
            raise ProtocolError(
                f"write failed: {response.payload.decode(errors='replace')}"
            )

    def read(self, lba: int, num_chunks: int = 1) -> bytes:
        response = self._roundtrip(
            encode_frame(Op.READ, lba, flags=num_chunks)
        )
        if response.op != Op.READ_ACK:
            raise ProtocolError(
                f"read failed: {response.payload.decode(errors='replace')}"
            )
        return response.payload

"""The simplified storage access protocol (paper §6.2), versions 1 and 2.

The prototype speaks "a simplified protocol (instead of a complete
protocol like iSCSI)": requests carry an operation type, an LBA, and
data; the flow is write→ack and read→ack-with-data.  This module
implements that wire format and both endpoints:

* frame encoding/decoding with length prefixes and a CRC (corrupt or
  truncated frames are detected, never mis-parsed, and the decoder
  resynchronizes on the next magic byte so one bad frame cannot wedge
  a connection),
* :class:`ProtocolServer` — decodes request frames, drives a
  :class:`~repro.systems.server.StorageServer`, encodes acks,
* :class:`ProtocolClient` — the mirror side, with a blocking-style API
  over any byte transport.

Two header versions coexist on the wire, distinguished by magic byte:

* **v1** (16 bytes, magic ``0xF1``): op, flags, LBA, length, CRC.  Reads
  smuggle their chunk count through the 1-byte ``flags`` field, so they
  cap at 255 chunks and responses carry no correlation id.
* **v2** (28 bytes, magic ``0xF2``): adds a 32-bit ``request_id`` (so a
  pipelined client can match out-of-order responses) and a dedicated
  32-bit ``count`` field, freeing ``flags`` to be actual flags.

Endpoints answer in the version the request arrived in, so a v2 server
is bidirectionally compatible with v1 peers.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from .. import obs as _obs
from ..obs.metrics import MetricsRegistry
from ..errors import (
    ErrorCode,
    ProtocolError,
    ReproError,
    encode_error_payload,
    error_code_for,
    raise_for_error_payload,
)
from ..systems.server import StorageServer

__all__ = [
    "Op",
    "Frame",
    "encode_frame",
    "encode_frame_v2",
    "encode_reply",
    "FrameDecoder",
    "ProtocolError",
    "ProtocolServer",
    "ProtocolClient",
    "MAX_PAYLOAD",
]

#: v1 header: magic, op, flags, reserved, lba, payload length, crc32(payload)
_HEADER_V1 = struct.Struct(">BBBBQII")
#: v2 header: magic, op, flags, reserved, request_id, count, lba, length, crc
_HEADER_V2 = struct.Struct(">BBBBIIQII")
_MAGIC_V1 = 0xF1
_MAGIC_V2 = 0xF2
_MAGICS = (_MAGIC_V1, _MAGIC_V2)

#: Upper bound on a frame payload; a "length" beyond this is treated as
#: stream corruption rather than waited for (it would stall the decoder
#: on gigabytes that are never coming).
MAX_PAYLOAD = 64 * 1024 * 1024


class Op:
    WRITE = 1
    READ = 2
    WRITE_ACK = 3
    READ_ACK = 4
    ERROR = 5
    #: v2-only: scrape the server's live metrics snapshot
    #: (``repro.stats/v1`` JSON).  A v1 STATS request is answered with a
    #: structured ``UNSUPPORTED_OP`` error, never a wedge.
    STATS = 6
    STATS_ACK = 7
    #: v2-only: drop ``count`` chunk mappings starting at ``lba``
    #: (TRIM/discard).  The scatter-gather router uses it to evict an
    #: LBA's stale mapping from a backend the LBA moved away from; a v1
    #: TRIM gets the same structured ``UNSUPPORTED_OP`` as STATS.
    TRIM = 8
    TRIM_ACK = 9
    #: v2-only: snapshot management.  The request payload is JSON —
    #: ``{"action": "create" | "delete" | "list" | "read", "name": ...}``
    #: — with ``read`` additionally using the header's ``lba``/``count``
    #: fields.  The ack payload is JSON for the management actions
    #: (pinned/reclaimed chunk count, name list) and raw chunk bytes for
    #: ``read``.  A v1 SNAP gets the same structured ``UNSUPPORTED_OP``
    #: as STATS/TRIM.
    SNAP = 10
    SNAP_ACK = 11


_KNOWN_OPS = (
    Op.WRITE, Op.READ, Op.WRITE_ACK, Op.READ_ACK, Op.ERROR,
    Op.STATS, Op.STATS_ACK, Op.TRIM, Op.TRIM_ACK, Op.SNAP, Op.SNAP_ACK,
)


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame.

    ``count`` is the v2 explicit chunk count; it stays ``None`` on v1
    frames, where reads encode the count in ``flags`` — use
    :attr:`read_count` for the version-independent value.
    """

    op: int
    lba: int
    payload: bytes = b""
    flags: int = 0
    version: int = 1
    request_id: int = 0
    count: Optional[int] = None

    @property
    def read_count(self) -> int:
        """The chunk count of a READ, whichever header carried it."""
        if self.count is not None:
            return max(1, self.count)
        return max(1, self.flags)


def _check_frame_fields(op: int, lba: int) -> None:
    if op not in _KNOWN_OPS:
        raise ProtocolError(f"unknown op {op}")
    if lba < 0:
        raise ProtocolError("negative LBA")


def encode_frame(op: int, lba: int, payload: bytes = b"", flags: int = 0) -> bytes:
    """Serialize one v1 frame (the pre-v2 wire format, unchanged)."""
    _check_frame_fields(op, lba)
    header = _HEADER_V1.pack(
        _MAGIC_V1, op, flags, 0, lba, len(payload), zlib.crc32(payload)
    )
    return header + payload


def encode_frame_v2(
    op: int,
    lba: int,
    payload: bytes = b"",
    *,
    request_id: int = 0,
    count: int = 0,
    flags: int = 0,
) -> bytes:
    """Serialize one v2 frame (request id + dedicated count field)."""
    _check_frame_fields(op, lba)
    if not 0 <= request_id < 1 << 32:
        raise ProtocolError(f"request_id {request_id} outside 32 bits")
    if not 0 <= count < 1 << 32:
        raise ProtocolError(f"count {count} outside 32 bits")
    header = _HEADER_V2.pack(
        _MAGIC_V2, op, flags, 0, request_id, count,
        lba, len(payload), zlib.crc32(payload),
    )
    return header + payload


def encode_reply(request: Frame, op: int, lba: int, payload: bytes = b"") -> bytes:
    """Encode a response in the same version the request arrived in."""
    if request.version == 2:
        return encode_frame_v2(op, lba, payload, request_id=request.request_id)
    return encode_frame(op, lba, payload)


class FrameDecoder:
    """Incremental decoder over a byte stream (frames may arrive split
    or coalesced, as on a real TCP stream).

    Corruption never wedges the stream: a bad magic byte makes the
    decoder scan forward to the next plausible header, and a CRC
    mismatch or unknown op discards exactly the offending frame, so the
    next :meth:`feed` resumes decoding from clean bytes.

    Protocol-level events that used to vanish into the resync logic are
    counted into ``registry`` (default: the process registry):
    ``proto.resync_total`` for corruption recoveries and
    ``proto.frames_v1_total`` / ``proto.frames_v2_total`` for decoded
    frames by wire version.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._buffer = bytearray()
        reg = registry if registry is not None else _obs.get_registry()
        self._resync_total = reg.counter("proto.resync_total")
        self._frames_v1 = reg.counter("proto.frames_v1_total")
        self._frames_v2 = reg.counter("proto.frames_v2_total")

    def feed(self, data: bytes) -> List[Frame]:
        """Append stream bytes; returns every complete frame.

        Raises :class:`ProtocolError` on the first corrupt frame (after
        resynchronizing the buffer past it); frames decoded later in the
        same call are lost to the caller, so servers should prefer
        :meth:`events`, which reports errors in-line instead of raising.
        """
        frames: List[Frame] = []
        for event in self.events(data):
            if isinstance(event, ProtocolError):
                raise event
            frames.append(event)
        return frames

    def events(self, data: bytes) -> List[Union[Frame, ProtocolError]]:
        """Append stream bytes; returns frames and decode errors in wire
        order, resynchronizing after each error."""
        self._buffer += data
        out: List[Union[Frame, ProtocolError]] = []
        while True:
            try:
                frame = self._try_decode()
            except ProtocolError as error:
                out.append(error)
                continue
            if frame is None:
                return out
            out.append(frame)

    def _resync(self, skip: int) -> None:
        """Drop ``skip`` bytes, then everything up to the next magic."""
        self._resync_total.inc()
        del self._buffer[:skip]
        for index, byte in enumerate(self._buffer):
            if byte in _MAGICS:
                del self._buffer[:index]
                return
        self._buffer.clear()

    def _try_decode(self) -> Optional[Frame]:
        if not self._buffer:
            return None
        magic = self._buffer[0]
        if magic == _MAGIC_V1:
            header = _HEADER_V1
        elif magic == _MAGIC_V2:
            header = _HEADER_V2
        else:
            self._resync(1)
            raise ProtocolError("bad magic: stream out of sync")
        if len(self._buffer) < header.size:
            return None
        if magic == _MAGIC_V1:
            _, op, flags, _, lba, length, crc = header.unpack_from(self._buffer)
            request_id, count, version = 0, None, 1
        else:
            (_, op, flags, _, request_id, count, lba, length, crc
             ) = header.unpack_from(self._buffer)
            version = 2
        if length > MAX_PAYLOAD:
            self._resync(1)
            raise ProtocolError(f"implausible payload length {length}")
        end = header.size + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[header.size : end])
        del self._buffer[:end]
        if zlib.crc32(payload) != crc:
            raise ProtocolError("payload CRC mismatch")
        if op not in _KNOWN_OPS:
            raise ProtocolError(f"unknown op {op}")
        if version == 1:
            self._frames_v1.inc()
        else:
            self._frames_v2.inc()
        return Frame(
            op=op, lba=lba, payload=payload, flags=flags,
            version=version, request_id=request_id, count=count,
        )

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


class ProtocolServer:
    """Server endpoint: request frames in, ack frames out.

    :meth:`handle_frame` is the transport-independent dispatch used by
    both this synchronous endpoint and the asyncio serving layer
    (:class:`~repro.net.aserver.AsyncProtocolServer`); it answers in the
    request's own protocol version and converts every storage-stack
    exception into a structured ``Op.ERROR`` frame.
    """

    def __init__(
        self,
        server: StorageServer,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.server = server
        self.registry = registry if registry is not None else _obs.get_registry()
        self._decoder = FrameDecoder(self.registry)
        self._v1_downgrades = self.registry.counter("proto.v1_downgrades_total")
        self.requests_served = 0
        self.frames_rejected = 0

    def handle_bytes(self, data: bytes) -> bytes:
        """Feed stream bytes; returns the concatenated response frames.

        Corrupt frames are answered with an ``Op.ERROR`` frame (code
        ``CORRUPT_FRAME``) rather than raised, so one bad client cannot
        crash the serving loop.
        """
        responses = []
        for event in self._decoder.events(data):
            if isinstance(event, ProtocolError):
                self.frames_rejected += 1
                responses.append(encode_frame(
                    Op.ERROR, 0,
                    encode_error_payload(ErrorCode.CORRUPT_FRAME, str(event)),
                ))
            else:
                responses.append(self.handle_frame(event))
        return b"".join(responses)

    def handle_frame(self, frame: Frame) -> bytes:
        """Dispatch one request frame; returns the encoded response."""
        self.requests_served += 1
        if frame.version == 1:
            # A v1 peer on a v2 server: the session works, but count the
            # downgrade so operators can see legacy clients linger.
            self._v1_downgrades.inc()
        try:
            if frame.op == Op.WRITE:
                if not frame.payload:
                    raise ProtocolError("empty write")
                self.server.write(frame.lba, frame.payload)
                # §7.6.1: the ack is immediate — data is durable in the
                # (battery-backed) NIC buffer, not yet reduced.
                return encode_reply(frame, Op.WRITE_ACK, frame.lba)
            if frame.op == Op.READ:
                data = self.server.read(frame.lba, frame.read_count)
                return encode_reply(frame, Op.READ_ACK, frame.lba, data)
            if frame.op == Op.STATS:
                if frame.version < 2:
                    # Old clients must get a well-formed typed error, not
                    # a dropped connection (v1<->v2 interop guarantee).
                    return encode_reply(
                        frame, Op.ERROR, frame.lba,
                        encode_error_payload(
                            ErrorCode.UNSUPPORTED_OP,
                            "STATS requires protocol v2",
                        ),
                    )
                payload = json.dumps(
                    _obs.snapshot(self.registry),
                    separators=(",", ":"),
                    allow_nan=False,
                ).encode("utf-8")
                return encode_reply(frame, Op.STATS_ACK, 0, payload)
            if frame.op == Op.TRIM:
                if frame.version < 2:
                    return encode_reply(
                        frame, Op.ERROR, frame.lba,
                        encode_error_payload(
                            ErrorCode.UNSUPPORTED_OP,
                            "TRIM requires protocol v2",
                        ),
                    )
                self.server.trim(frame.lba, frame.read_count)
                return encode_reply(frame, Op.TRIM_ACK, frame.lba)
            if frame.op == Op.SNAP:
                if frame.version < 2:
                    return encode_reply(
                        frame, Op.ERROR, frame.lba,
                        encode_error_payload(
                            ErrorCode.UNSUPPORTED_OP,
                            "SNAP requires protocol v2",
                        ),
                    )
                return self._handle_snap(frame)
            raise ProtocolError(f"unexpected op {frame.op}")
        except (ReproError, ValueError) as error:
            return encode_reply(
                frame, Op.ERROR, frame.lba,
                encode_error_payload(error_code_for(error), str(error)),
            )

    def _handle_snap(self, frame: Frame) -> bytes:
        """Dispatch one SNAP management request (v2 was checked)."""
        try:
            request = json.loads(frame.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed SNAP payload: {error}") from None
        if not isinstance(request, dict):
            raise ProtocolError("SNAP payload must be a JSON object")
        action = request.get("action")
        name = request.get("name")

        def reply_json(body: Dict[str, Any]) -> bytes:
            payload = json.dumps(
                body, separators=(",", ":"), allow_nan=False
            ).encode("utf-8")
            return encode_reply(frame, Op.SNAP_ACK, frame.lba, payload)

        if action == "list":
            return reply_json({"snapshots": self.server.snapshots()})
        if not isinstance(name, str) or not name:
            raise ProtocolError("SNAP action needs a non-empty string name")
        if action == "create":
            return reply_json({"pinned": self.server.create_snapshot(name)})
        if action == "delete":
            return reply_json({"reclaimed": self.server.delete_snapshot(name)})
        if action == "read":
            data = self.server.read_snapshot(
                name, frame.lba, frame.read_count
            )
            return encode_reply(frame, Op.SNAP_ACK, frame.lba, data)
        raise ProtocolError(f"unknown SNAP action {action!r}")


class ProtocolClient:
    """Client endpoint with a call-style API over a request function.

    ``transport`` is any callable ``bytes -> bytes`` (e.g. a
    :meth:`ProtocolServer.handle_bytes` bound method, or a socket shim).
    ``version`` selects the emitted wire format; both are decoded.
    Error responses raise the typed exception their structured payload
    names (:mod:`repro.errors`).
    """

    def __init__(self, transport, version: int = 2):
        if version not in (1, 2):
            raise ProtocolError(f"unknown protocol version {version}")
        self._transport = transport
        self._decoder = FrameDecoder()
        self.version = version
        self._next_request_id = 0

    def _encode_request(self, op: int, lba: int, payload: bytes = b"",
                        count: int = 0) -> bytes:
        if self.version == 1:
            if count > 255:
                raise ProtocolError(
                    f"v1 reads cap at 255 chunks (asked for {count}); "
                    "use protocol version 2"
                )
            return encode_frame(op, lba, payload, flags=count)
        self._next_request_id = (self._next_request_id + 1) % (1 << 32)
        return encode_frame_v2(
            op, lba, payload, request_id=self._next_request_id, count=count
        )

    def _roundtrip(self, request: bytes) -> Frame:
        frames = self._decoder.feed(self._transport(request))
        if not frames:
            raise ProtocolError("no response frame")
        return frames[0]

    def write(self, lba: int, payload: bytes) -> None:
        response = self._roundtrip(self._encode_request(Op.WRITE, lba, payload))
        if response.op != Op.WRITE_ACK:
            raise_for_error_payload(response.payload, "write failed")

    def read(self, lba: int, num_chunks: int = 1) -> bytes:
        response = self._roundtrip(
            self._encode_request(Op.READ, lba, count=num_chunks)
        )
        if response.op != Op.READ_ACK:
            raise_for_error_payload(response.payload, "read failed")
        return response.payload

    def trim(self, lba: int, num_chunks: int = 1) -> None:
        """Drop ``num_chunks`` chunk mappings at ``lba`` (v2-only)."""
        if self.version < 2:
            raise ProtocolError("TRIM requires protocol version 2")
        response = self._roundtrip(
            self._encode_request(Op.TRIM, lba, count=num_chunks)
        )
        if response.op != Op.TRIM_ACK:
            raise_for_error_payload(response.payload, "trim failed")

    def _snap_roundtrip(
        self, body: Dict[str, Any], lba: int = 0, count: int = 0
    ) -> Frame:
        if self.version < 2:
            raise ProtocolError("SNAP requires protocol version 2")
        payload = json.dumps(
            body, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        response = self._roundtrip(
            self._encode_request(Op.SNAP, lba, payload, count=count)
        )
        if response.op != Op.SNAP_ACK:
            raise_for_error_payload(response.payload, "snap failed")
        return response

    def create_snapshot(self, name: str) -> int:
        """Pin the server's current acked state under ``name`` (v2-only).

        Returns the number of pinned chunk mappings."""
        response = self._snap_roundtrip({"action": "create", "name": name})
        return int(json.loads(response.payload.decode("utf-8"))["pinned"])

    def delete_snapshot(self, name: str) -> int:
        """Drop snapshot ``name``; returns chunks reclaimed (v2-only)."""
        response = self._snap_roundtrip({"action": "delete", "name": name})
        return int(json.loads(response.payload.decode("utf-8"))["reclaimed"])

    def snapshots(self) -> List[str]:
        """List the server's snapshot names (v2-only)."""
        response = self._snap_roundtrip({"action": "list"})
        names = json.loads(response.payload.decode("utf-8"))["snapshots"]
        return [str(name) for name in names]

    def read_snapshot(self, name: str, lba: int, num_chunks: int = 1) -> bytes:
        """Read chunks at ``lba`` as of snapshot ``name`` (v2-only)."""
        response = self._snap_roundtrip(
            {"action": "read", "name": name}, lba=lba, count=num_chunks
        )
        return response.payload

    def stats(self) -> Dict[str, Any]:
        """Scrape the server's live ``repro.stats/v1`` snapshot.

        v2-only: a v1 client fails locally with :class:`ProtocolError`
        (and a v1 STATS frame sent anyway is answered by the server with
        a structured ``UNSUPPORTED_OP`` error).
        """
        if self.version < 2:
            raise ProtocolError("STATS requires protocol version 2")
        response = self._roundtrip(self._encode_request(Op.STATS, 0))
        if response.op != Op.STATS_ACK:
            raise_for_error_payload(response.payload, "stats failed")
        payload: Dict[str, Any] = json.loads(response.payload.decode("utf-8"))
        return payload

"""The storage network protocol layer (paper §6.2)."""

from .protocol import (
    Frame,
    FrameDecoder,
    Op,
    ProtocolClient,
    ProtocolError,
    ProtocolServer,
    encode_frame,
)

__all__ = [
    "Frame",
    "FrameDecoder",
    "Op",
    "ProtocolClient",
    "ProtocolError",
    "ProtocolServer",
    "encode_frame",
]

"""The storage network protocol layer (paper §6.2).

``protocol`` is the wire format (v1 + v2) with synchronous endpoints;
``aserver`` is the concurrent asyncio serving layer on top of it;
``router`` scatter-gathers one endpoint across N shard backends.
"""

from .aserver import AsyncProtocolClient, AsyncProtocolServer, ServerMetrics
from .router import ShardRouter
from .protocol import (
    Frame,
    FrameDecoder,
    Op,
    ProtocolClient,
    ProtocolError,
    ProtocolServer,
    encode_frame,
    encode_frame_v2,
    encode_reply,
)

__all__ = [
    "AsyncProtocolClient",
    "AsyncProtocolServer",
    "Frame",
    "FrameDecoder",
    "Op",
    "ProtocolClient",
    "ProtocolError",
    "ProtocolServer",
    "ServerMetrics",
    "ShardRouter",
    "encode_frame",
    "encode_frame_v2",
    "encode_reply",
]

"""Command-line entry points for the serving layer.

``serve`` hosts a :class:`~repro.net.aserver.AsyncProtocolServer` over a
freshly built storage system until interrupted; ``bench`` spins up the
same server in-process and drives it with the concurrent load generator,
printing the client-side throughput/latency summary.  Both expose the
``--parallelism`` knob that fans the backend's GIL-releasing pipeline
stages (hashing, compression, decompression) across worker threads.

Examples
--------
Run a FIDR-architecture server with a 4-way stage pool::

    python -m repro.net serve --system fidr --parallelism 4 --port 9876

Measure the serving layer end to end::

    python -m repro.net bench --clients 8 --ops 100 --parallelism 4

Front a self-hosted 4-shard cluster with the scatter-gather router::

    python -m repro.net route --spawn 4 --port 9876
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from ..datared import codecs as _codecs
from ..datared import hashing as _hashing
from ..obs import trace as _trace
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..systems.config import CodecPolicy, DurabilityPolicy, SystemConfig
from ..systems.server import StorageServer, SystemKind
from .aserver import AsyncProtocolServer
from .router import ShardRouter

__all__ = ["main"]


def _build_storage(args: argparse.Namespace) -> StorageServer:
    # CLI mode degrades gracefully: a requested codec whose optional
    # library is missing falls back to zlib/sha256 with a warning
    # instead of refusing to start.
    checkpoint_every = getattr(args, "checkpoint_every", None)
    config = SystemConfig(
        parallelism=args.parallelism,
        executor=args.executor,
        shards=getattr(args, "shards", 1),
        codec=CodecPolicy(
            codec=args.codec,
            fingerprint=args.fingerprint,
            on_missing="fallback",
        ),
        durability=DurabilityPolicy(
            journal=bool(getattr(args, "journal", False))
            or checkpoint_every is not None,
            checkpoint_every_commits=checkpoint_every,
        ),
    )
    return StorageServer.build(SystemKind(args.system), config=config)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system",
        choices=[kind.value for kind in SystemKind],
        default=SystemKind.FIDR.value,
        help="which architecture backs the server (default: fidr)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="worker threads for the hash/compress pipeline stages "
        "(1 = fully serial; results are identical at every setting)",
    )
    parser.add_argument(
        "--executor",
        choices=["thread", "process", "auto"],
        default="auto",
        help="stage-pool backend; auto = processes when parallel on a "
        "multi-core host (results are identical at every setting)",
    )
    parser.add_argument(
        "--codec",
        choices=_codecs.codec_names(),
        default="zlib",
        help="compression codec for unique chunks (optional codecs "
        "fall back to zlib when their library is missing); "
        f"available here: {', '.join(_codecs.available_codecs())}",
    )
    parser.add_argument(
        "--fingerprint",
        choices=_hashing.fingerprinter_names(),
        default="sha256",
        help="chunk fingerprint algorithm (optional algorithms fall "
        "back to sha256 when their library is missing)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fingerprint-space shards inside the storage engine "
        "(>= 2 scatter-gathers resolve+publish across shard threads)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="asyncio dispatch workers draining the request queue",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="bound on queued requests before connections block",
    )
    parser.add_argument(
        "--no-offload",
        action="store_true",
        help="run storage work on the event loop instead of the "
        "backend executor (debugging aid; hurts latency under load)",
    )
    parser.add_argument(
        "--write-split-chunks",
        type=int,
        default=64,
        help="split offloaded writes larger than this many chunks so "
        "queued small requests can interleave",
    )
    parser.add_argument(
        "--journal",
        action="store_true",
        help="arm the group-commit metadata journal (crash-consistent "
        "durability tier; see DESIGN.md §5.10)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="with the journal armed, checkpoint + truncate every N "
        "group commits (implies --journal)",
    )


async def _serve(args: argparse.Namespace) -> int:
    # Serving turns tracing on by default: the per-stage histograms and
    # spans are what `python -m repro.obs top` renders, and the overhead
    # is bounded by the perf harness's obs_overhead gate.
    _trace.set_enabled(not args.no_trace)
    # The lifecycle contract (rule R012): the storage stack is closed on
    # every exit path — the async-with stop() is the last commit fence,
    # close() then releases the stage pool and journal.
    with _build_storage(args) as storage:
        return await _serve_storage(args, storage)


async def _serve_storage(
    args: argparse.Namespace, storage: StorageServer
) -> int:
    async with AsyncProtocolServer(
        storage,
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        workers=args.workers,
        offload=not args.no_offload,
        write_split_chunks=args.write_split_chunks,
    ) as server:
        print(
            f"serving {args.system} on {server.host}:{server.port} "
            f"(parallelism={args.parallelism}, "
            f"codec={storage.system.engine.compressor.name}, "
            f"offload={not args.no_offload}, "
            f"tracing={_trace.is_enabled()})",
            flush=True,
        )
        if _trace.is_enabled():
            print(
                "watch live metrics with: python -m repro.obs top "
                f"--host {server.host} --port {server.port}",
                flush=True,
            )
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
    return 0


def _parse_backend(spec: str) -> tuple:
    host, _, port = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--backend takes host:port, got {spec!r}"
        ) from None


async def _route(args: argparse.Namespace) -> int:
    """Host a :class:`ShardRouter` over external and/or spawned backends."""
    _trace.set_enabled(not args.no_trace)
    backends: List[tuple] = list(args.backend or [])
    spawned: List[AsyncProtocolServer] = []
    if args.spawn:
        # Each spawned backend gets a private registry (as separate
        # processes would) so the router's STATS merge aggregates real
        # per-shard snapshots; the router is the sharding layer, so the
        # backends themselves are built single-shard.
        args.shards = 1
        original = get_registry()
        try:
            for _ in range(args.spawn):
                registry = MetricsRegistry()
                set_registry(registry)
                server = AsyncProtocolServer(
                    _build_storage(args),
                    queue_depth=args.queue_depth,
                    workers=args.workers,
                    offload=not args.no_offload,
                    write_split_chunks=args.write_split_chunks,
                    registry=registry,
                )
                await server.start()
                spawned.append(server)
                backends.append(server.address)
        finally:
            set_registry(original)
    if not backends:
        print("route needs --backend and/or --spawn", file=sys.stderr)
        return 2
    fingerprinter = CodecPolicy(
        fingerprint=args.fingerprint, on_missing="fallback"
    ).build_fingerprinter()
    try:
        async with ShardRouter(
            backends,
            host=args.host,
            port=args.port,
            fingerprinter=fingerprinter,
        ) as router:
            print(
                f"routing {len(backends)} shards on "
                f"{router.host}:{router.port} "
                f"(spawned={len(spawned)}, "
                f"fingerprint={fingerprinter.name})",
                flush=True,
            )
            for index, address in enumerate(router.backend_addresses):
                print(f"  shard {index}: {address[0]}:{address[1]}")
            try:
                await asyncio.Event().wait()
            except asyncio.CancelledError:
                pass
    finally:
        for server in spawned:
            await server.stop()
            server.storage.close()
    return 0


def _bench(args: argparse.Namespace) -> int:
    # Imported here so `serve` works even if workloads grows heavier deps.
    from ..workloads.loadgen import LoadGenConfig, run_against

    with _build_storage(args) as storage:
        config = LoadGenConfig(
            clients=args.clients,
            ops_per_client=args.ops,
            read_fraction=args.read_fraction,
            seed=args.seed,
        )
        result = run_against(
            storage,
            config,
            queue_depth=args.queue_depth,
            workers=args.workers,
            offload=not args.no_offload,
            write_split_chunks=args.write_split_chunks,
        )
        print(result.render())
    # Server-side numbers come from the scraped STATS snapshot — the
    # same repro.stats/v1 shape every consumer sees — with the local
    # storage object only as a fallback when the scrape failed.
    if result.server_stats is not None:
        gauges = result.server_stats.get("gauges", {})
        uniques = gauges.get("engine.unique_chunks", 0)
        total = uniques + gauges.get("engine.duplicate_chunks", 0)
        print(
            f"  server-side      {uniques} uniques / "
            f"{total} chunks, dedup "
            f"{gauges.get('engine.dedup_ratio', 0.0):.2f}, compression "
            f"{gauges.get('engine.compression_ratio', 1.0):.2f}"
        )
    else:
        stats = storage.reduction_stats
        total = stats.unique_chunks + stats.duplicate_chunks
        print(
            f"  server-side      {stats.unique_chunks} uniques / "
            f"{total} chunks, dedup {stats.dedup_ratio:.2f}, "
            f"compression {stats.compression_ratio:.2f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Serving-layer entry points for the FIDR reproduction.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="host a protocol server")
    _add_common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    serve.add_argument(
        "--no-trace",
        action="store_true",
        help="disable trace spans (metrics registry and the STATS op "
        "stay live; only the per-stage span histograms go dark)",
    )

    route = commands.add_parser(
        "route",
        help="host a scatter-gather router over N shard backends",
    )
    _add_common(route)
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    route.add_argument(
        "--backend",
        action="append",
        type=_parse_backend,
        metavar="HOST:PORT",
        help="an already-running shard server (repeat per shard, "
        "shard index = argument order)",
    )
    route.add_argument(
        "--spawn",
        type=int,
        default=0,
        help="additionally self-host this many single-shard backends "
        "in-process (appended after --backend shards)",
    )
    route.add_argument(
        "--no-trace",
        action="store_true",
        help="disable trace spans on the router and spawned backends",
    )

    bench = commands.add_parser(
        "bench", help="drive an in-process server with the load generator"
    )
    _add_common(bench)
    bench.add_argument("--clients", type=int, default=8)
    bench.add_argument("--ops", type=int, default=50, help="ops per client")
    bench.add_argument("--read-fraction", type=float, default=0.5)
    bench.add_argument("--seed", type=lambda v: int(v, 0), default=0xF1D8)

    args = parser.parse_args(argv)
    if args.parallelism < 1:
        parser.error("--parallelism must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:
            return 0
    if args.command == "route":
        if args.spawn < 0:
            parser.error("--spawn must be >= 0")
        try:
            return asyncio.run(_route(args))
        except KeyboardInterrupt:
            return 0
    return _bench(args)


if __name__ == "__main__":
    sys.exit(main())

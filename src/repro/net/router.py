"""Scatter-gather router: one wire endpoint over N shard backends.

:class:`ShardRouter` speaks the same §6.2 protocol as a single server
but owns no storage itself.  It fingerprints each written chunk inline
(SHA-256 of a 4 KiB chunk is microseconds against a network
round-trip), selects the owning backend with the same
:func:`~repro.datared.sharded.shard_for_digest` range partition the
in-process :class:`~repro.datared.sharded.ShardedDedupEngine` uses, and
scatter-gathers the sub-requests over pipelined v2 connections
(:class:`~repro.net.aserver.AsyncProtocolClient`, one per backend), so
a cluster of single-shard servers presents as one block device:

* **WRITE** partitions the payload's chunks into contiguous same-shard
  runs, ``asyncio.gather``\\ s the sub-writes, then TRIMs any backend an
  overwritten LBA just moved away from — the shard-selection invariant
  of DESIGN.md §5.7 (an LBA's mapping lives only on the shard that owns
  its *current* content's digest) holds across the wire too.
* **READ** resolves each LBA through the router's directory, fans out
  per-backend runs, and reassembles in order.  LBAs never written
  resolve to canonical zero-fill locally, without touching a backend.
* **STATS** gathers every backend's ``repro.stats/v1`` snapshot and
  merges them with :func:`repro.obs.merge_stats_snapshots` (counters
  summed, histograms bucket-merged, ratios recomputed), stamping a
  ``cluster`` key so consumers can tell they scraped a cluster.  v1
  STATS/TRIM get the same structured ``UNSUPPORTED_OP`` a plain server
  sends.

A backend that dies mid-scatter surfaces as a typed
:class:`~repro.errors.ShardError` frame naming the failed shard; the
other backends' ledgers stay conserved (per-chunk atomicity, as with
split writes).  The LBA→shard directory is router memory: like the
single server's in-memory Hash-PBN table it does not survive a router
restart — crash-consistent directory recovery is future work
(ROADMAP).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs as _obs
from ..datared.chunking import BLOCK_SIZE
from ..datared.hashing import Fingerprinter
from ..datared.sharded import shard_for_digest
from ..errors import (
    AlignmentError,
    ErrorCode,
    ProtocolError,
    ReproError,
    ShardError,
    encode_error_payload,
    error_code_for,
)
from ..obs.metrics import MetricsRegistry, get_registry
from ..systems.config import CodecPolicy
from .aserver import AsyncProtocolClient
from .protocol import Frame, FrameDecoder, Op, encode_frame, encode_reply

__all__ = ["ShardRouter"]

_READ_CHUNK = 64 * 1024


class ShardRouter:
    """Route one protocol endpoint across ``len(backends)`` shard servers.

    Parameters
    ----------
    backends:
        ``(host, port)`` of each shard's protocol server, in shard-index
        order.  Each backend should be a single-shard server; the router
        *is* the sharding layer.
    host, port:
        Bind address of the router's own listening socket (``port=0``
        picks a free port, see :attr:`port` after :meth:`start`).
    chunk_size:
        The cluster chunk size — must match the backends'.
    fingerprinter:
        Digest used for shard selection; defaults to the default codec
        policy's (SHA-256) and must match what the backends dedup with
        for the §5.7 invariant to mean anything.
    """

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        chunk_size: int = 4096,
        fingerprinter: Optional[Fingerprinter] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if not backends:
            raise ValueError("need at least one backend")
        if chunk_size % BLOCK_SIZE:
            raise ValueError(
                f"chunk_size must be a multiple of {BLOCK_SIZE}"
            )
        self.backend_addresses = [tuple(address) for address in backends]
        self.num_shards = len(self.backend_addresses)
        self.host = host
        self.port = port
        self.chunk_size = chunk_size
        self.blocks_per_chunk = chunk_size // BLOCK_SIZE
        self.registry = registry if registry is not None else get_registry()
        self._fingerprinter = (
            fingerprinter
            if fingerprinter is not None
            else CodecPolicy().build_fingerprinter()
        )
        #: LBA -> shard index of the backend holding its current mapping.
        self._directory: Dict[int, int] = {}
        self._clients: List[AsyncProtocolClient] = []
        self._server: Optional[asyncio.base_events.Server] = None
        # One frame mutates at a time (asyncio.Lock wakes waiters FIFO,
        # so frames apply in arrival order); *within* a frame the
        # sub-requests fan out concurrently.  An asyncio.Lock lives in
        # the cooperative domain — it never blocks a thread, so it sits
        # outside the DisciplinedLock hierarchy (repro.sync.LOCK_ORDER)
        # and the lockgraph/lockdep validators deliberately ignore it.
        self._lock = asyncio.Lock()
        self.requests_served = 0
        self.registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry: MetricsRegistry) -> None:
        registry.gauge("router.shards").set(self.num_shards)
        registry.gauge("router.requests_served").set(self.requests_served)
        registry.gauge("router.directory_entries").set(len(self._directory))

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> "ShardRouter":
        """Connect to every backend, then bind the listening socket."""
        for host, port in self.backend_addresses:
            self._clients.append(
                await AsyncProtocolClient.connect(
                    host, port, version=2, registry=self.registry
                )
            )
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for client in self._clients:
            await client.close()
        self._clients = []

    async def __aenter__(self) -> "ShardRouter":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    # -- connection loop ---------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(self.registry)
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for event in decoder.events(data):
                    if isinstance(event, ProtocolError):
                        response = encode_frame(
                            Op.ERROR, 0,
                            encode_error_payload(
                                ErrorCode.CORRUPT_FRAME, str(event)
                            ),
                        )
                    else:
                        response = await self._handle(event)
                    writer.write(response)
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle(self, frame: Frame) -> bytes:
        """Dispatch one request frame; failures become typed ERROR frames."""
        self.requests_served += 1
        try:
            if frame.op == Op.WRITE:
                async with self._lock:
                    await self._scatter_write(frame)
                return encode_reply(frame, Op.WRITE_ACK, frame.lba)
            if frame.op == Op.READ:
                async with self._lock:
                    data = await self._scatter_read(
                        frame.lba, frame.read_count
                    )
                return encode_reply(frame, Op.READ_ACK, frame.lba, data)
            if frame.op == Op.STATS:
                if frame.version < 2:
                    return encode_reply(
                        frame, Op.ERROR, frame.lba,
                        encode_error_payload(
                            ErrorCode.UNSUPPORTED_OP,
                            "STATS requires protocol v2",
                        ),
                    )
                payload = json.dumps(
                    await self._cluster_stats(),
                    separators=(",", ":"),
                    allow_nan=False,
                ).encode("utf-8")
                return encode_reply(frame, Op.STATS_ACK, 0, payload)
            if frame.op == Op.TRIM:
                if frame.version < 2:
                    return encode_reply(
                        frame, Op.ERROR, frame.lba,
                        encode_error_payload(
                            ErrorCode.UNSUPPORTED_OP,
                            "TRIM requires protocol v2",
                        ),
                    )
                async with self._lock:
                    await self._scatter_trim(frame.lba, frame.read_count)
                return encode_reply(frame, Op.TRIM_ACK, frame.lba)
            raise ProtocolError(f"unexpected op {frame.op}")
        except (ReproError, ValueError) as error:
            return encode_reply(
                frame, Op.ERROR, frame.lba,
                encode_error_payload(error_code_for(error), str(error)),
            )

    # -- scatter paths -----------------------------------------------------------
    def _check_alignment(self, lba: int) -> None:
        if lba % self.blocks_per_chunk:
            raise AlignmentError(
                f"lba {lba} is not aligned to "
                f"{self.blocks_per_chunk}-block chunks"
            )

    async def _scatter_write(self, frame: Frame) -> None:
        payload = frame.payload
        if not payload:
            raise ProtocolError("empty write")
        if len(payload) % self.chunk_size:
            raise AlignmentError(
                f"payload of {len(payload)} bytes is not a multiple of "
                f"the {self.chunk_size}-byte chunk size"
            )
        self._check_alignment(frame.lba)
        # Fingerprint every chunk up front; the digest decides the
        # owning shard (§5.7: shard_for_digest of the *content*).
        chunk_lbas: List[int] = []
        owners: List[int] = []
        for index in range(len(payload) // self.chunk_size):
            chunk = payload[
                index * self.chunk_size : (index + 1) * self.chunk_size
            ]
            digest = self._fingerprinter.digest(chunk)
            chunk_lbas.append(frame.lba + index * self.blocks_per_chunk)
            owners.append(shard_for_digest(digest, self.num_shards))
        # Contiguous same-shard runs keep per-backend frames large.
        runs: List[Tuple[int, int, int]] = []  # (shard, start_idx, end_idx)
        start = 0
        for index in range(1, len(owners) + 1):
            if index == len(owners) or owners[index] != owners[start]:
                runs.append((owners[start], start, index))
                start = index
        results = await asyncio.gather(
            *(
                self._clients[shard].write(
                    chunk_lbas[begin],
                    payload[begin * self.chunk_size : end * self.chunk_size],
                )
                for shard, begin, end in runs
            ),
            return_exceptions=True,
        )
        # Per-run atomicity on failure: runs that acked are applied and
        # stay applied, so record their new owners and retire the stale
        # mappings they moved away from *before* surfacing the error —
        # the directory must keep describing what the backends hold.
        failed: Dict[int, str] = {}
        trims: List[Tuple[int, Any]] = []
        for (shard, begin, end), result in zip(runs, results):
            if isinstance(result, BaseException):
                failed[shard] = str(result)
                continue
            for index in range(begin, end):
                lba = chunk_lbas[index]
                previous = self._directory.get(lba)
                if previous is not None and previous != shard:
                    trims.append(
                        (previous, self._clients[previous].trim(lba, 1))
                    )
                self._directory[lba] = shard
        if trims:
            await self._gather(trims)
        if failed:
            raise ShardError(
                "; ".join(
                    f"shard {shard}: {message}"
                    for shard, message in sorted(failed.items())
                ),
                shard_indexes=tuple(sorted(failed)),
            )

    async def _scatter_read(self, lba: int, num_chunks: int) -> bytes:
        self._check_alignment(lba)
        chunk_lbas = [
            lba + index * self.blocks_per_chunk for index in range(num_chunks)
        ]
        # None = never written here: canonical zero-fill, no backend hop.
        owners = [self._directory.get(chunk) for chunk in chunk_lbas]
        pieces: List[Optional[bytes]] = [None] * num_chunks
        reads: List[Tuple[int, Any]] = []
        slots: List[Tuple[int, int]] = []  # (first piece index, run length)
        start = 0
        for index in range(1, num_chunks + 1):
            if index == num_chunks or owners[index] != owners[start]:
                owner = owners[start]
                if owner is None:
                    for hole in range(start, index):
                        pieces[hole] = b"\x00" * self.chunk_size
                else:
                    reads.append((
                        owner,
                        self._clients[owner].read(
                            chunk_lbas[start], index - start
                        ),
                    ))
                    slots.append((start, index - start))
                start = index
        for (begin, length), data in zip(slots, await self._gather(reads)):
            for offset in range(length):
                pieces[begin + offset] = data[
                    offset * self.chunk_size : (offset + 1) * self.chunk_size
                ]
        return b"".join(piece for piece in pieces if piece is not None)

    async def _scatter_trim(self, lba: int, num_chunks: int) -> None:
        self._check_alignment(lba)
        trims: List[Tuple[int, Any]] = []
        for index in range(num_chunks):
            chunk_lba = lba + index * self.blocks_per_chunk
            owner = self._directory.pop(chunk_lba, None)
            if owner is not None:
                trims.append((owner, self._clients[owner].trim(chunk_lba, 1)))
        if trims:
            await self._gather(trims)

    async def _cluster_stats(self) -> Dict[str, Any]:
        snapshots = await self._gather(
            [
                (shard, client.stats())
                for shard, client in enumerate(self._clients)
            ],
        )
        merged = _obs.merge_stats_snapshots(
            snapshots + [_obs.snapshot(self.registry)]
        )
        merged["cluster"] = {
            "shards": self.num_shards,
            "backends": [list(address) for address in self.backend_addresses],
        }
        return merged

    async def _gather(self, calls: Sequence[Tuple[int, Any]]) -> List[Any]:
        """Await every ``(shard, coroutine)``; fold failures into one
        :class:`ShardError` naming the shards that failed (the awaits
        all complete first, so healthy backends finish their work and
        stay conserved)."""
        results = await asyncio.gather(
            *(call for _, call in calls), return_exceptions=True
        )
        failed: List[int] = []
        messages: List[str] = []
        for (shard, _), result in zip(calls, results):
            if isinstance(result, BaseException):
                failed.append(shard)
                messages.append(f"shard {shard}: {result}")
        if failed:
            raise ShardError(
                "; ".join(messages), shard_indexes=tuple(sorted(set(failed)))
            )
        return list(results)

"""Concurrent asyncio serving layer over the §6.2 protocol.

The paper's server front-end is a NIC protocol engine: it terminates
many client links at line rate, parses the simplified access protocol,
and hands requests to the reduction pipeline through a bounded buffer
(the battery-backed NIC DRAM) whose occupancy throttles the clients.
This module is that front-end rendered in asyncio:

* :class:`AsyncProtocolServer` accepts any number of TCP connections,
  runs one :class:`~repro.net.protocol.FrameDecoder` session per
  connection, and funnels every decoded request into one **bounded**
  queue drained by a configurable pool of worker tasks that serialize
  access to the shared (non-thread-safe) storage backend.

  Backpressure is structural: a connection's reader coroutine ``await``s
  the queue slot before reading more bytes, so when the queue is full
  the server stops consuming from that socket, the TCP window closes,
  and the client blocks — exactly the NIC-buffer-full behaviour of
  §7.6.1.  On the response path every write is followed by ``drain()``
  so slow readers bound the server's write buffers too.

* :class:`AsyncProtocolClient` is the pipelined counterpart: requests
  are tagged with v2 ``request_id``\\ s and completed by a background
  reader task, so many calls may be in flight on one connection
  (``asyncio.gather`` over plain ``read``/``write`` coroutines is the
  pipelining API).

Backend execution (``offload=True``, the default) happens on a
**single-threaded** executor via ``run_in_executor``: the non-thread-safe
storage stack still sees strictly serialized access, but the event loop
keeps accepting connections, parsing frames and flushing responses
while a request crunches SHA-256/DEFLATE.  Large writes are split into
``write_split_chunks``-sized sub-writes between which queued small
requests get a turn on the backend thread, so one bulk ingest can no
longer convoy every other client's latency.  Inside the backend thread
the engine fans hashing/compression out on its own
:class:`~repro.parallel.StagePool` when the system was built with
``parallelism > 1``.  With ``offload=False`` the storage stack executes
on the event-loop thread exactly as before.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..datared.chunking import BLOCK_SIZE
from ..obs import trace as _trace
from ..obs.metrics import MetricsRegistry, get_registry
from ..errors import ErrorCode, ProtocolError, ReproError, \
    encode_error_payload, error_code_for, raise_for_error_payload
from ..systems.server import StorageServer
from .protocol import (
    Frame,
    FrameDecoder,
    Op,
    ProtocolServer,
    encode_frame,
    encode_frame_v2,
    encode_reply,
)

__all__ = ["AsyncProtocolServer", "AsyncProtocolClient", "ServerMetrics"]

#: How many bytes one socket read may return; frames are reassembled by
#: the per-connection decoder, so this only sizes the read syscalls.
_READ_CHUNK = 64 * 1024


@dataclass
class ServerMetrics:
    """Counters the serving layer maintains (all monotonic except
    ``connections_open``)."""

    connections_total: int = 0
    connections_open: int = 0
    requests_enqueued: int = 0
    responses_sent: int = 0
    frames_rejected: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: High-water mark of the request queue — never exceeds the
    #: configured ``queue_depth`` (the backpressure guarantee).
    max_queue_depth: int = 0
    #: Requests dispatched to the backend executor (0 when
    #: ``offload=False``).
    backend_offloaded: int = 0
    #: Large writes split into sub-writes so small requests interleave.
    writes_split: int = 0


@dataclass(eq=False)
class _Connection:
    """Per-connection session state (identity-hashed for the registry)."""

    writer: asyncio.StreamWriter
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    pending: int = 0
    idle: asyncio.Event = field(default_factory=asyncio.Event)


class AsyncProtocolServer:
    """A TCP server multiplexing many clients onto one storage backend.

    Parameters
    ----------
    storage:
        The shared :class:`~repro.systems.server.StorageServer`.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    queue_depth:
        Bound of the request queue — the NIC-buffer analogue.  Readers
        pause when it is full.
    workers:
        Number of drain tasks.  They interleave requests from different
        connections; backend access is always serialized (on the event
        loop with ``offload=False``, on the single backend thread
        otherwise).
    offload:
        Run backend work on a dedicated single-threaded executor so the
        event loop never blocks on storage-stack CPU time (hashing,
        compression, table walks).
    write_split_chunks:
        With ``offload``, writes spanning more than this many chunks
        are applied as a sequence of sub-writes; requests queued behind
        the write get a backend turn between sub-writes.  A concurrent
        reader of the *same* region may observe a prefix of a split
        write (block devices promise per-chunk atomicity, not
        whole-request atomicity).
    """

    def __init__(
        self,
        storage: StorageServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_depth: int = 64,
        workers: int = 2,
        offload: bool = True,
        write_split_chunks: int = 64,
        registry: Optional[MetricsRegistry] = None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if workers < 1:
            raise ValueError("need at least one worker")
        if write_split_chunks < 1:
            raise ValueError("write_split_chunks must be at least 1")
        self.storage = storage
        self.registry = registry if registry is not None else get_registry()
        self.endpoint = ProtocolServer(storage, registry=self.registry)
        self.host = host
        self.port = port
        self.queue_depth = queue_depth
        self.num_workers = workers
        self.offload = offload
        self.write_split_chunks = write_split_chunks
        self.metrics = ServerMetrics()
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: list = []
        self._connections: set = set()
        self._backend: Optional[ThreadPoolExecutor] = None
        # Pull-model publication of ServerMetrics (WeakMethod-held, so a
        # dropped server disappears from the registry on its own).
        self.registry.register_collector(self._publish_metrics)

    def _publish_metrics(self, registry: MetricsRegistry) -> None:
        """Collector: export :class:`ServerMetrics` as ``server.*`` gauges."""
        m = self.metrics
        registry.gauge("server.connections_total").set(m.connections_total)
        registry.gauge("server.connections_open").set(m.connections_open)
        registry.gauge("server.requests_enqueued").set(m.requests_enqueued)
        registry.gauge("server.responses_sent").set(m.responses_sent)
        registry.gauge("server.frames_rejected").set(m.frames_rejected)
        registry.gauge("server.bytes_in").set(m.bytes_in)
        registry.gauge("server.bytes_out").set(m.bytes_out)
        registry.gauge("server.max_queue_depth").set(m.max_queue_depth)
        registry.gauge("server.backend_offloaded").set(m.backend_offloaded)
        registry.gauge("server.writes_split").set(m.writes_split)

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> "AsyncProtocolServer":
        """Bind the listening socket and launch the worker pool."""
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        if self.offload:
            # max_workers=1 is the thread-safety contract: the storage
            # stack is only ever touched by this one thread.
            self._backend = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="aserver-backend"
            )
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.create_task(self._worker(), name=f"aserver-worker-{i}")
            for i in range(self.num_workers)
        ]
        return self

    async def stop(self) -> None:
        """Stop accepting, drain queued requests, then flush the backend.

        Live connections are closed server-side; their clients observe
        EOF and fail any still-pending calls with a
        :class:`~repro.errors.ProtocolError`.
        """
        if self._server is not None:
            self._server.close()
        # Close live connections *before* awaiting wait_closed(): on
        # Python >= 3.12.1 wait_closed() also waits for every connection
        # handler, so a handler parked in reader.read() would deadlock
        # the shutdown unless its socket is closed first.
        for connection in list(self._connections):
            connection.writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self._queue is not None:
            await self._queue.join()
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._backend is not None:
            self._backend.shutdown(wait=True)
            self._backend = None
        # The server-batch commit boundary: drains staged writes, seals
        # the open container and — when a journal is armed — fences the
        # final group commit, so every acked request is recoverable.
        self.storage.flush()

    async def __aenter__(self) -> "AsyncProtocolServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    # -- connection reader -------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(
            writer=writer, decoder=FrameDecoder(self.registry)
        )
        connection.idle.set()
        self._connections.add(connection)
        self.metrics.connections_total += 1
        self.metrics.connections_open += 1
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                self.metrics.bytes_in += len(data)
                for event in connection.decoder.events(data):
                    await self._enqueue(connection, event)
            # Answer everything still queued before closing our side.
            await connection.idle.wait()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(connection)
            self.metrics.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _enqueue(
        self, connection: _Connection, event: Union[Frame, ProtocolError]
    ) -> None:
        connection.pending += 1
        connection.idle.clear()
        # The enqueue timestamp rides the queue so the draining worker
        # can attribute queue-wait time; 0 means tracing was off.
        enqueued_ns = _trace.now_ns() if _trace.is_enabled() else 0
        # Backpressure: this await parks the reader while the queue is
        # full, which stops the socket reads for this connection.
        await self._queue.put((connection, event, enqueued_ns))
        self.metrics.requests_enqueued += 1
        depth = self._queue.qsize()
        if depth > self.metrics.max_queue_depth:
            self.metrics.max_queue_depth = depth

    # -- worker pool -------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            connection, event, enqueued_ns = await self._queue.get()
            try:
                if enqueued_ns and _trace.is_enabled():
                    _trace.observe(
                        "server.queue.wait", _trace.now_ns() - enqueued_ns
                    )
                if isinstance(event, ProtocolError):
                    self.metrics.frames_rejected += 1
                    response = encode_frame(
                        Op.ERROR, 0,
                        encode_error_payload(
                            ErrorCode.CORRUPT_FRAME, str(event)
                        ),
                    )
                else:
                    try:
                        with _trace.span("server.dispatch", op=event.op):
                            response = await self._dispatch(event)
                    except Exception as error:  # never kill a worker
                        response = encode_reply(
                            event, Op.ERROR, event.lba,
                            encode_error_payload(
                                ErrorCode.INTERNAL, str(error)
                            ),
                        )
                try:
                    with _trace.span("server.reply"):
                        connection.writer.write(response)
                        await connection.writer.drain()
                    self.metrics.responses_sent += 1
                    self.metrics.bytes_out += len(response)
                except (ConnectionResetError, BrokenPipeError):
                    pass  # client vanished; nothing to answer
            finally:
                connection.pending -= 1
                if connection.pending == 0:
                    connection.idle.set()
                self._queue.task_done()

    # -- backend dispatch --------------------------------------------------------
    async def _dispatch(self, frame: Frame) -> bytes:
        """Produce the response bytes for one request frame.

        Without offload this is the synchronous loop-thread dispatch.
        With offload the frame runs on the backend executor; oversized
        writes are applied as split sub-writes so queued requests from
        other connections interleave between the pieces.
        """
        if self._backend is None:
            # Sanctioned loop-thread lock acquisition: offload=False means
            # the storage stack (and its dedup-engine lock) runs inline on
            # the event loop — single-threaded mode, the lock is always
            # uncontended, so it cannot park the loop.
            return self.endpoint.handle_frame(frame)  # lockgraph: async-ok offload=False is single-threaded, lock uncontended
        self.metrics.backend_offloaded += 1
        loop = asyncio.get_running_loop()
        split_bytes = self.write_split_chunks * self.storage.chunk_size
        if (
            frame.op == Op.WRITE
            and len(frame.payload) > split_bytes
            # A payload that isn't chunk-aligned takes the unsplit path:
            # it fails validation there before any sub-write is applied.
            and len(frame.payload) % self.storage.chunk_size == 0
        ):
            return await self._split_write(loop, frame, split_bytes)
        return await loop.run_in_executor(
            self._backend, self.endpoint.handle_frame, frame
        )

    async def _split_write(
        self, loop, frame: Frame, split_bytes: int
    ) -> bytes:
        """Apply one large write as sequential sub-writes.

        The ack is still sent only after the whole payload is applied;
        what changes is that the backend thread becomes preemptible at
        sub-write granularity.  On failure the client gets the same
        typed error frame the unsplit path would produce (sub-writes
        already applied stay applied — per-chunk atomicity).
        """
        self.endpoint.requests_served += 1  # parity with handle_frame
        self.metrics.writes_split += 1
        chunk_size = self.storage.chunk_size
        blocks_per_chunk = chunk_size // BLOCK_SIZE
        try:
            for start in range(0, len(frame.payload), split_bytes):
                piece = frame.payload[start : start + split_bytes]
                piece_lba = frame.lba + (start // chunk_size) * blocks_per_chunk
                await loop.run_in_executor(
                    self._backend, self.storage.write, piece_lba, piece
                )
        except (ReproError, ValueError) as error:
            return encode_reply(
                frame, Op.ERROR, frame.lba,
                encode_error_payload(error_code_for(error), str(error)),
            )
        return encode_reply(frame, Op.WRITE_ACK, frame.lba)


class AsyncProtocolClient:
    """Pipelined client endpoint over one TCP connection.

    Every request carries a fresh v2 ``request_id``; a background reader
    task matches responses back to their callers, so any number of
    ``read``/``write`` coroutines may be awaited concurrently
    (``asyncio.gather``) and completions may arrive out of order.  With
    ``version=1`` the client emits legacy frames and falls back to
    FIFO response matching (v1 responses carry no id), which restricts
    it to in-order completion but exercises the interop path.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        version: int = 2,
        registry: Optional[MetricsRegistry] = None,
    ):
        if version not in (1, 2):
            raise ProtocolError(f"unknown protocol version {version}")
        self.version = version
        reg = registry if registry is not None else get_registry()
        #: Reader-task deaths (EOF, decode error, socket loss) used to be
        #: observable only as failed futures; now they are counted.
        self._reader_deaths = reg.counter("proto.client.reader_deaths_total")
        if version == 1:
            reg.counter("proto.client.v1_sessions_total").inc()
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(reg)
        self._next_request_id = 0
        self._by_id: Dict[int, asyncio.Future] = {}
        self._fifo: list = []
        self._closed = False
        self._reader_task = asyncio.create_task(
            self._read_responses(), name="aclient-reader"
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        version: int = 2,
        registry: Optional[MetricsRegistry] = None,
    ) -> "AsyncProtocolClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, version=version, registry=registry)

    async def __aenter__(self) -> "AsyncProtocolClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._fail_pending(ProtocolError("client closed"))

    # -- response demultiplexer --------------------------------------------------
    async def _read_responses(self) -> None:
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    self._reader_deaths.inc()
                    self._fail_pending(ProtocolError("server closed connection"))
                    return
                for event in self._decoder.events(data):
                    if isinstance(event, ProtocolError):
                        self._reader_deaths.inc()
                        self._fail_pending(event)
                        return
                    self._complete(event)
        except OSError as error:
            self._reader_deaths.inc()
            self._fail_pending(ProtocolError(f"connection lost: {error}"))
        except asyncio.CancelledError:
            # Deliberate close(), not a death — no counter.
            raise
        finally:
            # Once the reader is gone nothing can ever complete a
            # future, so the client is effectively closed: later
            # read()/write() calls must raise instead of hanging.
            self._closed = True

    def _complete(self, frame: Frame) -> None:
        if frame.version == 2 and frame.request_id in self._by_id:
            future = self._by_id.pop(frame.request_id)
        elif self._fifo:
            future = self._fifo.pop(0)
        else:
            return  # response to a request we no longer track
        if not future.done():
            future.set_result(frame)

    def _fail_pending(self, error: ProtocolError) -> None:
        for future in list(self._by_id.values()) + self._fifo:
            if not future.done():
                future.set_exception(error)
        self._by_id.clear()
        self._fifo.clear()

    # -- request path ------------------------------------------------------------
    async def _request(self, op: int, lba: int, payload: bytes = b"",
                       count: int = 0) -> Frame:
        if self._closed:
            raise ProtocolError("client is closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if self.version == 2:
            self._next_request_id = (self._next_request_id + 1) % (1 << 32)
            request_id = self._next_request_id
            self._by_id[request_id] = future
            wire = encode_frame_v2(
                op, lba, payload, request_id=request_id, count=count
            )
        else:
            if count > 255:
                raise ProtocolError(
                    f"v1 reads cap at 255 chunks (asked for {count})"
                )
            self._fifo.append(future)
            wire = encode_frame(op, lba, payload, flags=count)
        try:
            self._writer.write(wire)
            await self._writer.drain()
        except OSError as error:
            # Unregister the future we just parked so it is not leaked,
            # and surface the failure through the module's error type.
            if self.version == 2:
                self._by_id.pop(request_id, None)
            elif future in self._fifo:
                self._fifo.remove(future)
            raise ProtocolError(f"send failed: {error}") from error
        return await future

    async def write(self, lba: int, payload: bytes) -> None:
        """Write ``payload`` at chunk-aligned ``lba``; awaits the ack."""
        response = await self._request(Op.WRITE, lba, payload)
        if response.op != Op.WRITE_ACK:
            raise_for_error_payload(response.payload, "write failed")

    async def read(self, lba: int, num_chunks: int = 1) -> bytes:
        """Read ``num_chunks`` chunks starting at chunk-aligned ``lba``."""
        response = await self._request(Op.READ, lba, count=num_chunks)
        if response.op != Op.READ_ACK:
            raise_for_error_payload(response.payload, "read failed")
        return response.payload

    async def trim(self, lba: int, num_chunks: int = 1) -> None:
        """Drop ``num_chunks`` chunk mappings at ``lba`` (v2-only)."""
        if self.version < 2:
            raise ProtocolError("TRIM requires protocol version 2")
        response = await self._request(Op.TRIM, lba, count=num_chunks)
        if response.op != Op.TRIM_ACK:
            raise_for_error_payload(response.payload, "trim failed")

    async def _snap(
        self, body: Dict[str, Any], lba: int = 0, count: int = 0
    ) -> Frame:
        if self.version < 2:
            raise ProtocolError("SNAP requires protocol version 2")
        payload = json.dumps(
            body, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
        response = await self._request(Op.SNAP, lba, payload, count=count)
        if response.op != Op.SNAP_ACK:
            raise_for_error_payload(response.payload, "snap failed")
        return response

    async def create_snapshot(self, name: str) -> int:
        """Pin the server's acked state under ``name`` (v2-only);
        returns the number of pinned chunk mappings."""
        response = await self._snap({"action": "create", "name": name})
        return int(json.loads(response.payload.decode("utf-8"))["pinned"])

    async def delete_snapshot(self, name: str) -> int:
        """Drop snapshot ``name``; returns chunks reclaimed (v2-only)."""
        response = await self._snap({"action": "delete", "name": name})
        return int(json.loads(response.payload.decode("utf-8"))["reclaimed"])

    async def snapshots(self) -> List[str]:
        """List the server's snapshot names (v2-only)."""
        response = await self._snap({"action": "list"})
        names = json.loads(response.payload.decode("utf-8"))["snapshots"]
        return [str(name) for name in names]

    async def read_snapshot(
        self, name: str, lba: int, num_chunks: int = 1
    ) -> bytes:
        """Read chunks at ``lba`` as of snapshot ``name`` (v2-only)."""
        response = await self._snap(
            {"action": "read", "name": name}, lba=lba, count=num_chunks
        )
        return response.payload

    async def stats(self) -> Dict[str, Any]:
        """Scrape the server's live ``repro.stats/v1`` snapshot (v2-only;
        a v1 client fails locally with :class:`ProtocolError`)."""
        if self.version < 2:
            raise ProtocolError("STATS requires protocol version 2")
        response = await self._request(Op.STATS, 0)
        if response.op != Op.STATS_ACK:
            raise_for_error_payload(response.payload, "stats failed")
        payload: Dict[str, Any] = json.loads(response.payload.decode("utf-8"))
        return payload

"""Figure 3: IO amplification of large chunking (paper §3.1).

Replays mail and webVM write traces through the large-chunking pipeline
(4-MB request buffer, read-modify-write assembly, dedup at chunk
granularity) for chunk sizes 4-32 KB and reports total SSD IO normalized
to 4-KB chunking.  The paper's headline: up to 17.5x more IO at 32 KB on
the mail trace.

The traces here are Figure-3-specific variants of the synthetic
profiles: the mail server's writes arrive in short multi-block bursts
over a compact hot address space (a mail store rewriting mailbox files),
webVM in longer sequential runs — the address behaviours §3.1 blames for
the RMW penalty.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..analysis.report import Comparison, format_table
from ..datared.chunking import BLOCK_SIZE, LargeChunkAssembler
from ..workloads.synthetic import MAIL_PROFILE, WEBVM_PROFILE, synthesize
from .common import ExperimentResult

__all__ = ["CHUNK_SIZES", "run"]

CHUNK_SIZES = [4096, 8192, 16384, 32768]

#: Figure-3 trace variants (see module docstring).
_FIG3_MAIL = replace(
    MAIL_PROFILE, name="fig3-mail", address_blocks=1 << 16,
    run_min=4, run_max=16, random_run_fraction=0.7,
)
_FIG3_WEBVM = replace(
    WEBVM_PROFILE, name="fig3-webvm", address_blocks=1 << 16,
    run_min=8, run_max=32, random_run_fraction=0.5,
)

#: Paper's reported worst case (mail @ 32 KB).
PAPER_MAIL_32K = 17.5

#: 4-MB request buffer (§3.1) in 4-KB blocks.
BUFFER_BLOCKS = 1024


def _amplifications(profile, num_writes: int, seed: int) -> Dict[int, float]:
    trace = synthesize(profile, num_writes, seed=seed)
    writes = list(trace.writes())
    io_blocks = {}
    for chunk_size in CHUNK_SIZES:
        assembler = LargeChunkAssembler(
            chunk_size=chunk_size, buffer_blocks=BUFFER_BLOCKS
        )
        stats = assembler.run_trace(writes)
        io_blocks[chunk_size] = stats.total_io_blocks
    base = io_blocks[BLOCK_SIZE]
    return {size: io_blocks[size] / base for size in CHUNK_SIZES}


def run(num_writes: int = 60_000, seed: int = 3) -> ExperimentResult:
    """Regenerate Figure 3."""
    mail = _amplifications(_FIG3_MAIL, num_writes, seed)
    webvm = _amplifications(_FIG3_WEBVM, num_writes, seed)

    rows: List[List] = []
    for size in CHUNK_SIZES:
        rows.append(
            [f"{size // 1024} KB", f"{mail[size]:.1f}x", f"{webvm[size]:.1f}x"]
        )
    table = format_table(
        headers=["chunk size", "mail (norm. IO)", "webVM (norm. IO)"],
        rows=rows,
        title="Figure 3: IO amplification vs 4-KB chunking",
    )
    comparisons = [
        Comparison("mail @32KB IO amplification", PAPER_MAIL_32K, mail[32768], "x"),
    ]
    return ExperimentResult(
        name="Figure 3",
        headline=(
            f"32-KB chunking costs {mail[32768]:.1f}x (mail) / "
            f"{webvm[32768]:.1f}x (webVM) the IO of 4-KB chunking"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"mail": mail, "webvm": webvm},
    )

"""Table 1: baseline memory-bandwidth breakdown by data path (§4.1).

Measured shares of host-DRAM traffic per named path on the profiling
workloads, with each path's memory-capacity class — Observation #1's
point that the bandwidth hogs need almost no capacity while table
caching needs 10s-100s of GB.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table, pct
from ..systems.accounting import MemPath
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "PAPER_SHARES"]

#: Table 1's rows: (write-only share, mixed share, capacity class).
PAPER_SHARES: Dict[str, tuple] = {
    MemPath.NIC_HOST: (0.236, 0.277, "KBs-MBs"),
    MemPath.PREDICTION: (0.237, 0.139, "MBs"),
    MemPath.FPGA: (0.254, 0.356, "MBs"),
    MemPath.TABLE_CACHE: (0.257, 0.151, "10-100s GB"),
    MemPath.DATA_SSD: (0.017, 0.079, "KBs-MBs"),
}


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Table 1."""
    write = get_report("baseline", "profiling-write", scale).memory_breakdown()
    mixed = get_report("baseline", "profiling-mixed", scale).memory_breakdown()

    rows: List[List] = []
    comparisons: List[Comparison] = []
    for path, (paper_write, paper_mixed, capacity) in PAPER_SHARES.items():
        measured_write = write.get(path, 0.0)
        measured_mixed = mixed.get(path, 0.0)
        rows.append([
            path,
            f"{pct(measured_write)} (paper {pct(paper_write)})",
            f"{pct(measured_mixed)} (paper {pct(paper_mixed)})",
            capacity,
        ])
        comparisons.append(
            Comparison(f"{path} (write-only)", paper_write, measured_write)
        )

    table = format_table(
        headers=["data path", "BW share (write-only)", "BW share (mixed)",
                 "memory capacity"],
        rows=rows,
        title="Table 1: baseline memory-BW breakdown",
    )
    hot_paths = sum(
        write.get(path, 0.0)
        for path in (MemPath.NIC_HOST, MemPath.PREDICTION, MemPath.FPGA)
    )
    return ExperimentResult(
        name="Table 1",
        headline=(
            f"{pct(hot_paths)} of baseline DRAM traffic is buffering/"
            f"forwarding that needs <1 GB of capacity (paper: 74.4-85.1%)"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"write": write, "mixed": mixed},
    )

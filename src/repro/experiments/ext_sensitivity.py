"""Extension study: sensitivity of the conclusions to calibration.

DESIGN.md's calibration policy fits per-event cycle costs against the
paper's measured points; a fair question is whether the reproduction's
conclusions depend on those exact constants.  This study scales *every*
CPU cycle cost by a common factor (0.5x-2.0x) and re-solves Figure 14's
Write-H column:

* absolute throughputs move (they must — cycles/byte scale linearly),
* the FIDR-over-baseline *speedup* barely moves, because both systems'
  CPU ledgers scale together and FIDR's advantage is structural (which
  tasks exist, not how many cycles each costs),
* only at implausibly cheap CPU does the bottleneck migrate off the CPU
  entirely — and then the conclusion gets stronger, not weaker.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List

from ..analysis.report import Comparison, format_table, gbps
from ..analysis.throughput import solve_throughput
from ..datared.compression import ModeledCompressor
from ..hw.specs import TARGET_SERVER
from ..systems.baseline import BaselineSystem
from ..systems.config import CpuCosts, SystemConfig
from ..systems.fidr import FidrSystem
from ..workloads.generator import WORKLOADS, build_workload
from ..workloads.runner import replay
from .common import DEFAULT_SCALE, ExperimentResult, Scale

__all__ = ["run", "scaled_costs"]

FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)


def scaled_costs(factor: float) -> CpuCosts:
    """Every per-event cycle cost multiplied by ``factor``."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    scaled = {
        field.name: getattr(CpuCosts(), field.name) * factor
        for field in fields(CpuCosts)
    }
    return CpuCosts(**scaled)


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Re-solve Figure 14 (Write-H) under scaled CPU calibrations."""
    spec = WORKLOADS["write-h"]
    trace = build_workload(
        spec, num_chunks=scale.num_chunks, replicas=scale.replicas,
        seed=scale.seed,
    )
    rows: List[List] = []
    speedups: Dict[float, float] = {}
    for factor in FACTORS:
        config = SystemConfig(cpu=scaled_costs(factor))
        kwargs = dict(
            server=TARGET_SERVER,
            config=config,
            num_buckets=scale.num_buckets,
            cache_lines=scale.cache_lines,
            compressor=ModeledCompressor(spec.comp_ratio),
        )
        base = replay(BaselineSystem(**kwargs), trace).report
        fidr = replay(FidrSystem(**kwargs), trace).report
        base_solved = solve_throughput(base)
        fidr_solved = solve_throughput(
            fidr, use_cache_engine=True, tree_window=4
        )
        speedup = fidr_solved.throughput / base_solved.throughput
        speedups[factor] = speedup
        rows.append([
            f"{factor:.2f}x",
            gbps(base_solved.throughput),
            gbps(fidr_solved.throughput),
            f"{speedup:.2f}x",
            base_solved.bottleneck,
            fidr_solved.bottleneck,
        ])

    table = format_table(
        headers=["CPU-cost scale", "baseline", "FIDR", "speedup",
                 "baseline bottleneck", "FIDR bottleneck"],
        rows=rows,
        title="Figure-14 Write-H column under scaled CPU calibration",
    )
    nominal = speedups[1.0]
    spread = max(speedups.values()) / min(speedups.values())
    comparisons = [
        Comparison("nominal speedup", 3.3, nominal, "x"),
        Comparison("speedup spread across 4x calibration range", None, spread, "x"),
    ]
    return ExperimentResult(
        name="Extension: calibration sensitivity",
        headline=(
            f"scaling every CPU cost 0.5x-2x moves the Write-H speedup "
            f"only within {min(speedups.values()):.2f}x-"
            f"{max(speedups.values()):.2f}x — the conclusion is structural, "
            f"not a calibration artifact"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"speedups": speedups},
    )

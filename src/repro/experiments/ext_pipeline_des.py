"""Extension study: queueing validation of the Figure-14 solver.

The paper (and our Figure-14 reproduction) projects throughput from
resource intensities — a closed form with no queueing in it.  This
study runs the same measured intensities through a discrete-event
pipeline (FIFO stage servers, windowed closed-loop injection) and
checks that the two agree at saturation, then reports what the closed
form cannot: the load-latency curve and where each stage's utilization
sits below saturation.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table, gbps, pct
from ..analysis.throughput import solve_throughput
from ..systems.pipeline_sim import simulate_write_pipeline
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run"]

WINDOWS = (1, 2, 4, 8, 16, 32)


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """DES vs closed form on the Write-H workload (target socket)."""
    rows: List[List] = []
    data: Dict = {}
    comparisons: List[Comparison] = []
    for flavour, label, solver_kwargs in (
        ("baseline", "baseline", dict()),
        ("fidr", "FIDR", dict(use_cache_engine=True, tree_window=4)),
    ):
        report = get_report(flavour, "write-h", scale, server="target")
        solved = solve_throughput(report, **solver_kwargs)
        curve = {}
        for window in WINDOWS:
            result = simulate_write_pipeline(
                report, outstanding=window, num_batches=300, **solver_kwargs
            )
            curve[window] = result
            rows.append([
                label,
                window,
                gbps(result.throughput_bytes_per_s),
                f"{result.mean_batch_latency_s * 1e6:.1f} us",
                pct(result.stage_utilization[result.bottleneck]),
                result.bottleneck,
            ])
        saturated = curve[max(WINDOWS)]
        data[label] = {
            "solver": solved.throughput,
            "saturated": saturated.throughput_bytes_per_s,
            "curve": {
                window: result.throughput_bytes_per_s
                for window, result in curve.items()
            },
        }
        comparisons.append(
            Comparison(
                f"{label}: DES vs solver at saturation",
                solved.throughput / 1e9,
                saturated.throughput_bytes_per_s / 1e9,
                "GB/s",
            )
        )

    table = format_table(
        headers=["system", "window", "throughput", "batch latency",
                 "bottleneck util", "bottleneck"],
        rows=rows,
        title="write-pipeline queueing simulation (Write-H, target socket)",
    )
    return ExperimentResult(
        name="Extension: pipeline DES validation",
        headline=(
            "the queueing simulation saturates exactly at the Figure-14 "
            "solver's ceilings, and shows the latency each extra batch of "
            "queue depth buys past saturation"
        ),
        comparisons=comparisons,
        tables=[table],
        data=data,
    )

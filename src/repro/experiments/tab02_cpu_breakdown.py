"""Table 2: CPU composition of table-cache management (§4.3).

Within the table-caching work, small-data-structure operations (tree
indexing, table-SSD queueing) dominate CPU while the actual cached
content — hundreds of GB — costs almost nothing to scan.  That split is
Observation #4's argument for hybrid CPU/FPGA caching: offload the
index and the IO queues, keep the content host-side.

The paper normalizes the four component shares against total CPU; we do
the same and also report the "small-structure" aggregate (paper: 68.8%
of the caching overhead).
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table, pct
from ..systems.accounting import CpuTask
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "PAPER_ROWS"]

#: Table 2: component -> (normalized CPU share, structure, capacity, best place).
PAPER_ROWS: Dict[str, tuple] = {
    CpuTask.TREE: (0.439, "Tree nodes", "Below 3 GB", "Accelerator"),
    CpuTask.TABLE_SSD: (0.247, "IO control queues", "KB-MBs", "Accelerator"),
    CpuTask.CONTENT: (0.063, "Table cache content", "10-100s GB", "Host"),
    CpuTask.REPLACEMENT: (0.010, "LRU and free lists", "MBs", "Host or accelerator"),
}


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Table 2 (write-only profiling workload)."""
    report = get_report("baseline", "profiling-write", scale)
    breakdown = report.cpu_breakdown()
    caching_total = sum(breakdown.get(task, 0.0) for task in PAPER_ROWS)
    paper_total = sum(share for share, *_ in PAPER_ROWS.values())

    rows: List[List] = []
    comparisons: List[Comparison] = []
    for task, (paper_share, structure, capacity, place) in PAPER_ROWS.items():
        measured = breakdown.get(task, 0.0)
        # Normalize both to their caching-component totals so the split
        # is compared like-for-like.
        measured_norm = measured / caching_total if caching_total else 0.0
        paper_norm = paper_share / paper_total
        rows.append([
            task,
            f"{pct(measured_norm)} (paper {pct(paper_norm)})",
            structure,
            capacity,
            place,
        ])
        comparisons.append(Comparison(f"{task} share", paper_norm, measured_norm))

    small_structs = sum(
        breakdown.get(task, 0.0) for task in (CpuTask.TREE, CpuTask.TABLE_SSD)
    )
    small_norm = small_structs / caching_total if caching_total else 0.0
    comparisons.append(
        Comparison("small-structure aggregate", 0.688 / paper_total, small_norm)
    )

    table = format_table(
        headers=["component", "CPU share (norm.)", "structure", "capacity",
                 "best place to run"],
        rows=rows,
        title="Table 2: table-cache management CPU composition",
    )
    return ExperimentResult(
        name="Table 2",
        headline=(
            f"{pct(small_norm)} of table-caching CPU goes to small data "
            f"structures (tree + SSD queues); content scanning is "
            f"{pct(breakdown.get(CpuTask.CONTENT, 0.0) / caching_total if caching_total else 0.0)}"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"breakdown": breakdown, "caching_total": caching_total},
    )

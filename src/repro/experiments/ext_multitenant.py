"""Extension study: tenant-aware table-cache replacement (§8).

The paper's discussion notes that in multi-tenant environments a basic
LRU suffers from cache contention and suggests a prioritized policy
that considers each workload's locality.  Here two tenants share one
table cache:

* tenant A — mail-like, high duplication and recency (its hits are
  worth protecting),
* tenant B — scan-like, low locality (its lines are nearly worthless
  but under plain LRU they still evict A's).

We replay the interleaved stream under plain LRU and under
:class:`~repro.cache.policy.PartitionedLru` with A favoured, and
compare per-tenant hit rates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.report import Comparison, format_table, pct
from ..cache.policy import PartitionedLru
from ..cache.table_cache import TableCache
from ..datared.hash_pbn import HashPbnTable, InMemoryBucketStore
from ..datared.hashing import fingerprint
from ..workloads.synthetic import MAIL_PROFILE, WEBVM_PROFILE, synthesize
from .common import ExperimentResult

__all__ = ["run"]


def _tenant_streams(num_ops: int, seed: int) -> List[Tuple[str, bytes]]:
    """Interleaved (tenant, digest) stream from two trace profiles."""
    mail = synthesize(MAIL_PROFILE, num_ops, seed=seed, first_content_id=1)
    scan = synthesize(
        WEBVM_PROFILE, num_ops, seed=seed + 1, first_content_id=1 << 40
    )
    stream: List[Tuple[str, bytes]] = []
    for a, b in zip(mail.writes(), scan.writes()):
        stream.append(("mail", fingerprint(str(a[1]).encode())))
        stream.append(("scan", fingerprint(str(b[1]).encode())))
    return stream


def _replay(stream, policy=None, cache_lines: int = 512) -> Dict[str, float]:
    """Run the digest stream through a shared cache; per-tenant hit rates."""
    cache = TableCache(
        InMemoryBucketStore(), capacity_lines=cache_lines, lru=policy
    )
    table = HashPbnTable(1 << 14, store=cache)
    hits: Dict[str, int] = {"mail": 0, "scan": 0}
    accesses: Dict[str, int] = {"mail": 0, "scan": 0}
    next_pbn = 0
    for tenant, digest in stream:
        if policy is not None:
            policy.set_active(tenant)
        before = cache.stats.hits + cache.stats.warm_hits
        if table.lookup(digest) is None:
            table.insert(digest, next_pbn)
            next_pbn += 1
        after = cache.stats.hits + cache.stats.warm_hits
        # Attribute this operation's cold-lookup outcome to the tenant.
        accesses[tenant] += 1
        if after > before:
            hits[tenant] += 1
    return {
        tenant: hits[tenant] / accesses[tenant] if accesses[tenant] else 0.0
        for tenant in hits
    }


def run(num_ops: int = 6000, seed: int = 2) -> ExperimentResult:
    """Compare plain LRU against the prioritized policy."""
    stream = _tenant_streams(num_ops, seed)
    plain = _replay(stream, policy=None)
    prioritized = _replay(
        stream, policy=PartitionedLru({"mail": 3.0, "scan": 1.0})
    )

    rows: List[List] = []
    for tenant in ("mail", "scan"):
        rows.append([
            tenant,
            pct(plain[tenant]),
            pct(prioritized[tenant]),
            f"{(prioritized[tenant] - plain[tenant]) * 100:+.1f} pts",
        ])
    table = format_table(
        headers=["tenant", "plain LRU hit rate", "prioritized hit rate",
                 "change"],
        rows=rows,
        title="shared table cache, two tenants (512 lines)",
    )
    gain = prioritized["mail"] - plain["mail"]
    cost = plain["scan"] - prioritized["scan"]
    comparisons = [
        Comparison("mail tenant hit-rate gain (pts)", None, gain * 100),
        Comparison("scan tenant hit-rate cost (pts)", None, cost * 100),
    ]
    return ExperimentResult(
        name="Extension: prioritized LRU",
        headline=(
            f"protecting the high-locality tenant buys "
            f"{gain * 100:+.1f} hit-rate points for "
            f"{cost * 100:.1f} points of scan-tenant loss"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"plain": plain, "prioritized": prioritized},
    )

"""Ablations over FIDR's design choices.

The paper fixes several parameters (4-KB chunks, 2.8% cache fraction,
64-chunk batches, 8-line eviction batches, 50% compressibility).  These
sweeps show how the results move when each is varied, holding the rest
at the paper's values:

* :func:`cache_size_sweep` — the hit-rate ↔ memory-traffic trade behind
  workload factor 5 (and the reason Write-L benefits least from FIDR),
* :func:`eviction_batch_sweep` — §5.5's batched LRU shipping: bigger
  batches amortize host↔engine interaction but evict hotter lines,
* :func:`compressibility_sweep` — how the stored fraction propagates
  into SSD, PCIe and cost numbers,
* :func:`batch_size_sweep` — NIC digest-batch size vs. metadata
  overhead and buffering requirements.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import format_table, pct
from ..datared.compression import ModeledCompressor
from ..systems.config import SystemConfig
from ..systems.fidr import FidrSystem
from ..workloads.generator import WORKLOADS, build_workload
from ..workloads.runner import replay
from .common import DEFAULT_SCALE, ExperimentResult, Scale

__all__ = [
    "cache_size_sweep",
    "eviction_batch_sweep",
    "compressibility_sweep",
    "batch_size_sweep",
    "run",
]


def _fidr_report(trace, comp_ratio=0.5, cache_lines=1024, num_buckets=1 << 15,
                 config=None):
    system = FidrSystem(
        num_buckets=num_buckets,
        cache_lines=cache_lines,
        compressor=ModeledCompressor(comp_ratio),
        config=config,
    )
    return replay(system, trace).report


def cache_size_sweep(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Hit rate and DRAM traffic vs. table-cache size (Write-M)."""
    trace = build_workload(
        WORKLOADS["write-m"], num_chunks=scale.num_chunks,
        replicas=scale.replicas, seed=scale.seed,
    )
    rows: List[List] = []
    series: Dict[int, Dict[str, float]] = {}
    for lines in (128, 256, 512, 1024, 2048, 4096):
        report = _fidr_report(trace, cache_lines=lines,
                              num_buckets=scale.num_buckets)
        hit = report.cache_stats.hit_rate
        amp = report.memory_amplification()
        series[lines] = {"hit": hit, "amp": amp}
        rows.append([
            f"{lines} lines ({lines * 4} KiB)",
            pct(hit),
            f"{amp:.2f}",
            f"{report.cache_stats.fetches:,}",
        ])
    table = format_table(
        headers=["cache size", "hit rate", "DRAM B/client B", "SSD fetches"],
        rows=rows,
        title="ablation: table-cache size (Write-M)",
    )
    hits = [series[lines]["hit"] for lines in sorted(series)]
    return ExperimentResult(
        name="Ablation: cache size",
        headline=(
            f"hit rate climbs {pct(hits[0])} → {pct(hits[-1])} across a 32x "
            f"cache-size sweep; DRAM traffic follows the miss rate"
        ),
        tables=[table],
        data={"series": series},
    )


def eviction_batch_sweep(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """§5.5's LRU-batch size: interaction amortization vs. hit rate."""
    trace = build_workload(
        WORKLOADS["write-m"], num_chunks=scale.num_chunks,
        replicas=scale.replicas, seed=scale.seed,
    )
    rows: List[List] = []
    series = {}
    for batch in (1, 4, 8, 32, 128):
        config = SystemConfig(eviction_batch=batch)
        report = _fidr_report(trace, cache_lines=scale.cache_lines,
                              num_buckets=scale.num_buckets, config=config)
        hit = report.cache_stats.hit_rate
        evictions = report.cache_stats.evictions
        series[batch] = {"hit": hit, "evictions": evictions}
        interactions = evictions / batch if batch else 0
        rows.append([batch, pct(hit), f"{evictions:,}", f"{interactions:,.0f}"])
    table = format_table(
        headers=["eviction batch", "hit rate", "lines evicted",
                 "host<->engine eviction messages"],
        rows=rows,
        title="ablation: eviction batch size (Write-M)",
    )
    return ExperimentResult(
        name="Ablation: eviction batch",
        headline=(
            "batching evictions cuts host↔engine interactions linearly and "
            "costs almost no hit rate until batches approach cache size"
        ),
        tables=[table],
        data={"series": series},
    )


def compressibility_sweep(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Stored fraction's effect on SSD traffic and reduction factor."""
    spec = WORKLOADS["write-h"]
    rows: List[List] = []
    series = {}
    for ratio in (0.25, 0.5, 0.75, 1.0):
        trace = build_workload(
            spec, num_chunks=scale.num_chunks, replicas=scale.replicas,
            seed=scale.seed,
        )
        report = _fidr_report(trace, comp_ratio=ratio,
                              cache_lines=scale.cache_lines,
                              num_buckets=scale.num_buckets)
        reduction = report.reduction
        series[ratio] = reduction.reduction_factor
        ssd_bytes = reduction.stored_bytes
        rows.append([
            pct(ratio),
            f"{reduction.reduction_factor:.1f}x",
            f"{ssd_bytes / 1e6:.1f} MB",
        ])
    table = format_table(
        headers=["stored fraction (compression)", "overall reduction",
                 "flash written"],
        rows=rows,
        title="ablation: compressibility (Write-H, 88% dedup)",
    )
    return ExperimentResult(
        name="Ablation: compressibility",
        headline=(
            "dedup dominates on Write-H: even incompressible data still "
            f"reduces {series[1.0]:.1f}x; compression multiplies on top"
        ),
        tables=[table],
        data={"series": series},
    )


def batch_size_sweep(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """NIC digest-batch size vs. per-chunk metadata overhead."""
    trace = build_workload(
        WORKLOADS["write-h"], num_chunks=scale.num_chunks,
        replicas=scale.replicas, seed=scale.seed,
    )
    rows: List[List] = []
    series = {}
    for batch_chunks in (16, 64, 256, 1024):
        config = SystemConfig(batch_chunks=batch_chunks)
        system = FidrSystem(
            num_buckets=scale.num_buckets, cache_lines=scale.cache_lines,
            compressor=ModeledCompressor(0.5), config=config,
        )
        report = replay(system, trace).report
        root_bytes = report.pcie.root_complex_bytes / report.logical_bytes
        buffered = system.nic.spec.buffer_capacity
        series[batch_chunks] = root_bytes
        rows.append([
            batch_chunks,
            f"{root_bytes:.4f}",
            f"{batch_chunks * 4096 / 1024:.0f} KiB",
            pct(batch_chunks * 4096 / buffered),
        ])
    table = format_table(
        headers=["batch (chunks)", "root-complex B/client B",
                 "NIC buffering per batch", "of NIC buffer"],
        rows=rows,
        title="ablation: NIC digest-batch size (Write-H)",
    )
    return ExperimentResult(
        name="Ablation: batch size",
        headline=(
            "metadata traffic through the root complex is tiny at every "
            "batch size — FIDR's PCIe frugality is not batch-sensitive"
        ),
        tables=[table],
        data={"series": series},
    )


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """All four ablations, concatenated."""
    parts = [
        cache_size_sweep(scale),
        eviction_batch_sweep(scale),
        compressibility_sweep(scale),
        batch_size_sweep(scale),
    ]
    return ExperimentResult(
        name="Ablations",
        headline="design-choice sweeps (cache size, eviction batch, "
        "compressibility, batch size)",
        tables=[table for part in parts for table in part.tables],
        data={part.name: part.data for part in parts},
    )

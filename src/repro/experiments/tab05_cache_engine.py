"""Table 5: Cache HW-Engine resources and throughput estimates (§7.7.2).

Three columns, all computed:

* **All** — 410-MB cache tree plus table-SSD controllers, with the
  prototype's 2 GB/s table-SSD link bounding throughput (paper: 10 GB/s
  for Write-M),
* **Medium tree** — same tree without the table-SSD path (80 GB/s),
* **Large tree** — a ~100-GB cache: 13 on-chip levels, node storage
  spilling into UltraRAM (paper: 78.8% URAM, est. 64 GB/s).

Tree geometry (levels, URAM spill) comes from node arithmetic;
throughputs from the Figure-13 engine model at Write-M's measured miss
rate.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import Comparison, format_table, pct
from ..cache.cache_engine import CacheEngineConfig, CacheEngineModel
from ..hw.fpga_resources import estimate_cache_engine_resources
from ..hw.specs import VCU1525
from .common import DEFAULT_SCALE, ExperimentResult, Scale
from .fig13_tree import _measured_miss_rate

__all__ = ["run", "COLUMNS", "PAPER_THROUGHPUT"]

MB = 1024 * 1024

#: (label, cache bytes, with table SSD, table-SSD read BW, clock).
COLUMNS = (
    ("All", 410 * MB, True, 2e9, 250e6),
    ("Except SSD, medium tree", 410 * MB, False, None, 250e6),
    ("Except SSD, large tree", 99_645 * MB, False, None, 200e6),
)

#: Paper's estimated max throughput for Write-M, GB/s, per column.
PAPER_THROUGHPUT = {"All": 10.0, "Except SSD, medium tree": 80.0,
                    "Except SSD, large tree": 64.0}
PAPER_LEVELS = {"All": (8, 1), "Except SSD, medium tree": (8, 1),
                "Except SSD, large tree": (13, 1)}
PAPER_URAM_PCT = 0.788  # large tree


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Table 5 (Write-M workload)."""
    miss = _measured_miss_rate("write-m", scale)
    rows: List[List] = []
    comparisons: List[Comparison] = []
    data = {}
    for label, cache_bytes, with_ssd, ssd_bw, clock in COLUMNS:
        estimate = estimate_cache_engine_resources(cache_bytes, with_table_ssd=with_ssd)
        geometry = estimate["geometry"]
        resources = estimate["resources"]
        engine = CacheEngineModel(
            CacheEngineConfig(
                clock_hz=clock,
                on_chip_levels=geometry.on_chip_levels,
                table_ssd_read_bw=ssd_bw,
            )
        )
        throughput = engine.analytic_throughput(miss, window=4).throughput
        util = resources.utilization(VCU1525)
        rows.append([
            label,
            f"{cache_bytes // MB:,} MB",
            f"{geometry.on_chip_levels}/{geometry.off_chip_levels}",
            f"{throughput / 1e9:.0f}",
            f"{resources.luts / 1000:.0f}K ({pct(util['luts'])})",
            f"{resources.brams} ({pct(util['brams'])})",
            f"{resources.urams} ({pct(util.get('urams', 0.0))})" if resources.urams else "-",
        ])
        comparisons.append(
            Comparison(
                f"{label}: est. throughput",
                PAPER_THROUGHPUT[label],
                throughput / 1e9,
                "GB/s",
            )
        )
        comparisons.append(
            Comparison(
                f"{label}: on-chip levels",
                PAPER_LEVELS[label][0],
                geometry.on_chip_levels,
            )
        )
        data[label] = {"geometry": geometry, "resources": resources,
                       "throughput": throughput}

    large = data["Except SSD, large tree"]["resources"]
    comparisons.append(
        Comparison("large tree URAM share", PAPER_URAM_PCT, large.urams / VCU1525.urams)
    )
    table = format_table(
        headers=["configuration", "cache size", "levels (chip/DRAM)",
                 "est. GB/s (Write-M)", "LUTs", "BRAMs", "URAMs"],
        rows=rows,
        title="Table 5: Cache HW-Engine resources & estimated throughput",
    )
    return ExperimentResult(
        name="Table 5",
        headline=(
            f"a 243x larger cache costs only 5 more on-chip levels "
            f"(URAM-backed) and keeps "
            f"{data['Except SSD, large tree']['throughput'] / 1e9:.0f} GB/s "
            f"(paper: 64 GB/s)"
        ),
        comparisons=comparisons,
        tables=[table],
        data=data,
    )

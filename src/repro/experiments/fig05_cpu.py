"""Figure 5: the baseline's CPU wall and its composition (paper §3.2.2).

(a) Cores required at the 75 GB/s target — the paper projects up to 67
Xeon cores (3x a 22-core socket).  (b) Utilization breakdown: 85.2%
(write-only) and 50.8% (mixed) of baseline CPU time is memory/IO
management (table-cache management 52.4%, unique-chunk predictor 32.7%),
not data computation.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import Comparison, format_table, pct
from ..hw.specs import XEON_E5_4669V4
from ..systems.accounting import CpuTask
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "PAPER_CORES", "PAPER_MGMT_WRITE", "PAPER_MGMT_MIXED"]

PAPER_CORES = 67.0
PAPER_MGMT_WRITE = 0.852
PAPER_MGMT_MIXED = 0.508
PAPER_PREDICTOR_SHARE = 0.327
PAPER_TABLE_MGMT_SHARE = 0.524
TARGET = 75e9


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 5 (a: cores required, b: breakdown)."""
    rows_a: List[List] = []
    rows_b: List[List] = []
    measured = {}
    for key, label in (("profiling-write", "Write-only"),
                       ("profiling-mixed", "Mixed read/write")):
        report = get_report("baseline", key, scale)
        cores = report.cores_required(TARGET)
        groups = report.cpu_group_breakdown()
        breakdown = report.cpu_breakdown()
        table_mgmt = (
            breakdown.get(CpuTask.TREE, 0.0)
            + breakdown.get(CpuTask.TABLE_SSD, 0.0)
            + breakdown.get(CpuTask.REPLACEMENT, 0.0)
        )
        measured[label] = {
            "cores": cores,
            "mgmt": groups.get("memory/IO management", 0.0),
            "predictor": breakdown.get(CpuTask.PREDICTOR, 0.0),
            "table_mgmt": table_mgmt,
        }
        rows_a.append([
            label,
            f"{cores:.0f}",
            f"{cores / XEON_E5_4669V4.cores:.1f}x",
        ])
        rows_b.append([
            label,
            pct(groups.get("memory/IO management", 0.0)),
            pct(breakdown.get(CpuTask.PREDICTOR, 0.0)),
            pct(table_mgmt),
        ])

    table_a = format_table(
        headers=["workload", "cores @75 GB/s", "vs 22-core socket"],
        rows=rows_a,
        title="Figure 5a: baseline cores required",
    )
    table_b = format_table(
        headers=["workload", "memory/IO mgmt", "predictor", "table cache mgmt"],
        rows=rows_b,
        title="Figure 5b: baseline CPU utilization breakdown",
    )
    write = measured["Write-only"]
    comparisons = [
        Comparison("write-only cores @75 GB/s", PAPER_CORES, write["cores"]),
        Comparison("write-only mgmt share", PAPER_MGMT_WRITE, write["mgmt"]),
        Comparison(
            "mixed mgmt share",
            PAPER_MGMT_MIXED,
            measured["Mixed read/write"]["mgmt"],
        ),
        Comparison(
            "predictor share (write-only)",
            PAPER_PREDICTOR_SHARE,
            write["predictor"],
        ),
        Comparison(
            "table cache mgmt share (write-only)",
            PAPER_TABLE_MGMT_SHARE,
            write["table_mgmt"],
        ),
    ]
    return ExperimentResult(
        name="Figure 5",
        headline=(
            f"baseline needs {write['cores']:.0f} cores at 75 GB/s "
            f"({write['cores'] / XEON_E5_4669V4.cores:.1f}x a socket); "
            f"{pct(write['mgmt'])} of it is memory/IO management "
            f"(paper: 67 cores, 85.2%)"
        ),
        comparisons=comparisons,
        tables=[table_a, table_b],
        data=measured,
    )

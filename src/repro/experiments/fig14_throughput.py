"""Figure 14: overall per-socket throughput by technique (§7.5).

Projects each configuration onto the high-end 22-core / 170 GB/s /
1-Tbps socket (the paper's simulation target) and solves for the
binding resource ceiling:

1. baseline (CIDR + software caching),
2. + NIC hashing and peer-to-peer transfers (software caching),
3. + Cache HW-Engine with the single-update tree,
4. + the multi-update (crash/replay) optimization.

Paper shape: stage 2 alone gives up to 1.6x; stage 3 *hurts* the
lower-hit-rate workloads (single-update tree is slower than the
software cache at scale); stage 4 recovers it, reaching up to 3.3x on
writes and 1.7x on Read-Mixed — where the optimization does not help
because the data-SSD software stack keeps the CPU the bottleneck.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table
from ..analysis.throughput import solve_throughput
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report
from .tab03_workloads import WORKLOAD_KEYS

__all__ = ["run", "PAPER_MAX_WRITE_SPEEDUP", "PAPER_MIXED_SPEEDUP"]

PAPER_MAX_WRITE_SPEEDUP = 3.3
PAPER_NIC_P2P_SPEEDUP = 1.6
PAPER_MIXED_SPEEDUP = 1.7

_CONFIGS = (
    ("baseline", "baseline", dict()),
    ("fidr-sw-cache", "+NIC hash & P2P", dict()),
    ("fidr-w1", "+HW cache (single-update)", dict(use_cache_engine=True, tree_window=1)),
    ("fidr", "+multi-update tree", dict(use_cache_engine=True, tree_window=4)),
)


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 14."""
    rows: List[List] = []
    speedups: Dict[str, Dict[str, float]] = {}
    bottlenecks: Dict[str, str] = {}
    for key in WORKLOAD_KEYS:
        ceilings = {}
        for flavour, label, solver_kwargs in _CONFIGS:
            report = get_report(flavour, key, scale, server="target")
            ceilings[label] = solve_throughput(report, **solver_kwargs)
        base = ceilings["baseline"].throughput
        speedups[key] = {
            label: solved.throughput / base for label, solved in ceilings.items()
        }
        final = ceilings["+multi-update tree"]
        bottlenecks[key] = final.bottleneck
        rows.append(
            [key]
            + [f"{ceilings[label].throughput / 1e9:.1f}" for _, label, _ in _CONFIGS]
            + [f"{speedups[key]['+multi-update tree']:.2f}x", final.bottleneck]
        )

    table = format_table(
        headers=["workload", "baseline (GB/s)", "+NIC/P2P", "+HW cache (w=1)",
                 "+multi-update", "speedup", "final bottleneck"],
        rows=rows,
        title="Figure 14: per-socket throughput by technique (target socket)",
    )
    max_write = max(
        speedups[k]["+multi-update tree"] for k in ("write-h", "write-m", "write-l")
    )
    max_nic = max(
        speedups[k]["+NIC hash & P2P"] for k in ("write-h", "write-m", "write-l")
    )
    single_update_dips = [
        k for k in WORKLOAD_KEYS
        if speedups[k]["+HW cache (single-update)"]
        < speedups[k]["+NIC hash & P2P"]
    ]
    comparisons = [
        Comparison("max write speedup", PAPER_MAX_WRITE_SPEEDUP, max_write, "x"),
        Comparison("NIC+P2P alone (max write)", PAPER_NIC_P2P_SPEEDUP, max_nic, "x"),
        Comparison(
            "Read-Mixed speedup",
            PAPER_MIXED_SPEEDUP,
            speedups["read-mixed"]["+multi-update tree"],
            "x",
        ),
    ]
    return ExperimentResult(
        name="Figure 14",
        headline=(
            f"FIDR reaches {max_write:.1f}x on writes and "
            f"{speedups['read-mixed']['+multi-update tree']:.1f}x on "
            f"Read-Mixed (paper: 3.3x / 1.7x); single-update tree dips on "
            f"{', '.join(single_update_dips) or 'none'}"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"speedups": speedups, "bottlenecks": bottlenecks},
    )

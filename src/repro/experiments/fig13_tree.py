"""Figure 13: Cache HW-Engine throughput scaling (§7.4).

Runs the engine's queueing model for speculation windows 1, 2 and 4 on
the Write-H and Write-M miss profiles (both the closed-form caps and
the request-level simulation with emergent crash/replay), reproducing:

* Write-M: 27.1 GB/s single-update → 63.8 GB/s with 4 concurrent
  updates (near-linear until the commit port binds),
* Write-H: ~54 GB/s single-update, saturating near 127 GB/s at the
  FPGA-board DRAM bandwidth,
* crash/replay rate below 0.1%.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table
from ..cache.cache_engine import CacheEngineModel
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "PAPER_POINTS"]

#: (workload, window) -> paper GB/s.
PAPER_POINTS = {
    ("write-m", 1): 27.1,
    ("write-m", 4): 63.8,
    ("write-h", 1): 54.0,
    ("write-h", 4): 127.0,
}
WINDOWS = (1, 2, 4)
SIM_REQUESTS = 30_000


def _measured_miss_rate(key: str, scale: Scale) -> float:
    """Engine-visible miss rate: bucket fetches per written chunk."""
    report = get_report("fidr", key, scale)
    chunks = report.logical_write_bytes / 4096
    return min(1.0, report.cache_stats.fetches / chunks) if chunks else 0.0


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 13."""
    model = CacheEngineModel()
    rows: List[List] = []
    comparisons: List[Comparison] = []
    data: Dict = {}
    worst_crash = 0.0
    for key in ("write-h", "write-m"):
        miss = _measured_miss_rate(key, scale)
        series = {}
        for window in WINDOWS:
            analytic = model.analytic_throughput(miss, window=window)
            sim = model.simulate(
                SIM_REQUESTS, miss, window=window, seed=scale.seed
            )
            worst_crash = max(worst_crash, sim.crash_rate)
            series[window] = sim.throughput_bytes_per_s
            rows.append([
                key,
                window,
                f"{analytic.throughput / 1e9:.1f}",
                f"{sim.throughput_bytes_per_s / 1e9:.1f}",
                analytic.bottleneck,
                f"{sim.crash_rate:.4%}",
            ])
            paper = PAPER_POINTS.get((key, window))
            if paper is not None:
                comparisons.append(
                    Comparison(
                        f"{key} window={window}",
                        paper,
                        sim.throughput_bytes_per_s / 1e9,
                        "GB/s",
                    )
                )
        data[key] = {"miss_rate": miss, "series": series}

    table = format_table(
        headers=["workload", "window", "analytic (GB/s)", "simulated (GB/s)",
                 "bottleneck", "crash rate"],
        rows=rows,
        title="Figure 13: HW tree indexing throughput vs concurrent updates",
    )
    wm = data["write-m"]["series"]
    comparisons.append(Comparison("crash/replay rate (< 0.1%)", 0.001, worst_crash))
    return ExperimentResult(
        name="Figure 13",
        headline=(
            f"multi-update speculation lifts Write-M from "
            f"{wm[1] / 1e9:.1f} to {wm[4] / 1e9:.1f} GB/s "
            f"(paper: 27.1 → 63.8); crash rate {worst_crash:.3%}"
        ),
        comparisons=comparisons,
        tables=[table],
        data=data,
    )

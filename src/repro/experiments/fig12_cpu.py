"""Figure 12: FIDR's CPU-utilization reduction (§7.3).

At matched throughput, compares CPU cycles per client byte between the
baseline and FIDR across the Table-3 workloads, staged the way the
paper attributes them: NIC hashing removes the predictor (20-37%);
hybrid caching removes tree/SSD/replacement work (another 19-44
points).  Paper totals: up to 68% (write-only) and 39% (mixed).
"""

from __future__ import annotations

from typing import List

from ..analysis.report import Comparison, format_table, pct
from ..systems.accounting import CpuTask
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report
from .tab03_workloads import WORKLOAD_KEYS

__all__ = ["run", "PAPER_MAX_WRITE_REDUCTION", "PAPER_MIXED_REDUCTION"]

PAPER_MAX_WRITE_REDUCTION = 0.68
PAPER_MIXED_REDUCTION = 0.39
TARGET = 75e9


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 12."""
    rows: List[List] = []
    reductions = {}
    for key in WORKLOAD_KEYS:
        base = get_report("baseline", key, scale)
        fidr = get_report("fidr", key, scale)
        base_cores = base.cores_required(TARGET)
        fidr_cores = fidr.cores_required(TARGET)
        reduction = 1.0 - fidr_cores / base_cores
        reductions[key] = reduction

        # Stage attribution: what the predictor removal alone saves vs.
        # what hybrid caching saves on top.
        breakdown = base.cpu_breakdown()
        predictor_share = breakdown.get(CpuTask.PREDICTOR, 0.0)
        caching_share = (
            breakdown.get(CpuTask.TREE, 0.0)
            + breakdown.get(CpuTask.TABLE_SSD, 0.0)
            + breakdown.get(CpuTask.REPLACEMENT, 0.0)
        )
        rows.append([
            key,
            f"{base_cores:.0f}",
            f"{fidr_cores:.1f}",
            pct(reduction),
            pct(predictor_share),
            pct(caching_share),
        ])

    table = format_table(
        headers=["workload", "baseline cores @75", "FIDR cores @75",
                 "reduction", "predictor removed", "cache mgmt offloaded"],
        rows=rows,
        title="Figure 12: CPU utilization, baseline vs FIDR",
    )
    max_write = max(reductions[k] for k in ("write-h", "write-m", "write-l"))
    comparisons = [
        Comparison(
            "max write-only CPU reduction",
            PAPER_MAX_WRITE_REDUCTION,
            max_write,
        ),
        Comparison(
            "Read-Mixed CPU reduction",
            PAPER_MIXED_REDUCTION,
            reductions["read-mixed"],
        ),
    ]
    return ExperimentResult(
        name="Figure 12",
        headline=(
            f"FIDR cuts CPU needs by up to {pct(max_write)} (write-only) "
            f"and {pct(reductions['read-mixed'])} (mixed); paper: 68% / 39%"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"reductions": reductions},
    )

"""Extension study: fixed vs. content-defined chunking (§2.1.1).

The paper fixes the chunk size at 4 KB for computational cost; systems
it cites offload variable-size (content-defined) chunking to
accelerators instead.  This study quantifies the trade on a versioned-
document workload — repeated file versions with small insertions, the
access pattern where fixed chunking loses dedup because every boundary
downstream of an edit shifts:

* fixed 4-KB chunking: dedup collapses after each insertion,
* Gear CDC: boundaries resynchronize within a chunk or two,
* the cost: CDC runs a rolling hash over every input byte.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..analysis.report import Comparison, format_table, pct
from ..datared.cdc import CdcDedupStore, GearChunker
from ..datared.compression import ModeledCompressor
from ..datared.hashing import fingerprint
from .common import ExperimentResult

__all__ = ["run"]


def _make_versions(num_versions: int, size: int, seed: int) -> List[bytes]:
    """A document plus versions with small random insertions."""
    rng = random.Random(seed)
    current = rng.randbytes(size)
    versions = [current]
    for _ in range(num_versions - 1):
        position = rng.randrange(len(current))
        insertion = rng.randbytes(rng.randint(8, 64))
        current = current[:position] + insertion + current[position:]
        versions.append(current)
    return versions


def _fixed_dedup(versions: List[bytes], chunk_size: int = 4096) -> Dict[str, float]:
    """Content-addressed dedup over fixed-size chunks."""
    seen = set()
    unique = duplicate = 0
    for version in versions:
        for start in range(0, len(version), chunk_size):
            digest = fingerprint(version[start : start + chunk_size])
            if digest in seen:
                duplicate += 1
            else:
                seen.add(digest)
                unique += 1
    total = unique + duplicate
    return {"dedup": duplicate / total if total else 0.0, "scanned": 0.0}


def _cdc_dedup(versions: List[bytes]) -> Dict[str, float]:
    chunker = GearChunker()
    store = CdcDedupStore(chunker=chunker, compressor=ModeledCompressor(0.5))
    for index, version in enumerate(versions):
        store.write_stream(f"v{index}", version)
    # Correctness check rides along: the latest version reads back.
    assert store.read_stream(f"v{len(versions) - 1}") == versions[-1]
    return {
        "dedup": store.stats.dedup_ratio,
        "scanned": float(chunker.bytes_scanned),
    }


def run(num_versions: int = 8, size: int = 120_000, seed: int = 5) -> ExperimentResult:
    """Compare chunking strategies on the versioned-document workload."""
    versions = _make_versions(num_versions, size, seed)
    total_bytes = sum(len(version) for version in versions)
    fixed = _fixed_dedup(versions)
    cdc = _cdc_dedup(versions)

    table = format_table(
        headers=["strategy", "dedup ratio", "rolling-hash bytes",
                 "per input byte"],
        rows=[
            ["fixed 4 KB", pct(fixed["dedup"]), "0", "0"],
            ["Gear CDC", pct(cdc["dedup"]), f"{cdc['scanned']:,.0f}",
             f"{cdc['scanned'] / total_bytes:.2f}"],
        ],
        title=(
            f"{num_versions} versions of a {size // 1000}-KB document, "
            f"small insertions between versions"
        ),
    )
    # Ideal dedup: each new version adds only the edited chunk(s).
    ideal = 1.0 - 1.0 / num_versions
    comparisons = [
        Comparison("CDC dedup vs ideal", ideal, cdc["dedup"]),
        Comparison("fixed-chunk dedup", None, fixed["dedup"]),
    ]
    return ExperimentResult(
        name="Extension: CDC vs fixed chunking",
        headline=(
            f"insertions leave fixed chunking at {pct(fixed['dedup'])} dedup "
            f"while CDC holds {pct(cdc['dedup'])} — at the cost of hashing "
            f"every input byte (the overhead §2.1.1 cites)"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"fixed": fixed, "cdc": cdc},
    )

"""Figure 16: cost breakdown at 75 GB/s and 500 TB effective (§7.8).

The baseline's per-socket ceiling (its Figure-14 solve) forces *partial*
reduction at 75 GB/s: the overflow is stored raw, so its SSD bill
dominates.  FIDR reduces the full stream; its extra FPGAs/CPU are small
next to the saved flash.
"""

from __future__ import annotations

from typing import List

from ..analysis.cost import StorageCostModel
from ..analysis.report import Comparison, format_table, pct
from ..analysis.throughput import solve_throughput
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "THROUGHPUT", "CAPACITY"]

THROUGHPUT = 75e9
CAPACITY = 500e12


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 16."""
    model = StorageCostModel()
    # Measured intensities on the write-heavy workload, target socket.
    base_report = get_report("baseline", "write-h", scale, server="target")
    fidr_report = get_report("fidr", "write-h", scale, server="target")
    baseline_cap = solve_throughput(base_report).throughput
    fidr_cores = fidr_report.cores_required(75e9)
    baseline_cores = base_report.cores_required(75e9)

    reference = model.no_reduction_cost(CAPACITY)
    fidr = model.fidr_cost(THROUGHPUT, CAPACITY, cpu_cores_per_75gbps=fidr_cores)
    baseline = model.baseline_cost(
        THROUGHPUT,
        CAPACITY,
        per_socket_cap=baseline_cap,
        cpu_cores_per_75gbps=baseline_cores,
    )

    systems = [("no reduction", reference), ("baseline (partial)", baseline),
               ("FIDR", fidr)]
    components = sorted({name for _, b in systems for name in b.components})
    rows: List[List] = []
    for name in components:
        rows.append(
            [name]
            + [f"${b.components.get(name, 0.0) / 1000:.1f}k" for _, b in systems]
        )
    rows.append(["TOTAL"] + [f"${b.total / 1000:.0f}k" for _, b in systems])

    table = format_table(
        headers=["component"] + [label for label, _ in systems],
        rows=rows,
        title=f"Figure 16: cost at {THROUGHPUT / 1e9:.0f} GB/s, "
        f"{CAPACITY / 1e12:.0f} TB effective",
    )
    comparisons = [
        Comparison(
            "FIDR saving vs no reduction", 0.58, fidr.savings_vs(reference)
        ),
        Comparison(
            "baseline cost / FIDR cost", None, baseline.total / fidr.total, "x"
        ),
    ]
    return ExperimentResult(
        name="Figure 16",
        headline=(
            f"partial reduction leaves the baseline at "
            f"${baseline.total / 1000:.0f}k vs FIDR's "
            f"${fidr.total / 1000:.0f}k "
            f"({baseline.total / fidr.total:.1f}x; reduced share only "
            f"{pct(baseline_cap / THROUGHPUT)})"
        ),
        comparisons=comparisons,
        tables=[table],
        data={
            "baseline_cap": baseline_cap,
            "totals": {label: b.total for label, b in systems},
        },
    )

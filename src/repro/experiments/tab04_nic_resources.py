"""Table 4: FIDR NIC FPGA resource utilization (§7.7.1).

Computed from the parametric estimator: the data-reduction layer's cost
is dominated by SHA-256 cores sized to the *written* line rate, so the
mixed workload (half the hashing) needs visibly less fabric.  The fixed
NIC+TCP-offload part is rate-independent.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table, pct
from ..hw.fpga_resources import estimate_nic_resources
from ..hw.specs import VCU1525
from .common import ExperimentResult

__all__ = ["run", "PAPER_VALUES"]

#: Paper's Table 4: (workload, row) -> (kLUTs, kFFs, BRAMs).
PAPER_VALUES: Dict[tuple, tuple] = {
    ("write-only", "data_reduction_support"): (125, 128, 95),
    ("write-only", "total"): (290, 296, 1119),
    ("mixed", "data_reduction_support"): (84, 87, 75),
    ("mixed", "total"): (249, 255, 1099),
}


def run(line_rate: float = 8e9) -> ExperimentResult:
    """Regenerate Table 4 (64-Gbps NIC)."""
    rows: List[List] = []
    comparisons: List[Comparison] = []
    results = {}
    for label, write_fraction in (("write-only", 1.0), ("mixed", 0.5)):
        estimate = estimate_nic_resources(
            line_rate=line_rate, write_fraction=write_fraction
        )
        results[label] = estimate
        for row_name in ("data_reduction_support", "basic_nic_tcp_offload", "total"):
            count = estimate[row_name]
            util = count.utilization(VCU1525)
            rows.append([
                label,
                row_name.replace("_", " "),
                f"{count.luts / 1000:.0f}K ({pct(util['luts'])})",
                f"{count.flip_flops / 1000:.0f}K ({pct(util['flip_flops'])})",
                f"{count.brams} ({pct(util['brams'])})",
            ])
            paper = PAPER_VALUES.get((label, row_name))
            if paper is not None:
                comparisons.append(
                    Comparison(
                        f"{label} {row_name} kLUTs", paper[0], count.luts / 1000
                    )
                )

    table = format_table(
        headers=["workload", "component", "LUTs", "flip-flops", "BRAMs"],
        rows=rows,
        title="Table 4: FIDR NIC resource utilization (VCU1525)",
    )
    dr_write = results["write-only"]["data_reduction_support"]
    return ExperimentResult(
        name="Table 4",
        headline=(
            f"data-reduction support costs "
            f"{pct(dr_write.utilization(VCU1525)['luts'])} LUTs / "
            f"{pct(dr_write.utilization(VCU1525)['brams'])} BRAMs on top of "
            f"the base NIC (paper: 10.7% / 4.4%)"
        ),
        comparisons=comparisons,
        tables=[table],
        data={label: est["total"] for label, est in results.items()},
    )

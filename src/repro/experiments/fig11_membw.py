"""Figure 11: FIDR's host-memory-bandwidth reduction (§7.2).

At matched throughput, compares host-DRAM traffic per client byte
between the baseline and FIDR on all four Table-3 workloads.  Paper:
up to 79.1% lower in write-only workloads and 84.9% in Read-Mixed,
with higher table-cache hit rates making FIDR more effective.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import Comparison, format_table, pct
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report
from .tab03_workloads import WORKLOAD_KEYS

__all__ = ["run", "PAPER_MAX_WRITE_REDUCTION", "PAPER_MIXED_REDUCTION"]

PAPER_MAX_WRITE_REDUCTION = 0.791
PAPER_MIXED_REDUCTION = 0.849


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 11."""
    rows: List[List] = []
    reductions = {}
    for key in WORKLOAD_KEYS:
        base = get_report("baseline", key, scale)
        fidr = get_report("fidr", key, scale)
        base_amp = base.memory_amplification()
        fidr_amp = fidr.memory_amplification()
        reduction = 1.0 - fidr_amp / base_amp
        reductions[key] = reduction
        rows.append([
            key,
            f"{base_amp:.2f}",
            f"{fidr_amp:.2f}",
            pct(reduction),
            pct(fidr.cache_stats.hit_rate),
        ])

    table = format_table(
        headers=["workload", "baseline (DRAM B/client B)",
                 "FIDR (DRAM B/client B)", "reduction", "cache hit rate"],
        rows=rows,
        title="Figure 11: host memory bandwidth utilization",
    )
    max_write = max(reductions[k] for k in ("write-h", "write-m", "write-l"))
    comparisons = [
        Comparison(
            "max write-only DRAM reduction",
            PAPER_MAX_WRITE_REDUCTION,
            max_write,
        ),
        Comparison(
            "Read-Mixed DRAM reduction",
            PAPER_MIXED_REDUCTION,
            reductions["read-mixed"],
        ),
    ]
    return ExperimentResult(
        name="Figure 11",
        headline=(
            f"FIDR cuts host DRAM traffic by up to {pct(max_write)} "
            f"(write-only) and {pct(reductions['read-mixed'])} (mixed); "
            f"paper: 79.1% / 84.9%"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"reductions": reductions},
    )

"""§7.6: request latency.

Writes (§7.6.1): FIDR acknowledges from the NIC's battery-backed buffer,
so its commit latency equals a no-reduction system's — verified as an
identity of the model.

Reads (§7.6.2): server-side (SSDs↔NICs) latency of a batched 4-KB read.
Paper: 700 µs baseline → 490 µs FIDR, from removing the two mid-datapath
host-memory landings and their software handoffs.
"""

from __future__ import annotations

from ..analysis.report import Comparison, format_table
from ..systems.latency import ReadLatencyModel, write_commit_latency
from .common import ExperimentResult

__all__ = ["run", "PAPER_BASELINE_US", "PAPER_FIDR_US"]

PAPER_BASELINE_US = 700.0
PAPER_FIDR_US = 490.0


def run(batch_size: int = 64) -> ExperimentResult:
    """Regenerate the §7.6 latency numbers."""
    model = ReadLatencyModel()
    baseline = model.baseline_read_latency(batch_size)
    fidr = model.fidr_read_latency(batch_size)
    commits = write_commit_latency()

    read_table = format_table(
        headers=["system", "mean (us)", "min (us)", "max (us)"],
        rows=[
            ["baseline", f"{baseline.mean_s * 1e6:.0f}",
             f"{baseline.min_s * 1e6:.0f}", f"{baseline.max_s * 1e6:.0f}"],
            ["FIDR", f"{fidr.mean_s * 1e6:.0f}",
             f"{fidr.min_s * 1e6:.0f}", f"{fidr.max_s * 1e6:.0f}"],
        ],
        title=f"§7.6.2: server-side 4-KB read latency (batch of {batch_size})",
    )
    write_table = format_table(
        headers=["system", "write commit latency (us)"],
        rows=[[name, f"{value * 1e6:.0f}"] for name, value in commits.items()],
        title="§7.6.1: write commit latency (FIDR == no-reduction)",
    )
    comparisons = [
        Comparison("baseline read latency", PAPER_BASELINE_US,
                   baseline.mean_s * 1e6, "us"),
        Comparison("FIDR read latency", PAPER_FIDR_US, fidr.mean_s * 1e6, "us"),
    ]
    return ExperimentResult(
        name="§7.6 latency",
        headline=(
            f"read latency {baseline.mean_s * 1e6:.0f} → "
            f"{fidr.mean_s * 1e6:.0f} us (paper: 700 → 490); write commit "
            f"latency unchanged by FIDR"
        ),
        comparisons=comparisons,
        tables=[read_table, write_table],
        data={
            "baseline_us": baseline.mean_s * 1e6,
            "fidr_us": fidr.mean_s * 1e6,
            "commits": commits,
        },
    )

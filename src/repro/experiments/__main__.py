"""Run paper experiments from the command line.

Usage::

    python -m repro.experiments                  # every paper table/figure
    python -m repro.experiments fig14 tab05      # a subset
    python -m repro.experiments --extensions     # the beyond-paper studies
    python -m repro.experiments --all            # everything
    python -m repro.experiments --json out.json  # machine-readable record
"""

from __future__ import annotations

import json
import sys

from . import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS


def _as_json(results) -> str:
    """Serialize the paper-vs-measured record (for CI tracking)."""
    payload = {}
    for name, result in results.items():
        payload[name] = {
            "title": result.name,
            "headline": result.headline,
            "comparisons": [
                {
                    "metric": comparison.label,
                    "paper": comparison.paper,
                    "measured": comparison.measured,
                    "unit": comparison.unit,
                    "relative_error": comparison.relative_error,
                }
                for comparison in result.comparisons
            ],
        }
    return json.dumps(payload, indent=2)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = None
    if "--json" in argv:
        index = argv.index("--json")
        try:
            json_path = argv[index + 1]
        except IndexError:
            print("--json needs a path", file=sys.stderr)
            return 2
        del argv[index : index + 2]

    registry = dict(ALL_EXPERIMENTS)
    registry.update(EXTENSION_EXPERIMENTS)
    if "--all" in argv:
        requested = list(registry)
    elif "--extensions" in argv:
        requested = list(EXTENSION_EXPERIMENTS)
    else:
        requested = argv or list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2

    results = {}
    for name in requested:
        result = registry[name]()
        results[name] = result
        print(result.render())
        print()
    if json_path is not None:
        with open(json_path, "w") as handle:
            handle.write(_as_json(results))
        print(f"wrote {json_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 15: cost scalability (§7.8).

Sweeps per-socket throughput (25/50/75 GB/s) and effective capacity
(100/250/500 TB), pricing FIDR against a no-reduction server.  Paper
anchor: at 500 TB, FIDR's saving drifts only from 67% (25 GB/s) to 58%
(75 GB/s) — reduction hardware grows with throughput but stays small
next to the saved SSDs.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.cost import StorageCostModel
from ..analysis.report import Comparison, format_table, pct
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "THROUGHPUTS", "CAPACITIES"]

THROUGHPUTS = (25e9, 50e9, 75e9)
CAPACITIES = (100e12, 250e12, 500e12)
PAPER_SAVINGS_500TB = {25e9: 0.67, 75e9: 0.58}


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 15."""
    model = StorageCostModel()
    # FIDR's CPU intensity from the measured write-heavy report.
    fidr_cores = get_report("fidr", "write-h", scale).cores_required(75e9)

    rows: List[List] = []
    savings: Dict[tuple, float] = {}
    for capacity in CAPACITIES:
        reference = model.no_reduction_cost(capacity)
        for throughput in THROUGHPUTS:
            fidr = model.fidr_cost(
                throughput, capacity, cpu_cores_per_75gbps=fidr_cores
            )
            saving = fidr.savings_vs(reference)
            savings[(capacity, throughput)] = saving
            rows.append([
                f"{capacity / 1e12:.0f} TB",
                f"{throughput / 1e9:.0f} GB/s",
                f"${reference.total / 1000:.0f}k",
                f"${fidr.total / 1000:.0f}k",
                pct(saving),
            ])

    table = format_table(
        headers=["capacity", "throughput", "no-reduction cost", "FIDR cost",
                 "saving"],
        rows=rows,
        title="Figure 15: FIDR cost vs throughput and capacity",
    )
    comparisons = [
        Comparison(
            "500 TB saving @25 GB/s",
            PAPER_SAVINGS_500TB[25e9],
            savings[(500e12, 25e9)],
        ),
        Comparison(
            "500 TB saving @75 GB/s",
            PAPER_SAVINGS_500TB[75e9],
            savings[(500e12, 75e9)],
        ),
    ]
    return ExperimentResult(
        name="Figure 15",
        headline=(
            f"at 500 TB the saving drifts from "
            f"{pct(savings[(500e12, 25e9)])} (25 GB/s) to "
            f"{pct(savings[(500e12, 75e9)])} (75 GB/s); paper: 67% → 58%"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"savings": savings},
    )

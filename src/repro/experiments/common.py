"""Shared experiment harness.

Experiments reproduce paper tables/figures from *measured* system runs.
Because several figures project from the same workload replays, reports
are memoized per (system flavour, workload, scale) within a process —
a replay of 16k chunks through the functional stack costs ~1 s.

Scale note: the paper's workloads are 176M IOs; experiments default to
16k chunks (every metric used downstream is a per-byte ratio, stable at
this scale — the scale-stability test in the suite checks that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis.report import Comparison, format_comparisons
from ..datared.compression import ModeledCompressor
from ..hw.specs import PROTOTYPE_SERVER, TARGET_SERVER, ServerSpec
from ..systems.accounting import SystemReport
from ..systems.baseline import BaselineSystem
from ..systems.fidr import FidrSystem
from ..workloads.generator import WORKLOADS, build_workload
from ..workloads.runner import replay

__all__ = [
    "Scale",
    "DEFAULT_SCALE",
    "SMOKE_SCALE",
    "ExperimentResult",
    "get_report",
    "clear_report_cache",
]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    num_chunks: int = 16_000
    replicas: int = 2
    seed: int = 1
    num_buckets: int = 1 << 15
    cache_lines: int = 1024


DEFAULT_SCALE = Scale()
#: Tiny scale for fast test runs.
SMOKE_SCALE = Scale(num_chunks=3_000, num_buckets=1 << 13, cache_lines=256)


@dataclass
class ExperimentResult:
    """What one experiment produced."""

    name: str
    headline: str
    comparisons: List[Comparison] = field(default_factory=list)
    tables: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.name}: {self.headline}"]
        if self.comparisons:
            parts.append(format_comparisons(self.comparisons))
        parts.extend(self.tables)
        return "\n\n".join(parts)


_REPORT_CACHE: Dict[Tuple, SystemReport] = {}


def clear_report_cache() -> None:
    _REPORT_CACHE.clear()


def get_report(
    flavour: str,
    workload: str,
    scale: Scale = DEFAULT_SCALE,
    server: str = "prototype",
) -> SystemReport:
    """Replay ``workload`` through a system ``flavour`` and report.

    Flavours: ``baseline``, ``fidr`` (full), ``fidr-sw-cache`` (NIC+P2P
    with software table caching), ``fidr-w1`` (single-update HW tree).
    Servers: ``prototype`` (E5-2650 v4 socket) or ``target`` (22-core,
    170 GB/s, 1-Tbps socket used for Figure 14's projection).
    """
    key = (flavour, workload, scale, server)
    cached = _REPORT_CACHE.get(key)
    if cached is not None:
        return cached

    server_spec: ServerSpec = (
        TARGET_SERVER if server == "target" else PROTOTYPE_SERVER
    )
    kwargs = dict(
        server=server_spec,
        num_buckets=scale.num_buckets,
        cache_lines=scale.cache_lines,
        compressor=ModeledCompressor(WORKLOADS[workload].comp_ratio),
    )
    if flavour == "baseline":
        system = BaselineSystem(**kwargs)
    elif flavour == "fidr":
        system = FidrSystem(**kwargs)
    elif flavour == "fidr-sw-cache":
        system = FidrSystem(hw_cache_engine=False, **kwargs)
    elif flavour == "fidr-w1":
        system = FidrSystem(tree_window=1, **kwargs)
    else:
        raise ValueError(f"unknown system flavour {flavour!r}")

    trace = build_workload(
        WORKLOADS[workload],
        num_chunks=scale.num_chunks,
        replicas=scale.replicas,
        seed=scale.seed,
    )
    report = replay(system, trace).report
    _REPORT_CACHE[key] = report
    return report

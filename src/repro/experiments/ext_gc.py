"""Extension study: container garbage collection and SSD write
amplification.

The paper motivates data reduction partly through SSD lifetime ("an SSD
lifetime, which is limited by the number of writes to its flash cells",
§1) but does not evaluate the reclamation machinery a deduplicating
store needs: overwrites strand dead compressed chunks inside sealed
containers, and compaction re-writes the survivors — extra flash writes
that push back against reduction's savings.

This sweep runs an overwrite-heavy stream and varies the GC trigger
threshold (the garbage fraction at which a container is compacted),
measuring total flash writes per client byte — the end-to-end write
amplification — and residual dead space.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..analysis.report import format_table, pct
from ..datared.compression import ModeledCompressor
from ..datared.container import ContainerStore
from ..datared.dedup import DedupEngine
from .common import ExperimentResult

__all__ = ["run"]

CHUNK = 4096


def _churn(engine: DedupEngine, rng: random.Random, num_writes: int,
           address_space: int, gc_threshold: float, gc_period: int) -> Dict:
    """Overwrite-heavy stream with periodic GC; returns flash accounting."""
    gc_runs = 0
    for step in range(num_writes):
        lba = rng.randrange(address_space) * 8
        engine.write(lba, rng.randbytes(CHUNK))
        if gc_threshold < 1.0 and step % gc_period == gc_period - 1:
            if engine.collect_garbage(threshold=gc_threshold):
                gc_runs += 1
    engine.flush()
    stats = engine.stats
    gc_moved = engine.gc_bytes_moved
    flash_writes = stats.stored_bytes + gc_moved
    return {
        "logical": stats.logical_bytes,
        "flash_writes": flash_writes,
        "write_amp": flash_writes / stats.logical_bytes,
        "gc_moved": gc_moved,
        "gc_runs": gc_runs,
        "dead_fraction": (
            1 - engine.containers.live_bytes / engine.containers.total_bytes
            if engine.containers.total_bytes else 0.0
        ),
        "containers": engine.containers.container_count,
    }


def run(num_writes: int = 4000, address_space: int = 120, seed: int = 6) -> ExperimentResult:
    """GC threshold sweep under ~33x overwrite churn."""
    rows: List[List] = []
    series: Dict = {}
    for threshold in (1.0, 0.7, 0.5, 0.3):
        rng = random.Random(seed)
        engine = DedupEngine(
            num_buckets=1 << 13,
            compressor=ModeledCompressor(0.5),
            containers=ContainerStore(container_size=64 * 1024),
        )
        result = _churn(engine, rng, num_writes, address_space,
                        threshold, gc_period=200)
        series[threshold] = result
        label = "no GC" if threshold >= 1.0 else f"GC @ {pct(threshold)} dead"
        rows.append([
            label,
            f"{result['write_amp']:.3f}",
            pct(result["dead_fraction"]),
            f"{result['containers']:,}",
            result["gc_runs"],
        ])
    table = format_table(
        headers=["policy", "flash B per client B", "residual dead space",
                 "containers held", "GC runs"],
        rows=rows,
        title=(
            f"container GC under overwrite churn "
            f"({num_writes:,} writes over {address_space} hot LBAs)"
        ),
    )
    no_gc = series[1.0]
    aggressive = series[0.3]
    return ExperimentResult(
        name="Extension: container GC",
        headline=(
            f"aggressive GC trades {aggressive['write_amp'] / no_gc['write_amp']:.2f}x "
            f"the flash writes for {pct(no_gc['dead_fraction'])} → "
            f"{pct(aggressive['dead_fraction'])} residual dead space"
        ),
        tables=[table],
        data={"series": series},
    )

"""Extension study: offloading the data-SSD read stack (§7.5 future work).

Figure 14 shows Read-Mixed pinned at 1.7x because "the inherent CPU
utilization overhead of the data SSD software stack" survives all of
FIDR's offloads; the paper explicitly defers offloading that NVMe stack
to hardware.  This experiment builds it (read queue pairs owned by the
Decompression Engine) plus the §8 hot-block read cache, and asks how
much headroom was left on the table.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.report import Comparison, format_table, gbps
from ..analysis.throughput import solve_throughput
from ..datared.compression import ModeledCompressor
from ..hw.specs import TARGET_SERVER
from ..systems.baseline import BaselineSystem
from ..systems.extensions import ExtendedFidrSystem
from ..systems.fidr import FidrSystem
from ..workloads.generator import WORKLOADS
from ..workloads.generator import build_workload
from ..workloads.runner import replay
from .common import DEFAULT_SCALE, ExperimentResult, Scale

__all__ = ["run"]


def _report(system, trace):
    return replay(system, trace).report


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Read-Mixed throughput with the future-work offloads enabled."""
    spec = WORKLOADS["read-mixed"]
    trace = build_workload(
        spec, num_chunks=scale.num_chunks, replicas=scale.replicas,
        seed=scale.seed,
    )
    kwargs = dict(
        server=TARGET_SERVER,
        num_buckets=scale.num_buckets,
        cache_lines=scale.cache_lines,
        compressor=ModeledCompressor(spec.comp_ratio),
    )
    configs = [
        ("baseline", BaselineSystem(**kwargs), dict()),
        ("FIDR (paper)", FidrSystem(**kwargs),
         dict(use_cache_engine=True, tree_window=4)),
        ("FIDR + NVMe read offload",
         ExtendedFidrSystem(nvme_read_offload=True, **kwargs),
         dict(use_cache_engine=True, tree_window=4)),
        ("FIDR + offload + hot read cache",
         ExtendedFidrSystem(
             nvme_read_offload=True, hot_read_cache_chunks=2048, **kwargs
         ),
         dict(use_cache_engine=True, tree_window=4)),
    ]

    rows: List[List] = []
    throughputs: Dict[str, float] = {}
    for label, system, solver_kwargs in configs:
        report = _report(system, trace)
        solved = solve_throughput(report, **solver_kwargs)
        throughputs[label] = solved.throughput
        rows.append([
            label,
            f"{report.cores_required(75e9):.1f}",
            gbps(solved.throughput),
            solved.bottleneck,
        ])

    base = throughputs["baseline"]
    paper_fidr = throughputs["FIDR (paper)"]
    offloaded = throughputs["FIDR + NVMe read offload"]
    table = format_table(
        headers=["configuration", "cores @75 GB/s", "max throughput",
                 "bottleneck"],
        rows=rows,
        title="Read-Mixed throughput with future-work offloads",
    )
    comparisons = [
        Comparison("paper FIDR speedup", 1.7, paper_fidr / base, "x"),
        Comparison("with NVMe read offload", None, offloaded / base, "x"),
    ]
    return ExperimentResult(
        name="Extension: NVMe read offload",
        headline=(
            f"offloading the read stack lifts Read-Mixed from "
            f"{paper_fidr / base:.1f}x to {offloaded / base:.1f}x over the "
            f"baseline — the headroom §7.5 pointed at"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"throughputs": throughputs},
    )

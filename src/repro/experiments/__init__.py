"""One module per paper table/figure (see DESIGN.md's experiment index).

Each module exposes ``run(...) -> ExperimentResult``; ``ALL_EXPERIMENTS``
maps experiment ids to their runners so the benchmark harness and the
``python -m repro.experiments`` entry point can enumerate them.
"""

from typing import Callable, Dict

from . import (
    ablations,
    ext_cdc,
    ext_gc,
    ext_multitenant,
    ext_pipeline_des,
    ext_read_offload,
    ext_sensitivity,
    fig03_large_chunking,
    fig04_membw,
    fig05_cpu,
    fig11_membw,
    fig12_cpu,
    fig13_tree,
    fig14_throughput,
    fig15_cost_scaling,
    fig16_cost_breakdown,
    latency,
    tab01_membw_breakdown,
    tab02_cpu_breakdown,
    tab03_workloads,
    tab04_nic_resources,
    tab05_cache_engine,
)
from .common import (
    DEFAULT_SCALE,
    SMOKE_SCALE,
    ExperimentResult,
    Scale,
    clear_report_cache,
    get_report,
)

#: Experiment id -> zero-argument default runner.
ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig03": fig03_large_chunking.run,
    "fig04": fig04_membw.run,
    "fig05": fig05_cpu.run,
    "tab01": tab01_membw_breakdown.run,
    "tab02": tab02_cpu_breakdown.run,
    "tab03": tab03_workloads.run,
    "fig11": fig11_membw.run,
    "fig12": fig12_cpu.run,
    "fig13": fig13_tree.run,
    "fig14": fig14_throughput.run,
    "latency": latency.run,
    "tab04": tab04_nic_resources.run,
    "tab05": tab05_cache_engine.run,
    "fig15": fig15_cost_scaling.run,
    "fig16": fig16_cost_breakdown.run,
}

#: Studies beyond the paper: its stated future work (§7.5), discussion
#: items (§8), and the chunking alternative it priced out (§2.1.1).
EXTENSION_EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "ext-read-offload": ext_read_offload.run,
    "ext-multitenant": ext_multitenant.run,
    "ext-cdc": ext_cdc.run,
    "ext-pipeline-des": ext_pipeline_des.run,
    "ext-gc": ext_gc.run,
    "ext-sensitivity": ext_sensitivity.run,
    "ablations": ablations.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_SCALE",
    "EXTENSION_EXPERIMENTS",
    "ExperimentResult",
    "SMOKE_SCALE",
    "Scale",
    "clear_report_cache",
    "get_report",
]

"""Figure 4: the baseline's host-memory-bandwidth wall (paper §3.2.1).

Measures the baseline's DRAM traffic on the two §3.2 profiling workloads
(50% dedup, 50% compression), evaluates the demand at the paper's two
measurement points (5 and 6.9 GB/s), fits the linear projection exactly
as the paper does, and projects to the 75 GB/s per-socket target.

Paper values: 317 GB/s (write-only) and 269 GB/s (mixed) of DRAM demand
versus a theoretical socket maximum of 170 GB/s — a 1.9x shortfall.
"""

from __future__ import annotations

from typing import List

from ..analysis.projection import fit_two_points
from ..analysis.report import Comparison, format_table
from ..hw.specs import HIGH_END_SOCKET_DRAM
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "PAPER_WRITE_GBPS", "PAPER_MIXED_GBPS", "TARGET_GBPS"]

PAPER_WRITE_GBPS = 317.0
PAPER_MIXED_GBPS = 269.0
TARGET_GBPS = 75.0
MEASURE_POINTS = (5e9, 6.9e9)  #: the paper's two measurement throughputs


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Figure 4."""
    rows: List[List] = []
    projections = {}
    for key, label in (("profiling-write", "Write-only"),
                       ("profiling-mixed", "Mixed read/write")):
        report = get_report("baseline", key, scale)
        points = [
            (x, report.memory_bw_demand(x)) for x in MEASURE_POINTS
        ]
        fit = fit_two_points(*points)
        demand_at_target = fit(TARGET_GBPS * 1e9)
        projections[label] = demand_at_target
        rows.append([
            label,
            f"{points[0][1] / 1e9:.1f}",
            f"{points[1][1] / 1e9:.1f}",
            f"{demand_at_target / 1e9:.0f}",
            f"{demand_at_target / HIGH_END_SOCKET_DRAM.peak_bw:.1f}x",
        ])

    table = format_table(
        headers=[
            "workload",
            "@5 GB/s (GB/s)",
            "@6.9 GB/s (GB/s)",
            "@75 GB/s (GB/s)",
            "vs 170 GB/s socket",
        ],
        rows=rows,
        title="Figure 4: baseline DRAM bandwidth demand (projected)",
    )
    comparisons = [
        Comparison(
            "write-only DRAM demand @75 GB/s",
            PAPER_WRITE_GBPS,
            projections["Write-only"] / 1e9,
            "GB/s",
        ),
        Comparison(
            "mixed DRAM demand @75 GB/s",
            PAPER_MIXED_GBPS,
            projections["Mixed read/write"] / 1e9,
            "GB/s",
        ),
    ]
    shortfall = projections["Write-only"] / HIGH_END_SOCKET_DRAM.peak_bw
    return ExperimentResult(
        name="Figure 4",
        headline=(
            f"baseline needs {projections['Write-only'] / 1e9:.0f} GB/s of DRAM "
            f"at 75 GB/s — {shortfall:.1f}x a high-end socket "
            f"(paper: 317 GB/s, 1.9x)"
        ),
        comparisons=comparisons,
        tables=[table],
        data={"projections": projections},
    )

"""Table 3: workload construction check (§7.1).

Builds each Table-3 workload with the five-factor recipe and measures
its *realized* deduplication ratio, compression ratio, and table-cache
hit rate against the targets.  This validates the workload machinery the
other experiments stand on.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import Comparison, format_table, pct
from ..workloads.generator import WORKLOADS
from .common import DEFAULT_SCALE, ExperimentResult, Scale, get_report

__all__ = ["run", "WORKLOAD_KEYS"]

WORKLOAD_KEYS = ("write-h", "write-m", "write-l", "read-mixed")


def run(scale: Scale = DEFAULT_SCALE) -> ExperimentResult:
    """Regenerate Table 3 (targets vs realized)."""
    rows: List[List] = []
    comparisons: List[Comparison] = []
    for key in WORKLOAD_KEYS:
        spec = WORKLOADS[key]
        report = get_report("fidr", key, scale)
        dedup = report.reduction.dedup_ratio
        comp = report.reduction.compression_ratio
        hit = report.cache_stats.hit_rate
        rows.append([
            spec.name,
            f"{pct(dedup)} (target {pct(spec.dedup_target)})",
            f"{pct(comp)} (target {pct(spec.comp_ratio)})",
            f"{pct(hit)} (target {pct(spec.hit_rate_target)})",
            f"{int(report.logical_bytes / 4096):,} IOs",
        ])
        comparisons.extend([
            Comparison(f"{spec.name} dedup ratio", spec.dedup_target, dedup),
            Comparison(f"{spec.name} hit rate", spec.hit_rate_target, hit),
        ])

    table = format_table(
        headers=["workload", "dedup ratio", "comp ratio", "cache hit rate",
                 "volume"],
        rows=rows,
        title="Table 3: realized workload characteristics",
    )
    return ExperimentResult(
        name="Table 3",
        headline="five-factor workload recipe hits its dedup/comp targets; "
        "hit rates ordered H > M > L as specified",
        comparisons=comparisons,
        tables=[table],
        data={},
    )

"""Cross-structure invariants of the data-reduction stack.

FIDR's evaluation is a byte/cycle *ledger*: savings emerge from removing
flow edges, so the numbers are only as trustworthy as the accounting.
This module asserts the conservation laws that must hold between the
engine's independent records of the same facts — the same discipline
full-system SSD simulators apply to make results credible:

* **Byte conservation** — every logical byte written is either unique
  (stored, possibly compressed) or removed by dedup;
  ``live_stored_bytes`` must agree between :class:`ReductionStats`, the
  container store, and the sum of live PBN records.
* **Index consistency** — the :class:`~repro.datared.lba_map.PbnMap`'s
  incremental reverse indexes (fingerprint→PBN, placement→PBN) must
  mirror the forward records exactly; every LBA mapping must point at a
  live PBN; reference counts must equal the number of LBAs referencing
  each PBN; the Hash-PBN table's entry count must equal the live-chunk
  population.

``check_engine`` returns the list of violations (empty = healthy) or
raises :class:`InvariantViolation`; the differential tests and the
race-stress harness both call it, so a regression that silently corrupts
stats or bytes fails CI even when no test asserts the exact number it
corrupted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..datared.dedup import DedupEngine
    from ..systems.base import ReductionSystem

__all__ = ["InvariantViolation", "check_engine", "check_system"]


class InvariantViolation(ReproError):
    """A conservation law or index-consistency law does not hold."""


def _engine_violations(engine: "DedupEngine") -> List[str]:
    violations: List[str] = []
    stats = engine.stats
    chunk_size = engine.chunker.chunk_size

    # -- byte/chunk conservation ---------------------------------------------
    expected_logical = (stats.unique_chunks + stats.duplicate_chunks) * chunk_size
    if stats.logical_bytes != expected_logical:
        violations.append(
            f"logical_bytes {stats.logical_bytes} != "
            f"(unique {stats.unique_chunks} + duplicate "
            f"{stats.duplicate_chunks}) * chunk_size {chunk_size}"
        )
    if stats.unique_logical_bytes != stats.unique_chunks * chunk_size:
        violations.append(
            f"unique_logical_bytes {stats.unique_logical_bytes} != "
            f"unique_chunks {stats.unique_chunks} * chunk_size {chunk_size}"
        )
    dedup_saved = stats.logical_bytes - stats.unique_logical_bytes
    if dedup_saved != stats.duplicate_chunks * chunk_size:
        violations.append(
            f"dedup-saved bytes {dedup_saved} != duplicate_chunks "
            f"{stats.duplicate_chunks} * chunk_size {chunk_size}"
        )
    if stats.reclaimed_stored_bytes > stats.stored_bytes:
        violations.append(
            f"reclaimed_stored_bytes {stats.reclaimed_stored_bytes} exceeds "
            f"stored_bytes {stats.stored_bytes}"
        )

    # -- stored-byte agreement across structures ------------------------------
    live = stats.live_stored_bytes
    container_live = engine.containers.live_bytes
    record_live = engine.pbn_map.live_stored_bytes
    if live != container_live:
        violations.append(
            f"stats live_stored_bytes {live} != container live_bytes "
            f"{container_live}"
        )
    if live != record_live:
        violations.append(
            f"stats live_stored_bytes {live} != sum of PBN record sizes "
            f"{record_live}"
        )

    # -- forward/reverse index consistency ------------------------------------
    seen_fingerprints = set()
    seen_placements = set()
    for pbn, record in engine.pbn_map.records():
        if record.refcount <= 0:
            violations.append(f"live PBN {pbn} has refcount {record.refcount}")
        mirrored = engine.pbn_map.find_by_fingerprint(record.fingerprint)
        if mirrored != pbn:
            violations.append(
                f"fingerprint index maps PBN {pbn}'s fingerprint to {mirrored}"
            )
        placed = engine.pbn_map.pbn_at(record.container_id, record.offset)
        if placed != pbn:
            violations.append(
                f"placement index maps PBN {pbn}'s placement "
                f"({record.container_id}, {record.offset}) to {placed}"
            )
        if record.fingerprint in seen_fingerprints:
            violations.append(
                f"fingerprint of PBN {pbn} stored by multiple live records"
            )
        seen_fingerprints.add(record.fingerprint)
        placement = (record.container_id, record.offset)
        if placement in seen_placements:
            violations.append(f"placement {placement} owned by multiple PBNs")
        seen_placements.add(placement)

    # -- LBA map vs. reference counts -----------------------------------------
    refcount_total = 0
    lba_refs: dict = {}
    for lba, pbn in engine.lba_map.items():
        if pbn not in engine.pbn_map:
            violations.append(f"LBA {lba} maps to dead PBN {pbn}")
            continue
        lba_refs[pbn] = lba_refs.get(pbn, 0) + 1
    for pbn, record in engine.pbn_map.records():
        refcount_total += record.refcount
        actual = lba_refs.get(pbn, 0)
        if record.refcount != actual:
            violations.append(
                f"PBN {pbn} refcount {record.refcount} != {actual} "
                "referencing LBAs"
            )
    if refcount_total != len(engine.lba_map):
        violations.append(
            f"sum of refcounts {refcount_total} != mapped LBAs "
            f"{len(engine.lba_map)}"
        )

    # -- Hash-PBN table population --------------------------------------------
    if len(engine.table) != len(engine.pbn_map):
        violations.append(
            f"Hash-PBN entry count {len(engine.table)} != live PBN records "
            f"{len(engine.pbn_map)}"
        )
    return violations


def check_engine(
    engine: "DedupEngine", *, raise_on_violation: bool = True
) -> List[str]:
    """Verify all engine invariants; returns the violation list.

    Takes the engine lock, so it is safe to call while other threads are
    writing (the stress harness does).  With ``raise_on_violation`` the
    first call with a non-empty list raises :class:`InvariantViolation`
    carrying every violation found.
    """
    with engine.lock:
        violations = _engine_violations(engine)
    if violations and raise_on_violation:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations)
        )
    return violations


def check_system(
    system: "ReductionSystem", *, raise_on_violation: bool = True
) -> List[str]:
    """Engine invariants plus the system layer's staging accounting.

    ``logical_write_bytes`` counts client bytes at the front door while
    the engine's stats count processed bytes, so they must differ by
    exactly the bytes still staged in the pending batch.
    """
    with system.lock:
        violations = _engine_violations(system.engine)
        pending_bytes = sum(len(chunk.data) for chunk in system._pending)
        front_door = system.logical_write_bytes
        processed = system.engine.stats.logical_bytes
        if front_door != processed + pending_bytes:
            violations.append(
                f"system logical_write_bytes {front_door} != engine "
                f"logical_bytes {processed} + pending {pending_bytes}"
            )
    if violations and raise_on_violation:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations)
        )
    return violations

"""Cross-structure invariants of the data-reduction stack.

FIDR's evaluation is a byte/cycle *ledger*: savings emerge from removing
flow edges, so the numbers are only as trustworthy as the accounting.
This module asserts the conservation laws that must hold between the
engine's independent records of the same facts — the same discipline
full-system SSD simulators apply to make results credible:

* **Byte conservation** — every logical byte written is either unique
  (stored, possibly compressed) or removed by dedup;
  ``live_stored_bytes`` must agree between :class:`ReductionStats`, the
  container store, and the sum of live PBN records.
* **Index consistency** — the :class:`~repro.datared.lba_map.PbnMap`'s
  incremental reverse indexes (fingerprint→PBN, placement→PBN) must
  mirror the forward records exactly; every LBA mapping must point at a
  live PBN; reference counts must equal the number of LBAs referencing
  each PBN; the Hash-PBN table's entry count must equal the live-chunk
  population.

``check_engine`` returns the list of violations (empty = healthy) or
raises :class:`InvariantViolation`; the differential tests and the
race-stress harness both call it, so a regression that silently corrupts
stats or bytes fails CI even when no test asserts the exact number it
corrupted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..datared.dedup import DedupEngine
    from ..datared.sharded import ShardedDedupEngine
    from ..systems.base import ReductionSystem

__all__ = [
    "InvariantViolation",
    "check_engine",
    "check_sharded_engine",
    "check_system",
]


class InvariantViolation(ReproError):
    """A conservation law or index-consistency law does not hold."""


def _engine_violations(engine: "DedupEngine") -> List[str]:
    violations: List[str] = []
    stats = engine.stats
    chunk_size = engine.chunker.chunk_size

    # -- byte/chunk conservation ---------------------------------------------
    expected_logical = (stats.unique_chunks + stats.duplicate_chunks) * chunk_size
    if stats.logical_bytes != expected_logical:
        violations.append(
            f"logical_bytes {stats.logical_bytes} != "
            f"(unique {stats.unique_chunks} + duplicate "
            f"{stats.duplicate_chunks}) * chunk_size {chunk_size}"
        )
    if stats.unique_logical_bytes != stats.unique_chunks * chunk_size:
        violations.append(
            f"unique_logical_bytes {stats.unique_logical_bytes} != "
            f"unique_chunks {stats.unique_chunks} * chunk_size {chunk_size}"
        )
    dedup_saved = stats.logical_bytes - stats.unique_logical_bytes
    if dedup_saved != stats.duplicate_chunks * chunk_size:
        violations.append(
            f"dedup-saved bytes {dedup_saved} != duplicate_chunks "
            f"{stats.duplicate_chunks} * chunk_size {chunk_size}"
        )
    if stats.reclaimed_stored_bytes > stats.stored_bytes:
        violations.append(
            f"reclaimed_stored_bytes {stats.reclaimed_stored_bytes} exceeds "
            f"stored_bytes {stats.stored_bytes}"
        )

    # -- stored-byte agreement across structures ------------------------------
    live = stats.live_stored_bytes
    container_live = engine.containers.live_bytes
    record_live = engine.pbn_map.live_stored_bytes
    if live != container_live:
        violations.append(
            f"stats live_stored_bytes {live} != container live_bytes "
            f"{container_live}"
        )
    if live != record_live:
        violations.append(
            f"stats live_stored_bytes {live} != sum of PBN record sizes "
            f"{record_live}"
        )

    # -- forward/reverse index consistency ------------------------------------
    seen_fingerprints = set()
    seen_placements = set()
    for pbn, record in engine.pbn_map.records():
        if record.refcount <= 0:
            violations.append(f"live PBN {pbn} has refcount {record.refcount}")
        mirrored = engine.pbn_map.find_by_fingerprint(record.fingerprint)
        if mirrored != pbn:
            violations.append(
                f"fingerprint index maps PBN {pbn}'s fingerprint to {mirrored}"
            )
        placed = engine.pbn_map.pbn_at(record.container_id, record.offset)
        if placed != pbn:
            violations.append(
                f"placement index maps PBN {pbn}'s placement "
                f"({record.container_id}, {record.offset}) to {placed}"
            )
        if record.fingerprint in seen_fingerprints:
            violations.append(
                f"fingerprint of PBN {pbn} stored by multiple live records"
            )
        seen_fingerprints.add(record.fingerprint)
        placement = (record.container_id, record.offset)
        if placement in seen_placements:
            violations.append(f"placement {placement} owned by multiple PBNs")
        seen_placements.add(placement)

    # -- LBA map + snapshot pins vs. reference counts -------------------------
    # The refcount law (DESIGN.md §5.10): every reference on a live PBN
    # is either a mapped LBA or a snapshot pin, and nothing else.
    refcount_total = 0
    snapshot_pins = 0
    lba_refs: dict = {}
    for lba, pbn in engine.lba_map.items():
        if pbn not in engine.pbn_map:
            violations.append(f"LBA {lba} maps to dead PBN {pbn}")
            continue
        lba_refs[pbn] = lba_refs.get(pbn, 0) + 1
    for name, pins in engine._snapshots.items():
        snapshot_pins += len(pins)
        for lba, pbn in pins.items():
            if pbn not in engine.pbn_map:
                violations.append(
                    f"snapshot {name!r} pins dead PBN {pbn} (LBA {lba})"
                )
                continue
            lba_refs[pbn] = lba_refs.get(pbn, 0) + 1
    for pbn, record in engine.pbn_map.records():
        refcount_total += record.refcount
        actual = lba_refs.get(pbn, 0)
        if record.refcount != actual:
            violations.append(
                f"PBN {pbn} refcount {record.refcount} != {actual} "
                "referencing LBAs + snapshot pins"
            )
    if refcount_total != len(engine.lba_map) + snapshot_pins:
        violations.append(
            f"sum of refcounts {refcount_total} != mapped LBAs "
            f"{len(engine.lba_map)} + snapshot pins {snapshot_pins}"
        )

    # -- durability tier at rest ----------------------------------------------
    # Every public op ends with a commit barrier, so between ops no
    # journal records may sit staged and no container frees deferred.
    if engine._pending_releases or engine._pending_drops:
        violations.append(
            f"{len(engine._pending_releases)} deferred container frees / "
            f"{len(engine._pending_drops)} deferred drops at rest"
        )
    if engine.journal is not None and engine.journal.staged_bytes:
        violations.append(
            f"journal holds {engine.journal.staged_bytes} staged bytes "
            "at rest (missing commit barrier)"
        )

    # -- Hash-PBN table population --------------------------------------------
    if len(engine.table) != len(engine.pbn_map):
        violations.append(
            f"Hash-PBN entry count {len(engine.table)} != live PBN records "
            f"{len(engine.pbn_map)}"
        )
    return violations


def _sharded_violations(engine: "ShardedDedupEngine") -> List[str]:
    """Cluster invariants; the caller holds the router lock.

    Beyond running every shard's own :func:`_engine_violations`, this
    asserts the three laws DESIGN.md §5.7 adds:

    * **Shard selection** — every live PBN record in shard *i* has a
      fingerprint whose :func:`~repro.datared.sharded.shard_for_digest`
      is *i* (content routing, the law global dedup rests on).
    * **Directory consistency** — an LBA is mapped in exactly the shard
      the router directory records, and the directory has no entries
      for LBAs no shard maps.
    * **Cluster ledger conservation** — the summed per-shard stats
      ledger equals the summed container bytes and the summed live PBN
      record bytes: per-shard ledgers add up to the global ledger.
    """
    from ..datared.sharded import shard_for_digest

    violations: List[str] = []
    directory = engine._lba_shard
    total_container = 0
    total_record = 0
    mapped_anywhere: dict = {}
    for index, shard in enumerate(engine.shards):
        with shard.lock:
            for violation in _engine_violations(shard):
                violations.append(f"shard {index}: {violation}")
            for pbn, record in shard.pbn_map.records():
                owner = shard_for_digest(
                    record.fingerprint, engine.num_shards
                )
                if owner != index:
                    violations.append(
                        f"shard {index}: live PBN {pbn}'s fingerprint "
                        f"selects shard {owner} (shard-selection "
                        "invariant)"
                    )
            for lba, _pbn in shard.lba_map.items():
                if lba in mapped_anywhere:
                    violations.append(
                        f"LBA {lba} mapped in both shard "
                        f"{mapped_anywhere[lba]} and shard {index}"
                    )
                mapped_anywhere[lba] = index
                recorded = directory.get(lba)
                if recorded != index:
                    violations.append(
                        f"LBA {lba} mapped in shard {index} but the "
                        f"router directory records {recorded}"
                    )
            total_container += shard.containers.live_bytes
            total_record += shard.pbn_map.live_stored_bytes
    for lba, owner in directory.items():
        if lba not in mapped_anywhere:
            violations.append(
                f"router directory records LBA {lba} on shard {owner} "
                "but no shard maps it"
            )
    # Writers are parked on the router lock we hold, so the per-shard
    # snapshots below are mutually consistent even though each takes
    # only its own shard's lock.
    merged_live = sum(
        snap.live_stored_bytes
        for snap in (shard.stats_snapshot() for shard in engine.shards)
    )
    if merged_live != total_container:
        violations.append(
            f"summed shard stats live_stored_bytes {merged_live} != "
            f"summed container live_bytes {total_container}"
        )
    if merged_live != total_record:
        violations.append(
            f"summed shard stats live_stored_bytes {merged_live} != "
            f"summed PBN record sizes {total_record}"
        )

    # -- durability cluster consistency (DESIGN.md §5.10) ----------------------
    # Journaling is a cluster-uniform policy: either every shard carries
    # a journal or none does, every durable per-shard image must decode
    # cleanly, and snapshot names must exist on every shard (snapshot
    # ops fan to all shards atomically under the router lock).
    from ..datared.journal import MetadataJournal

    journaled = [shard.journal is not None for shard in engine.shards]
    if any(journaled) and not all(journaled):
        violations.append(
            f"only {sum(journaled)}/{len(journaled)} shards carry a "
            "journal (cluster durability must be uniform)"
        )
    if all(journaled):
        for index, shard in enumerate(engine.shards):
            assert shard.journal is not None
            _records, clean = MetadataJournal.decode(shard.journal.to_bytes())
            if not clean:
                violations.append(
                    f"shard {index}: durable journal image does not "
                    "decode cleanly"
                )
    names = None
    for index, shard in enumerate(engine.shards):
        with shard.lock:
            shard_names = sorted(shard._snapshots)
        if names is None:
            names = shard_names
        elif shard_names != names:
            violations.append(
                f"shard {index} snapshot names {shard_names} != shard 0's "
                f"{names} (snapshot fan-out must be uniform)"
            )
    return violations


def _raise_if(violations: List[str], raise_on_violation: bool) -> List[str]:
    if violations and raise_on_violation:
        raise InvariantViolation(
            f"{len(violations)} invariant violation(s):\n  "
            + "\n  ".join(violations)
        )
    return violations


def check_sharded_engine(
    engine: "ShardedDedupEngine", *, raise_on_violation: bool = True
) -> List[str]:
    """Verify per-shard and cluster-wide invariants (see
    :func:`_sharded_violations`); returns the violation list.

    Takes the router lock first, then each shard's lock in turn, so it
    is safe to call while other threads are writing through the router
    (the sharded race-stress harness does).
    """
    with engine.lock:
        violations = _sharded_violations(engine)
    return _raise_if(violations, raise_on_violation)


def check_engine(
    engine: "DedupEngine", *, raise_on_violation: bool = True
) -> List[str]:
    """Verify all engine invariants; returns the violation list.

    Takes the engine lock, so it is safe to call while other threads are
    writing (the stress harness does).  With ``raise_on_violation`` the
    first call with a non-empty list raises :class:`InvariantViolation`
    carrying every violation found.  A
    :class:`~repro.datared.sharded.ShardedDedupEngine` dispatches to
    :func:`check_sharded_engine`.
    """
    from ..datared.sharded import ShardedDedupEngine

    if isinstance(engine, ShardedDedupEngine):
        return check_sharded_engine(
            engine, raise_on_violation=raise_on_violation
        )
    with engine.lock:
        violations = _engine_violations(engine)
    return _raise_if(violations, raise_on_violation)


def check_system(
    system: "ReductionSystem", *, raise_on_violation: bool = True
) -> List[str]:
    """Engine invariants plus the system layer's staging accounting.

    ``logical_write_bytes`` counts client bytes at the front door while
    the engine's stats count processed bytes, so they must differ by
    exactly the bytes still staged in the pending batch.  A system
    built with ``config.shards >= 2`` gets the cluster-wide checks of
    :func:`check_sharded_engine` for its engine.
    """
    from ..datared.sharded import ShardedDedupEngine

    engine = system.engine
    with system.lock:
        if isinstance(engine, ShardedDedupEngine):
            with engine.lock:
                violations = _sharded_violations(engine)
            processed = sum(
                shard.stats.logical_bytes for shard in engine.shards
            )
        else:
            violations = _engine_violations(engine)
            processed = engine.stats.logical_bytes
        pending_bytes = sum(len(chunk.data) for chunk in system._pending)
        front_door = system.logical_write_bytes
        if front_door != processed + pending_bytes:
            violations.append(
                f"system logical_write_bytes {front_door} != engine "
                f"logical_bytes {processed} + pending {pending_bytes}"
            )
    return _raise_if(violations, raise_on_violation)

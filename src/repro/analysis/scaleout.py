"""Rack-level scale-out planning.

The paper evaluates per-socket scalability; a deployment plans in whole
servers.  :func:`plan_deployment` turns a measured workload report into
a bill of materials for an aggregate (throughput, capacity) target:

* sockets — from the per-socket ceiling (the Figure-14 solve),
* NICs / compression engines / cache engines — from device rates,
* SSDs — from capacity after reduction plus write-bandwidth needs,
* dollars — through the §7.8 cost model.

Because the per-socket ceiling differs so much between architectures,
the same target often needs ~3x the baseline sockets — which is the
operational translation of Figure 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..systems.accounting import SystemReport
from .cost import CostParameters, StorageCostModel
from .throughput import solve_throughput

__all__ = ["DeploymentPlan", "plan_deployment"]

GB = 1e9


@dataclass
class DeploymentPlan:
    """Bill of materials for one aggregate target."""

    target_throughput: float
    effective_capacity: float
    per_socket_throughput: float
    sockets: int
    nics: int
    compression_engines: int
    cache_engines: int
    data_ssds: int
    table_ssds: int
    total_cost: float
    cost_per_effective_tb: float
    bottleneck: str

    def summary_rows(self):
        return [
            ["sockets", self.sockets],
            ["FIDR NICs", self.nics],
            ["compression engines", self.compression_engines],
            ["cache HW engines", self.cache_engines],
            ["data SSDs (1 TB)", self.data_ssds],
            ["table SSDs (1 TB)", self.table_ssds],
            ["total cost", f"${self.total_cost / 1000:,.0f}k"],
            ["cost per effective TB", f"${self.cost_per_effective_tb:,.0f}"],
        ]


def plan_deployment(
    report: SystemReport,
    target_throughput: float,
    effective_capacity: float,
    use_cache_engine: bool = True,
    tree_window: int = 4,
    params: Optional[CostParameters] = None,
) -> DeploymentPlan:
    """Size a deployment from a measured per-socket report."""
    if target_throughput <= 0 or effective_capacity <= 0:
        raise ValueError("target throughput and capacity must be positive")
    params = params if params is not None else CostParameters()

    solved = solve_throughput(
        report, use_cache_engine=use_cache_engine, tree_window=tree_window
    )
    per_socket = solved.throughput
    sockets = max(1, math.ceil(target_throughput / per_socket))

    nics = max(sockets, math.ceil(target_throughput / params.nic_rate))
    compression_engines = max(
        sockets, math.ceil(target_throughput / params.compression_engine_rate)
    )
    cache_engines = (
        max(sockets, math.ceil(target_throughput / params.cache_engine_rate))
        if use_cache_engine
        else 0
    )

    stored = effective_capacity * params.stored_fraction
    ssd_unit = 1000 * GB
    capacity_ssds = math.ceil(stored / ssd_unit)
    # Sustained ingest also needs write bandwidth: stored bytes per
    # client byte times the target, over one drive's write rate.
    stored_per_byte = (
        report.reduction.stored_bytes / report.logical_bytes
        if report.logical_bytes
        else params.stored_fraction
    )
    bandwidth_ssds = math.ceil(
        stored_per_byte * target_throughput / report.server.data_ssd.write_bw
    )
    data_ssds = max(capacity_ssds, bandwidth_ssds)
    table_bytes = stored / params.chunk_bytes * params.table_entry_bytes
    table_ssds = max(sockets, math.ceil(table_bytes / ssd_unit))

    cost_model = StorageCostModel(params)
    cores_per_75 = report.cores_required(75 * GB)
    cost = cost_model.fidr_cost(
        target_throughput, effective_capacity,
        cpu_cores_per_75gbps=cores_per_75,
    )
    total = cost.total

    return DeploymentPlan(
        target_throughput=target_throughput,
        effective_capacity=effective_capacity,
        per_socket_throughput=per_socket,
        sockets=sockets,
        nics=nics,
        compression_engines=compression_engines,
        cache_engines=cache_engines,
        data_ssds=data_ssds,
        table_ssds=table_ssds,
        total_cost=total,
        cost_per_effective_tb=total / (effective_capacity / 1e12),
        bottleneck=solved.bottleneck,
    )

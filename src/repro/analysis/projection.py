"""Linear projection utilities (paper §3.2, Figures 4-5).

The paper measures its baseline at two throughput points (5 and
6.9 GB/s) and projects resource demands linearly to the 75 GB/s target.
Our model's demands are linear in throughput by construction (byte/cycle
amplification × target), so the same methodology applies exactly; this
module provides the two-point fit — useful both for emulating the
paper's plots and for validating that measured series really are linear
— and sweep helpers for producing figure series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["LinearFit", "fit_two_points", "fit_least_squares", "sweep"]


@dataclass(frozen=True)
class LinearFit:
    """A fitted ``y = slope * x + intercept`` projection."""

    slope: float
    intercept: float

    def __call__(self, x: float) -> float:
        return self.slope * x + self.intercept

    def solve(self, y: float) -> float:
        """The x at which the projection reaches ``y``."""
        if self.slope == 0:
            raise ZeroDivisionError("flat projection never reaches the target")
        return (y - self.intercept) / self.slope


def fit_two_points(p1: Tuple[float, float], p2: Tuple[float, float]) -> LinearFit:
    """The paper's measure-twice-project method."""
    (x1, y1), (x2, y2) = p1, p2
    if x1 == x2:
        raise ValueError("need two distinct throughput points")
    slope = (y2 - y1) / (x2 - x1)
    return LinearFit(slope=slope, intercept=y1 - slope * x1)


def fit_least_squares(points: Sequence[Tuple[float, float]]) -> LinearFit:
    """Least-squares fit over any number of measurement points."""
    if len(points) < 2:
        raise ValueError("need at least two points")
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise ValueError("degenerate x values")
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return LinearFit(slope=slope, intercept=(sum_y - slope * sum_x) / n)


def sweep(
    function: Callable[[float], float], xs: Sequence[float]
) -> List[Tuple[float, float]]:
    """Evaluate a demand function over a throughput sweep (figure series)."""
    return [(x, function(x)) for x in xs]

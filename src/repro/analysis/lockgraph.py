"""Whole-program lock-order analysis for the storage stack.

``repro.analysis.lint`` checks files one at a time and
``repro.analysis.racecheck`` catches *unlocked* access at runtime;
neither reasons about the **order** locks are taken in, which is what
deadlocks are made of.  This module closes that gap statically: it
parses an entire source tree, builds a call graph plus a lock-scope
graph, and derives the *may-be-held-while-acquiring* relation between
lock classes — the same graph the runtime lockdep validator in
:mod:`repro.sync` observes live.  ``python -m repro.analysis lockgraph
--json`` merges both into one artifact.

What it resolves
----------------
* **Lock classes** — ``DisciplinedLock("name")`` construction sites
  group instances into classes by name; ranks come from
  :data:`repro.sync.LOCK_ORDER` or an explicit ``rank=`` keyword.
  An assignment or ``with`` line may carry ``# lock: <class>`` to bind
  an expression the resolver cannot type (lock aliases, foreign
  attributes such as ``shard.lock``).
* **Lock scopes** — ``with <lock>:`` blocks, ``# repro-lint: holds``
  annotations on ``def`` lines, and explicit ``.acquire()`` calls.
* **Call graph** — ``self.method`` resolves through the class
  hierarchy; bare/module calls resolve within the module; other
  attribute calls resolve only when the method name is unique across
  the whole program.  Unresolvable calls are dropped (best-effort by
  design: the runtime validator covers what static resolution cannot).

What it reports
---------------
* **cycles** — strongly connected components in the combined
  static + observed edge graph (a self-edge counts);
* **rank violations** — an edge ``A → B`` with ``rank(A) >= rank(B)``,
  i.e. an acquisition order contradicting the declared hierarchy;
* **unranked** — lock classes absent from ``LOCK_ORDER`` with no
  explicit rank;
* **blocking** — a wait that can park the thread (executor
  ``.result()``, ``queue.get``, ``time.sleep``, socket/file I/O)
  reached while a lock is held, directly or through resolved calls.
  Sanction a specific wait with ``# lockgraph: blocking-ok <reason>``
  on the call line, or mark a whole function's waits non-propagating
  with the same annotation on its ``def`` line (e.g. ``StagePool.map``:
  its workers run pure stages and never take storage locks);
* **async acquires** — a ``DisciplinedLock`` (a thread-blocking RLock)
  acquired inside ``async def``, directly or through resolved calls;
  sanction with ``# lockgraph: async-ok <reason>``.

Static limits, by design: nested ``def``\\ s are independent functions
(a closure handed to an executor does not inherit the submitting
scope's locks), callbacks and ``run_in_executor`` targets are not
followed, and two instances of the same lock class are
indistinguishable — runtime lockdep covers all three.

CLI: ``python -m repro.analysis lockgraph [paths] [--json out.json]
[--observed lockdep.json ...]``.  Exit status 1 when findings remain.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..sync import LOCK_ORDER
from .lint import _module_for_path

__all__ = [
    "LockGraphReport",
    "analyze_paths",
    "analyze_sources",
    "main",
]

_LOCK_CLASS_RE = re.compile(r"#\s*lock:\s*([\w.\-]+)")
_HOLDS_RE = re.compile(r"#\s*repro-lint:\s*holds\s+([^#\n]+)")
#: Sanction annotations must state *why* — a bare marker does not count.
_BLOCKING_OK_RE = re.compile(r"#\s*lockgraph:\s*blocking-ok\s+\S")
_ASYNC_OK_RE = re.compile(r"#\s*lockgraph:\s*async-ok\s+\S")

#: Dotted call names that park the calling thread (beyond lint's R001
#: set: these are the waits that matter while a lock is held).
_BLOCKING_NAMES = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "socket.getaddrinfo",
        "select.select",
    }
)
_BLOCKING_PREFIXES = ("socket.", "requests.", "urllib.request.")

#: Attribute-call waits, gated on the receiver's spelling so ``dict.get``
#: never trips: ``future.result()`` always blocks; ``q.get()`` only
#: counts when the receiver looks like a queue, etc.
_ATTR_WAITS: Dict[str, Tuple[str, ...]] = {
    "result": (),  # any receiver: Future.result parks the thread
    "get": ("queue",),
    "put": ("queue",),
    "join": ("thread", "queue", "proc", "pool"),
    "wait": ("event", "barrier", "cond", "future", "proc"),
    "recv": ("sock", "conn"),
    "sendall": ("sock", "conn"),
    "accept": ("sock", "listener"),
    "connect": ("sock", "conn"),
}


# ---------------------------------------------------------------------------
# Per-function model
# ---------------------------------------------------------------------------

_FuncKey = Tuple[str, Optional[str], str]  #: (module, class, function)


@dataclass(frozen=True)
class _Site:
    path: str
    line: int

    def as_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line}

    def format(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass
class _Acquire:
    lock: str
    site: _Site
    held_local: Tuple[str, ...]
    async_ok: bool


@dataclass
class _CallSite:
    callee: ast.expr
    site: _Site
    held_local: Tuple[str, ...]
    blocking_ok: bool
    async_ok: bool


@dataclass
class _BlockingCall:
    what: str
    site: _Site
    held_local: Tuple[str, ...]
    ok: bool


@dataclass
class _Function:
    key: _FuncKey
    site: _Site
    is_async: bool
    holds_tokens: Tuple[str, ...]
    def_blocking_ok: bool
    acquires: List[_Acquire] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    blocking_calls: List[_BlockingCall] = field(default_factory=list)
    #: resolved at link time:
    holds_entry: Tuple[str, ...] = ()


@dataclass
class _SourceFile:
    path: str
    module: str
    source: str

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[str] = None
        try:
            self.tree = ast.parse(self.source)
        except SyntaxError as error:
            self.parse_error = f"{self.path}:{error.lineno}: {error.msg}"

    def line(self, number: int) -> str:
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""


# ---------------------------------------------------------------------------
# Program-wide binding registry
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lock_ctor(node: ast.expr) -> Optional[Tuple[str, Optional[int]]]:
    """``("name", explicit_rank)`` when ``node`` is DisciplinedLock(...)."""
    if not isinstance(node, ast.Call):
        return None
    callee = _dotted(node.func)
    if callee is None or callee.rsplit(".", 1)[-1] != "DisciplinedLock":
        return None
    if not node.args or not isinstance(node.args[0], ast.Constant):
        return None
    name = node.args[0].value
    if not isinstance(name, str):
        return None
    rank: Optional[int] = None
    for keyword in node.keywords:
        if keyword.arg == "rank" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            if isinstance(value, int):
                rank = value
    return name, rank


class _Registry:
    """Cross-file lock bindings, class hierarchy, and function index."""

    def __init__(self) -> None:
        #: (class, attr) -> lock class name
        self.class_attr_locks: Dict[Tuple[str, str], str] = {}
        #: (module, name) -> lock class name
        self.name_locks: Dict[Tuple[str, str], str] = {}
        #: lock class -> (rank, [sites])
        self.lock_classes: Dict[str, Tuple[Optional[int], List[_Site]]] = {}
        self.class_bases: Dict[str, List[str]] = {}
        self.functions: Dict[_FuncKey, _Function] = {}
        #: simple function name -> keys (for unique-name resolution)
        self.by_name: Dict[str, List[_FuncKey]] = {}

    def add_lock_class(
        self, name: str, rank: Optional[int], site: _Site
    ) -> None:
        declared = rank if rank is not None else LOCK_ORDER.get(name)
        existing = self.lock_classes.get(name)
        if existing is None:
            self.lock_classes[name] = (declared, [site])
        else:
            merged = existing[0] if existing[0] is not None else declared
            self.lock_classes[name] = (merged, existing[1] + [site])

    def rank_of(self, name: str) -> Optional[int]:
        entry = self.lock_classes.get(name)
        if entry is not None and entry[0] is not None:
            return entry[0]
        return LOCK_ORDER.get(name)

    def add_function(self, function: _Function) -> None:
        self.functions[function.key] = function
        self.by_name.setdefault(function.key[2], []).append(function.key)

    # -- lock resolution ---------------------------------------------------

    def resolve_attr_lock(
        self, class_name: Optional[str], attr: str
    ) -> Optional[str]:
        seen: Set[str] = set()
        queue = [class_name] if class_name else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            bound = self.class_attr_locks.get((current, attr))
            if bound is not None:
                return bound
            queue.extend(self.class_bases.get(current, []))
        return None

    def resolve_unique_attr_lock(self, attr: str) -> Optional[str]:
        """The lock class for ``<expr>.attr`` when exactly one class
        binds ``attr`` to a lock — otherwise ambiguous, unresolved."""
        candidates = {
            lock
            for (_, bound_attr), lock in self.class_attr_locks.items()
            if bound_attr == attr
        }
        if len(candidates) == 1:
            return candidates.pop()
        return None

    def resolve_lock_expr(
        self,
        node: ast.expr,
        file: _SourceFile,
        class_name: Optional[str],
    ) -> Optional[str]:
        annotated = _LOCK_CLASS_RE.search(
            file.line(getattr(node, "lineno", 0))
        )
        if annotated:
            return annotated.group(1)
        ctor = _lock_ctor(node)
        if ctor is not None:
            return ctor[0]
        if isinstance(node, ast.Name):
            return self.name_locks.get((file.module, node.id))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in (
                "self",
                "cls",
            ):
                resolved = self.resolve_attr_lock(class_name, node.attr)
                if resolved is not None:
                    return resolved
            return self.resolve_unique_attr_lock(node.attr)
        return None

    def resolve_holds_token(
        self, token: str, module: str, class_name: Optional[str]
    ) -> Optional[str]:
        token = token.replace(" ", "")
        if token.startswith(("self.", "cls.")):
            return self.resolve_attr_lock(class_name, token.split(".", 1)[1])
        if "." not in token:
            by_name = self.name_locks.get((module, token))
            if by_name is not None:
                return by_name
            if token in self.lock_classes:
                return token
            return None
        return self.resolve_unique_attr_lock(token.rsplit(".", 1)[-1])

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self,
        node: ast.expr,
        module: str,
        class_name: Optional[str],
    ) -> Optional[_FuncKey]:
        if isinstance(node, ast.Name):
            key = (module, None, node.id)
            if key in self.functions:
                return key
            return self._unique(node.id)
        if isinstance(node, ast.Attribute):
            method = node.attr
            if isinstance(node.value, ast.Name) and node.value.id in (
                "self",
                "cls",
            ):
                resolved = self._resolve_method(class_name, method, module)
                if resolved is not None:
                    return resolved
            return self._unique(method)
        return None

    def _resolve_method(
        self, class_name: Optional[str], method: str, module: str
    ) -> Optional[_FuncKey]:
        seen: Set[str] = set()
        queue = [class_name] if class_name else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            for key in self.by_name.get(method, []):
                if key[1] == current:
                    return key
            queue.extend(self.class_bases.get(current, []))
        return None

    def _unique(self, name: str) -> Optional[_FuncKey]:
        keys = self.by_name.get(name, [])
        if len(keys) == 1:
            return keys[0]
        return None


# ---------------------------------------------------------------------------
# Pass 1: bindings (lock construction sites, aliases, class hierarchy)
# ---------------------------------------------------------------------------


def _collect_bindings(file: _SourceFile, registry: _Registry) -> None:
    if file.tree is None:
        return

    class_stack: List[str] = []

    def record_assignment(target: ast.expr, value: ast.expr, line: int) -> None:
        lock_name: Optional[str] = None
        ctor = _lock_ctor(value)
        if ctor is not None:
            name, rank = ctor
            registry.add_lock_class(name, rank, _Site(file.path, line))
            lock_name = name
        else:
            annotated = _LOCK_CLASS_RE.search(file.line(line))
            if annotated:
                lock_name = annotated.group(1)
        if lock_name is None:
            return
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id in ("self", "cls") and class_stack:
                registry.class_attr_locks[
                    (class_stack[-1], target.attr)
                ] = lock_name
        elif isinstance(target, ast.Name):
            registry.name_locks[(file.module, target.id)] = lock_name

    def walk(node: ast.AST) -> None:
        if isinstance(node, ast.ClassDef):
            class_stack.append(node.name)
            registry.class_bases[node.name] = [
                base
                for base in (
                    b.id
                    if isinstance(b, ast.Name)
                    else (b.attr if isinstance(b, ast.Attribute) else None)
                    for b in node.bases
                )
                if base
            ]
            for child in ast.iter_child_nodes(node):
                walk(child)
            class_stack.pop()
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record_assignment(target, node.value, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record_assignment(node.target, node.value, node.lineno)
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(file.tree)


# ---------------------------------------------------------------------------
# Pass 2: function models (scopes, acquisitions, calls, waits)
# ---------------------------------------------------------------------------


def _holds_tokens(file: _SourceFile, line: int) -> Tuple[str, ...]:
    match = _HOLDS_RE.search(file.line(line))
    if not match:
        return ()
    return tuple(
        token.strip()
        for token in match.group(1).split(",")
        if token.strip() and token.strip() != "hot-path"
    )


def _signature_flag(
    file: _SourceFile,
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    pattern: "re.Pattern[str]",
) -> bool:
    end = max(node.body[0].lineno if node.body else node.lineno + 1,
              node.lineno + 1)
    return any(
        pattern.search(file.line(number))
        for number in range(node.lineno, end)
    )


def _receiver_text(node: ast.expr) -> str:
    text = _dotted(node)
    return text.lower() if text else ""


def _blocking_what(node: ast.Call) -> Optional[str]:
    name = _dotted(node.func)
    if name is not None:
        if name in _BLOCKING_NAMES or name.startswith(_BLOCKING_PREFIXES):
            return f"{name}()"
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        receivers = _ATTR_WAITS.get(attr)
        if receivers is not None:
            receiver = _receiver_text(node.func.value)
            if not receivers or any(hint in receiver for hint in receivers):
                return f"{_dotted(node.func) or '.' + attr}()"
    return None


def _collect_functions(file: _SourceFile, registry: _Registry) -> None:
    if file.tree is None:
        return

    def walk_function(
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        class_name: Optional[str],
    ) -> None:
        function = _Function(
            key=(file.module, class_name, node.name),
            site=_Site(file.path, node.lineno),
            is_async=isinstance(node, ast.AsyncFunctionDef),
            holds_tokens=_holds_tokens(file, node.lineno),
            def_blocking_ok=_signature_flag(file, node, _BLOCKING_OK_RE),
        )
        held_stack: List[str] = []

        def line_ok(line: int, pattern: "re.Pattern[str]") -> bool:
            return bool(pattern.search(file.line(line)))

        def visit(statement: ast.AST) -> None:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Independent function: a closure does not execute in
                # the defining scope's lock context (it usually runs on
                # a worker thread with an empty held set).
                walk_function(statement, class_name)
                return
            if isinstance(statement, ast.Lambda):
                return
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                pushed = 0
                for item in statement.items:
                    lock = registry.resolve_lock_expr(
                        item.context_expr, file, class_name
                    )
                    if lock is not None:
                        function.acquires.append(
                            _Acquire(
                                lock=lock,
                                site=_Site(file.path, statement.lineno),
                                held_local=tuple(held_stack),
                                async_ok=line_ok(
                                    statement.lineno, _ASYNC_OK_RE
                                ),
                            )
                        )
                        held_stack.append(lock)
                        pushed += 1
                    else:
                        visit_expr(item.context_expr)
                for child in statement.body:
                    visit(child)
                for _ in range(pushed):
                    held_stack.pop()
                return
            for child in ast.iter_child_nodes(statement):
                visit(child)

        def visit_expr(node_expr: ast.AST) -> None:
            for child in ast.walk(node_expr):
                if isinstance(child, ast.Call):
                    handle_call(child)

        def handle_call(call: ast.Call) -> None:
            line = call.lineno
            # Explicit lock.acquire() outside a with-block.
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"
            ):
                lock = registry.resolve_lock_expr(
                    call.func.value, file, class_name
                )
                if lock is not None:
                    function.acquires.append(
                        _Acquire(
                            lock=lock,
                            site=_Site(file.path, line),
                            held_local=tuple(held_stack),
                            async_ok=line_ok(line, _ASYNC_OK_RE),
                        )
                    )
                    return
            what = _blocking_what(call)
            if what is not None:
                function.blocking_calls.append(
                    _BlockingCall(
                        what=what,
                        site=_Site(file.path, line),
                        held_local=tuple(held_stack),
                        ok=line_ok(line, _BLOCKING_OK_RE),
                    )
                )
                return
            function.calls.append(
                _CallSite(
                    callee=call.func,
                    site=_Site(file.path, line),
                    held_local=tuple(held_stack),
                    blocking_ok=line_ok(line, _BLOCKING_OK_RE),
                    async_ok=line_ok(line, _ASYNC_OK_RE),
                )
            )

        class _BodyWalker(ast.NodeVisitor):
            def visit_Call(self, call: ast.Call) -> None:  # noqa: N802
                handle_call(call)
                self.generic_visit(call)

            def visit_FunctionDef(self, fn: ast.FunctionDef) -> None:  # noqa: N802,E501
                walk_function(fn, class_name)

            def visit_AsyncFunctionDef(  # noqa: N802
                self, fn: ast.AsyncFunctionDef
            ) -> None:
                walk_function(fn, class_name)

            def visit_Lambda(self, fn: ast.Lambda) -> None:  # noqa: N802
                pass

            def visit_With(self, statement: ast.With) -> None:  # noqa: N802
                self._with(statement)

            def visit_AsyncWith(  # noqa: N802
                self, statement: ast.AsyncWith
            ) -> None:
                self._with(statement)

            def _with(
                self, statement: Union[ast.With, ast.AsyncWith]
            ) -> None:
                pushed = 0
                for item in statement.items:
                    lock = registry.resolve_lock_expr(
                        item.context_expr, file, class_name
                    )
                    if lock is not None:
                        function.acquires.append(
                            _Acquire(
                                lock=lock,
                                site=_Site(file.path, statement.lineno),
                                held_local=tuple(held_stack),
                                async_ok=line_ok(
                                    statement.lineno, _ASYNC_OK_RE
                                ),
                            )
                        )
                        held_stack.append(lock)
                        pushed += 1
                    else:
                        self.generic_visit(item.context_expr)
                    if item.optional_vars is not None:
                        self.generic_visit(item.optional_vars)
                for child in statement.body:
                    self.visit(child)
                for _ in range(pushed):
                    held_stack.pop()

        walker = _BodyWalker()
        for statement in node.body:
            walker.visit(statement)
        registry.add_function(function)

    def walk_top(node: ast.AST, class_name: Optional[str]) -> None:
        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                walk_top(child, node.name)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walk_function(node, class_name)
            return
        for child in ast.iter_child_nodes(node):
            walk_top(child, class_name)

    walk_top(file.tree, None)


# ---------------------------------------------------------------------------
# Pass 3: link + fixpoints + findings
# ---------------------------------------------------------------------------


@dataclass
class LockGraphReport:
    """The merged static + observed lock-order analysis result."""

    files_scanned: int
    lock_classes: Dict[str, Dict[str, object]]
    edges: List[Dict[str, object]]
    cycles: List[Dict[str, object]]
    rank_violations: List[Dict[str, object]]
    unranked: List[Dict[str, object]]
    blocking: List[Dict[str, object]]
    async_acquires: List[Dict[str, object]]
    parse_errors: List[str]

    @property
    def ok(self) -> bool:
        return not (
            self.cycles
            or self.rank_violations
            or self.unranked
            or self.blocking
            or self.async_acquires
            or self.parse_errors
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "tool": "lockgraph",
            "version": 1,
            "files_scanned": self.files_scanned,
            "lock_order": dict(sorted(LOCK_ORDER.items())),
            "lock_classes": self.lock_classes,
            "edges": self.edges,
            "cycles": self.cycles,
            "rank_violations": self.rank_violations,
            "unranked": self.unranked,
            "blocking": self.blocking,
            "async_acquires": self.async_acquires,
            "parse_errors": self.parse_errors,
            "ok": self.ok,
        }

    def format_text(self) -> str:
        lines: List[str] = []
        lines.append(
            f"lockgraph: {self.files_scanned} file(s), "
            f"{len(self.lock_classes)} lock class(es), "
            f"{len(self.edges)} order edge(s)"
        )
        for name, info in sorted(self.lock_classes.items()):
            rank = info["rank"]
            rank_text = f"rank {rank}" if rank is not None else "UNRANKED"
            lines.append(f"  class {name!r}: {rank_text}")
        for edge in self.edges:
            lines.append(
                f"  edge {edge['held']} -> {edge['acquired']} "
                f"[{edge['source']}]"
            )
        for label, findings in (
            ("cycle", self.cycles),
            ("rank-violation", self.rank_violations),
            ("unranked", self.unranked),
            ("blocking-while-locked", self.blocking),
            ("async-acquire", self.async_acquires),
        ):
            for finding in findings:
                lines.append(f"{label}: {finding['message']}")
        for error in self.parse_errors:
            lines.append(f"parse-error: {error}")
        lines.append("lockgraph: " + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)


def _link_and_analyze(
    files: Sequence[_SourceFile],
    observed_edges: Optional[Dict[str, Dict[str, int]]] = None,
) -> LockGraphReport:
    registry = _Registry()
    for file in files:
        _collect_bindings(file, registry)
    for file in files:
        _collect_functions(file, registry)

    # Resolve holds annotations now that every binding is known.
    for function in registry.functions.values():
        module, class_name, _ = function.key
        resolved = []
        for token in function.holds_tokens:
            lock = registry.resolve_holds_token(token, module, class_name)
            if lock is not None:
                resolved.append(lock)
        function.holds_entry = tuple(resolved)

    # Fixpoint A: may_block (cut at def-level blocking-ok sanctions).
    may_block: Dict[_FuncKey, bool] = {}
    for key, function in registry.functions.items():
        may_block[key] = (not function.def_blocking_ok) and any(
            not b.ok for b in function.blocking_calls
        )
    changed = True
    while changed:
        changed = False
        for key, function in registry.functions.items():
            if may_block[key] or function.def_blocking_ok:
                continue
            for call in function.calls:
                if call.blocking_ok:
                    continue
                callee = registry.resolve_call(
                    call.callee, function.key[0], function.key[1]
                )
                if callee is not None and may_block.get(callee):
                    may_block[key] = True
                    changed = True
                    break

    # Fixpoint B: transitive lock acquisitions.
    acquires: Dict[_FuncKey, Set[str]] = {
        key: {a.lock for a in function.acquires}
        for key, function in registry.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for key, function in registry.functions.items():
            current = acquires[key]
            for call in function.calls:
                callee = registry.resolve_call(
                    call.callee, function.key[0], function.key[1]
                )
                if callee is None:
                    continue
                extra = acquires.get(callee, set()) - current
                if extra:
                    current |= extra
                    changed = True

    # Static order edges + findings.
    edge_sites: Dict[Tuple[str, str], List[_Site]] = {}
    blocking_findings: List[Dict[str, object]] = []
    async_findings: List[Dict[str, object]] = []

    def add_edge(held: str, acquired: str, site: _Site) -> None:
        if held == acquired:
            return  # reentrant same-class nesting: runtime lockdep's job
        edge_sites.setdefault((held, acquired), []).append(site)

    for key, function in registry.functions.items():
        qualname = ".".join(part for part in key if part)
        entry = set(function.holds_entry)
        for acquire in function.acquires:
            held_here = entry | set(acquire.held_local)
            for held in held_here:
                add_edge(held, acquire.lock, acquire.site)
            if function.is_async and not acquire.async_ok:
                async_findings.append(
                    {
                        "function": qualname,
                        "lock": acquire.lock,
                        "site": acquire.site.as_dict(),
                        "message": (
                            f"{qualname} acquires DisciplinedLock "
                            f"{acquire.lock!r} inside async def "
                            f"({acquire.site.format()}); a thread lock "
                            "parks the event loop — move the acquisition "
                            "to the backend executor"
                        ),
                    }
                )
        for blocked in function.blocking_calls:
            held_here = entry | set(blocked.held_local)
            if held_here and not blocked.ok:
                blocking_findings.append(
                    {
                        "function": qualname,
                        "wait": blocked.what,
                        "held": sorted(held_here),
                        "site": blocked.site.as_dict(),
                        "message": (
                            f"{qualname} waits in {blocked.what} while "
                            f"holding {sorted(held_here)} "
                            f"({blocked.site.format()}); annotate "
                            "'# lockgraph: blocking-ok <reason>' if the "
                            "wait cannot re-enter the lock order"
                        ),
                    }
                )
        for call in function.calls:
            callee = registry.resolve_call(
                call.callee, function.key[0], function.key[1]
            )
            if callee is None:
                continue
            held_here = entry | set(call.held_local)
            callee_name = ".".join(part for part in callee if part)
            callee_acquires = acquires.get(callee, set())
            for held in held_here:
                for lock in callee_acquires:
                    if lock in held_here:
                        continue  # reentrant through the call chain
                    add_edge(held, lock, call.site)
            if held_here and may_block.get(callee) and not call.blocking_ok:
                blocking_findings.append(
                    {
                        "function": qualname,
                        "wait": f"{callee_name}()",
                        "held": sorted(held_here),
                        "site": call.site.as_dict(),
                        "message": (
                            f"{qualname} calls {callee_name}() — which may "
                            f"block — while holding {sorted(held_here)} "
                            f"({call.site.format()})"
                        ),
                    }
                )
            if (
                function.is_async
                and callee_acquires
                and not call.async_ok
            ):
                async_findings.append(
                    {
                        "function": qualname,
                        "lock": sorted(callee_acquires)[0],
                        "site": call.site.as_dict(),
                        "message": (
                            f"{qualname} (async) calls {callee_name}() "
                            f"which acquires {sorted(callee_acquires)} "
                            f"({call.site.format()})"
                        ),
                    }
                )

    # Merge observed runtime edges.
    edges_out: List[Dict[str, object]] = []
    combined: Dict[str, Set[str]] = {}
    for (held, acquired), sites in sorted(edge_sites.items()):
        combined.setdefault(held, set()).add(acquired)
        edges_out.append(
            {
                "held": held,
                "acquired": acquired,
                "source": "static",
                "sites": [site.as_dict() for site in sites[:8]],
            }
        )
    for held, targets in sorted((observed_edges or {}).items()):
        for acquired, count in sorted(targets.items()):
            combined.setdefault(held, set()).add(acquired)
            static_twin = (held, acquired) in edge_sites
            edges_out.append(
                {
                    "held": held,
                    "acquired": acquired,
                    "source": "observed+static" if static_twin else "observed",
                    "count": count,
                }
            )

    # Cycles over the combined graph (Tarjan SCC; self-edges count).
    cycles = _find_cycles(combined)
    cycle_findings = [
        {
            "classes": cycle,
            "message": "lock-order cycle: " + " -> ".join(cycle + [cycle[0]]),
        }
        for cycle in cycles
    ]

    # Rank checks over every combined edge.
    rank_findings: List[Dict[str, object]] = []
    for held, targets in sorted(combined.items()):
        held_rank = registry.rank_of(held)
        for acquired in sorted(targets):
            acquired_rank = registry.rank_of(acquired)
            if (
                held_rank is not None
                and acquired_rank is not None
                and held_rank >= acquired_rank
            ):
                sites = edge_sites.get((held, acquired), [])
                rank_findings.append(
                    {
                        "held": held,
                        "acquired": acquired,
                        "held_rank": held_rank,
                        "acquired_rank": acquired_rank,
                        "sites": [site.as_dict() for site in sites[:8]],
                        "message": (
                            f"{acquired!r} (rank {acquired_rank}) acquired "
                            f"while {held!r} (rank {held_rank}) is held; "
                            "the declared LOCK_ORDER requires strictly "
                            "increasing ranks"
                        ),
                    }
                )

    # Unranked lock classes (construction sites with no declared rank).
    unranked_findings: List[Dict[str, object]] = []
    lock_classes_out: Dict[str, Dict[str, object]] = {}
    for name, (rank, sites) in sorted(registry.lock_classes.items()):
        declared = rank if rank is not None else LOCK_ORDER.get(name)
        lock_classes_out[name] = {
            "rank": declared,
            "sites": [site.as_dict() for site in sites],
        }
        if declared is None:
            unranked_findings.append(
                {
                    "class": name,
                    "sites": [site.as_dict() for site in sites],
                    "message": (
                        f"lock class {name!r} has no rank; register it in "
                        "repro.sync.LOCK_ORDER or pass rank= explicitly"
                    ),
                }
            )

    return LockGraphReport(
        files_scanned=len(files),
        lock_classes=lock_classes_out,
        edges=edges_out,
        cycles=cycle_findings,
        rank_violations=rank_findings,
        unranked=unranked_findings,
        blocking=sorted(
            blocking_findings, key=lambda f: str(f["site"])
        ),
        async_acquires=sorted(
            async_findings, key=lambda f: str(f["site"])
        ),
        parse_errors=[
            file.parse_error for file in files if file.parse_error
        ],
    )


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Cycle witnesses: SCCs of size > 1, plus self-loop nodes."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    cycles: List[List[str]] = []
    nodes = sorted(set(graph) | {t for ts in graph.values() for t in ts})

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for neighbor in sorted(graph.get(node, ())):
            if neighbor not in index:
                strongconnect(neighbor)
                lowlink[node] = min(lowlink[node], lowlink[neighbor])
            elif neighbor in on_stack:
                lowlink[node] = min(lowlink[node], index[neighbor])
        if lowlink[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            component.reverse()
            if len(component) > 1 or (
                component[0] in graph.get(component[0], ())
            ):
                cycles.append(component)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return cycles


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_sources(
    sources: Dict[str, Tuple[str, str]],
    observed_edges: Optional[Dict[str, Dict[str, int]]] = None,
) -> LockGraphReport:
    """Analyze in-memory modules: ``{path: (module, source)}``.

    The fixture-friendly twin of :func:`analyze_paths` (mirrors
    ``lint_source``): the unit tests feed synthetic multi-module
    programs with known cycles through it.
    """
    files = [
        _SourceFile(path, module, source)
        for path, (module, source) in sorted(sources.items())
    ]
    return _link_and_analyze(files, observed_edges)


def _iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    result: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            result.extend(
                candidate
                for candidate in sorted(root.rglob("*.py"))
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        elif root.suffix == ".py":
            result.append(root)
    return result


def load_observed(paths: Iterable[str]) -> Dict[str, Dict[str, int]]:
    """Merge one or more ``lockdep_dump_json`` artifacts into an edge map."""
    merged: Dict[str, Dict[str, int]] = {}
    for path in paths:
        payload = json.loads(Path(path).read_text())
        for edge in payload.get("edges", []):
            held = edge["held"]
            acquired = edge["acquired"]
            targets = merged.setdefault(held, {})
            targets[acquired] = targets.get(acquired, 0) + int(
                edge.get("count", 1)
            )
    return merged


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    observed_edges: Optional[Dict[str, Dict[str, int]]] = None,
) -> LockGraphReport:
    """Analyze files/directories on disk."""
    files = [
        _SourceFile(str(path), _module_for_path(path), path.read_text())
        for path in _iter_python_files(paths)
    ]
    return _link_and_analyze(files, observed_edges)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis lockgraph",
        description="Whole-program lock-order analysis (static + observed).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, help="write a JSON report"
    )
    parser.add_argument(
        "--observed",
        action="append",
        default=[],
        metavar="LOCKDEP_JSON",
        help="merge a runtime lockdep_dump_json artifact (repeatable)",
    )
    options = parser.parse_args(argv)

    paths = options.paths or ["src/repro"]
    observed = load_observed(options.observed) if options.observed else None
    report = analyze_paths(paths, observed)
    print(report.format_text())
    if options.json_path:
        Path(options.json_path).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())

"""Per-socket throughput solver (paper §7.5, Figure 14).

The paper's overall-throughput evaluation is "a basic simulation model
based on our measured CPU utilization, memory bandwidth and the
throughput of FIDR Cache HW-Engine", projected onto a high-end 22-core
socket.  We do the same, explicitly: a system configuration's maximum
per-socket throughput is the smallest of its resource ceilings —

* host DRAM bandwidth        (amplification × T ≤ peak DRAM BW),
* host CPU                   (cycles/byte × T ≤ socket cycle rate),
* PCIe root complex          (root-complex bytes/byte × T ≤ socket IO),
* Cache HW-Engine            (Figure 13's caps, when the engine is used),
* data SSD array bandwidth   (stored bytes/byte × T ≤ array write BW).

Every ceiling comes from a measured :class:`~repro.systems.SystemReport`
over the workload plus the cache-engine timing model — nothing is
tabulated from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cache.cache_engine import CacheEngineConfig, CacheEngineModel
from ..systems.accounting import SystemReport

__all__ = ["ThroughputCeilings", "solve_throughput"]


@dataclass
class ThroughputCeilings:
    """All resource ceilings (bytes/s of client data) for one config."""

    ceilings: Dict[str, float]

    @property
    def throughput(self) -> float:
        return min(self.ceilings.values())

    @property
    def bottleneck(self) -> str:
        return min(self.ceilings, key=self.ceilings.get)

    def speedup_over(self, other: "ThroughputCeilings") -> float:
        return self.throughput / other.throughput


def solve_throughput(
    report: SystemReport,
    use_cache_engine: bool = False,
    tree_window: int = 4,
    engine_config: Optional[CacheEngineConfig] = None,
    num_cache_engines: int = 1,
    data_ssd_write_bw: Optional[float] = None,
) -> ThroughputCeilings:
    """Max per-socket throughput for the system behind ``report``.

    ``use_cache_engine`` adds the Cache HW-Engine ceiling (Figure 13's
    model) with the workload's *measured* miss behaviour;
    ``tree_window=1`` is the single-update tree, ``4`` the optimized one.
    ``data_ssd_write_bw`` defaults to unconstrained (the paper scales
    the SSD array with the target).
    """
    ceilings: Dict[str, float] = {
        "host_dram": report.max_throughput_memory(),
        "host_cpu": report.max_throughput_cpu(),
        "pcie_root_complex": report.max_throughput_pcie(),
    }

    if use_cache_engine:
        model = CacheEngineModel(
            engine_config if engine_config is not None else CacheEngineConfig()
        )
        # Engine miss rate = bucket fetches per chunk-sized request,
        # measured functionally on the workload.
        chunks = report.logical_write_bytes / model.config.chunk_size
        miss_rate = report.cache_stats.fetches / chunks if chunks else 0.0
        breakdown = model.analytic_throughput(
            min(1.0, miss_rate), window=tree_window
        )
        # Engine capacity applies to the *written* share of the stream.
        write_fraction = (
            report.logical_write_bytes / report.logical_bytes
            if report.logical_bytes
            else 1.0
        )
        engine_cap = breakdown.throughput * num_cache_engines
        if write_fraction > 0:
            ceilings["cache_hw_engine"] = engine_cap / write_fraction

    if data_ssd_write_bw is not None and report.logical_bytes:
        stored_per_byte = report.reduction.stored_bytes / report.logical_bytes
        if stored_per_byte > 0:
            ceilings["data_ssd"] = data_ssd_write_bw / stored_per_byte

    return ThroughputCeilings(ceilings=ceilings)

"""Eraser-style lock-set race detection for the storage stack.

The stack's concurrency contract (DESIGN.md §5.2) says every piece of
shared metadata is mutated either under the engine's
:class:`~repro.sync.DisciplinedLock` or by exactly one thread.  This
module *checks* that contract at runtime, following the classic Eraser
algorithm (Savage et al., 1997): every access to a watched object
records ``(thread, lock-set)``; per field the detector maintains a
candidate lock set — the intersection of the lock sets of all accesses
since the field became shared — and reports a race when a **write**
happens while the candidate set is empty (two threads touched the field
with no lock in common, and at least one of them wrote).

Usage
-----
Opt in with the environment variable (zero wrappers are installed when
it is unset)::

    REPRO_RACE_DETECT=1 python -m pytest tests/analysis/test_race_stress.py

or explicitly in a harness::

    from repro.analysis import racecheck
    racecheck.enable()
    racecheck.watch(engine.pbn_map, mutators=racecheck.MUTATORS["PbnMap"])
    ...
    assert racecheck.reports() == []

Watching swaps the object's class for an instrumented subclass that
records attribute reads (``__getattribute__`` on instance data),
attribute writes (``__setattr__``/``__delattr__``), and — because
containers like ``dict`` are mutated in place without any attribute
store — *method calls*, classified read or write by the per-class
``mutators`` set (a call to ``PbnMap.add`` is a write access; a call to
``PbnMap.get`` is a read).  Method-call accesses share one pseudo-field
(:data:`METHODS_FIELD`) per object, giving object-granularity conflict
detection on top of field-granularity attribute tracking.

:class:`~repro.datared.dedup.DedupEngine` and the system layer
self-register their shared structures at construction when
``REPRO_RACE_DETECT`` is set (see ``watch_engine`` / ``watch_system``).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Type

from ..errors import ReproError
from ..sync import held_locks

__all__ = [
    "METHODS_FIELD",
    "MUTATORS",
    "RaceError",
    "RaceReport",
    "enable",
    "disable",
    "enabled",
    "reports",
    "reset",
    "set_raise_on_race",
    "dump_json",
    "watch",
    "unwatch",
    "watch_engine",
    "watch_system",
]

#: Pseudo-field under which method-call accesses are recorded (the
#: object's in-place-mutated internals, e.g. a ``dict`` of records).
METHODS_FIELD = "<methods>"

#: Attribute carrying per-object watch metadata; never tracked.
_META_ATTR = "_racecheck_meta_"

#: Mutating-method sets for the storage stack's shared classes.  A
#: method not listed here counts as a read access.
MUTATORS: Dict[str, FrozenSet[str]] = {
    "PbnMap": frozenset({"add", "ref", "unref", "repoint"}),
    "LbaMap": frozenset({"set", "unmap"}),
    "HashPbnTable": frozenset({"insert", "remove", "update"}),
    "PbnAllocator": frozenset({"allocate", "free", "ensure_allocated"}),
    "Container": frozenset({"append", "mark_dead", "seal"}),
    "ContainerStore": frozenset({"append", "seal_open", "mark_dead", "drop"}),
    "WriteReport": frozenset({"add"}),
    "MemoryLedger": frozenset({"read", "write", "through", "require_capacity"}),
    "CpuLedger": frozenset({"charge"}),
    "PcieTopology": frozenset({"attach", "transfer"}),
}


class RaceError(ReproError):
    """Raised at the racing access when ``raise_on_race`` is set."""


@dataclass(frozen=True)
class RaceReport:
    """One detected lock-discipline violation on one field."""

    object_name: str
    field: str
    first_thread: str
    second_thread: str
    candidate_locks: Tuple[str, ...]  #: intersection just before it emptied
    access: str  #: "write" — races are only reported on writes

    def describe(self) -> str:
        return (
            f"race on {self.object_name}.{self.field}: threads "
            f"{self.first_thread!r} and {self.second_thread!r} wrote with "
            f"disjoint lock sets (candidate was {list(self.candidate_locks)})"
        )


# Eraser field states.
_EXCLUSIVE = 0  #: touched by one thread only so far
_SHARED = 1  #: multiple threads, reads only since sharing began
_SHARED_MOD = 2  #: multiple threads and at least one write


@dataclass
class _FieldState:
    state: int = _EXCLUSIVE
    first_thread_id: int = 0
    first_thread_name: str = ""
    #: Candidate lock set; ``None`` until the field becomes shared.
    candidate: Optional[FrozenSet[Any]] = None
    reported: bool = False


@dataclass
class _WatchMeta:
    name: str
    mutators: FrozenSet[str] = frozenset()
    original_class: Optional[type] = None


class _Detector:
    """Global access recorder (thread-safe; shared by all watched objects)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fields: Dict[Tuple[int, str], _FieldState] = {}
        #: Strong refs: keeps ids stable and watched objects alive.
        self._watched: Dict[int, Any] = {}
        self.reports: List[RaceReport] = []
        self.raise_on_race = False

    def register(self, obj: Any) -> None:
        with self._lock:
            self._watched[id(obj)] = obj

    def unregister(self, obj: Any) -> None:
        with self._lock:
            self._watched.pop(id(obj), None)
            for key in [k for k in self._fields if k[0] == id(obj)]:
                del self._fields[key]

    def clear(self) -> None:
        with self._lock:
            self._fields.clear()
            self._watched.clear()
            self.reports = []

    def record(self, meta: _WatchMeta, obj_id: int, field_name: str,
               is_write: bool) -> None:
        thread_id = threading.get_ident()
        thread_name = threading.current_thread().name
        locks = held_locks()
        report: Optional[RaceReport] = None
        with self._lock:
            key = (obj_id, field_name)
            state = self._fields.get(key)
            if state is None:
                self._fields[key] = _FieldState(
                    first_thread_id=thread_id, first_thread_name=thread_name
                )
                return
            if state.state == _EXCLUSIVE and thread_id == state.first_thread_id:
                return
            if state.candidate is None:
                # Field just became shared: candidate starts as this
                # access's lock set and only shrinks from here.
                state.candidate = locks
            else:
                state.candidate = state.candidate & locks
            if is_write:
                state.state = _SHARED_MOD
            elif state.state == _EXCLUSIVE:
                state.state = _SHARED
            if (
                state.state == _SHARED_MOD
                and is_write
                and not state.candidate
                and not state.reported
            ):
                state.reported = True
                report = RaceReport(
                    object_name=meta.name,
                    field=field_name,
                    first_thread=state.first_thread_name,
                    second_thread=thread_name,
                    candidate_locks=tuple(
                        sorted(getattr(lock, "name", repr(lock))
                               for lock in locks)
                    ),
                    access="write",
                )
                self.reports.append(report)
        if report is not None and self.raise_on_race:
            raise RaceError(report.describe())


_detector = _Detector()
_enabled = bool(os.environ.get("REPRO_RACE_DETECT"))
_instrumented: Dict[type, type] = {}


def enabled() -> bool:
    """Whether watching is active (env ``REPRO_RACE_DETECT`` or :func:`enable`)."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    """Stop watching *new* objects (already-watched objects keep recording)."""
    global _enabled
    _enabled = False


def reports() -> List[RaceReport]:
    """All races detected since the last :func:`reset`."""
    return list(_detector.reports)


def reset() -> None:
    """Forget all access history, reports, and watched-object refs."""
    _detector.clear()


def set_raise_on_race(flag: bool) -> None:
    """Raise :class:`RaceError` at the racing access instead of collecting."""
    _detector.raise_on_race = flag


def dump_json(path: str) -> None:
    """Write the collected race reports as a JSON artifact."""
    payload = {
        "version": 1,
        "races": [
            {
                "object": r.object_name,
                "field": r.field,
                "first_thread": r.first_thread,
                "second_thread": r.second_thread,
                "candidate_locks": list(r.candidate_locks),
                "access": r.access,
            }
            for r in _detector.reports
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def _meta_of(obj: Any) -> Optional[_WatchMeta]:
    try:
        return object.__getattribute__(obj, _META_ATTR)
    except AttributeError:
        return None


def _instrumented_class(cls: type) -> type:
    sub = _instrumented.get(cls)
    if sub is not None:
        return sub

    def __getattribute__(self: Any, attr: str) -> Any:
        value = super(sub, self).__getattribute__(attr)  # type: ignore[arg-type]
        if attr.startswith("__") or attr == _META_ATTR:
            return value
        meta = _meta_of(self)
        if meta is None:
            return value
        instance_dict = object.__getattribute__(self, "__dict__")
        if attr in instance_dict:
            _detector.record(meta, id(self), attr, is_write=False)
        else:
            # Class-level attribute: a bound method or property result.
            # Classify by the per-class mutator set; the access is
            # recorded at call-lookup time, so the lock set observed is
            # the caller's at the moment it invoked the method.
            _detector.record(
                meta, id(self), METHODS_FIELD,
                is_write=attr in meta.mutators,
            )
        return value

    def __setattr__(self: Any, attr: str, value: Any) -> None:
        meta = _meta_of(self)
        if meta is not None and not attr.startswith("__") and attr != _META_ATTR:
            _detector.record(meta, id(self), attr, is_write=True)
        super(sub, self).__setattr__(attr, value)  # type: ignore[arg-type]

    def __delattr__(self: Any, attr: str) -> None:
        meta = _meta_of(self)
        if meta is not None and not attr.startswith("__") and attr != _META_ATTR:
            _detector.record(meta, id(self), attr, is_write=True)
        super(sub, self).__delattr__(attr)  # type: ignore[arg-type]

    sub = type(
        f"Watched{cls.__name__}",
        (cls,),
        {
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
            "__delattr__": __delattr__,
            "__module__": cls.__module__,
        },
    )
    _instrumented[cls] = sub
    return sub


def watch(
    obj: Any,
    *,
    name: Optional[str] = None,
    mutators: Optional[Iterable[str]] = None,
) -> Any:
    """Instrument ``obj`` for lock-set tracking; returns ``obj``.

    No-op (and no wrapper class is installed) while the detector is
    disabled.  ``mutators`` is the set of method names that count as
    write accesses; it defaults to the entry for the object's class in
    :data:`MUTATORS` (empty set if unknown: attribute tracking only).
    """
    if not _enabled:
        return obj
    if _meta_of(obj) is not None:
        return obj  # already watched
    cls: Type[Any] = type(obj)
    if mutators is None:
        muts = MUTATORS.get(cls.__name__, frozenset())
    else:
        muts = frozenset(mutators)
    meta = _WatchMeta(
        name=name if name is not None else f"{cls.__name__}@{id(obj):x}",
        mutators=muts,
        original_class=cls,
    )
    object.__setattr__(obj, _META_ATTR, meta)
    obj.__class__ = _instrumented_class(cls)
    _detector.register(obj)
    return obj


def unwatch(obj: Any) -> Any:
    """Remove instrumentation from ``obj`` (restores its original class)."""
    meta = _meta_of(obj)
    if meta is None:
        return obj
    if meta.original_class is not None:
        obj.__class__ = meta.original_class
    object.__delattr__(obj, _META_ATTR)
    _detector.unregister(obj)
    return obj


def watch_engine(engine: Any) -> None:
    """Watch a :class:`~repro.datared.dedup.DedupEngine`'s shared state.

    Called by the engine's constructor when ``REPRO_RACE_DETECT`` is
    set.  The engine object itself is watched with *no* method-level
    mutators: its public entry points serialize internally, so two
    threads calling ``write_many`` concurrently is legal — what must
    never happen is the guarded structures underneath seeing disjoint
    lock sets.
    """
    if not _enabled:
        return
    watch(engine, name="engine", mutators=())
    watch(engine.table, name="engine.table")
    watch(engine.pbn_map, name="engine.pbn_map")
    watch(engine.lba_map, name="engine.lba_map")
    watch(engine.allocator, name="engine.allocator")
    watch(engine.containers, name="engine.containers")
    watch(engine.stats, name="engine.stats")


def watch_system(system: Any) -> None:
    """Watch a :class:`~repro.systems.base.ReductionSystem`'s ledgers."""
    if not _enabled:
        return
    watch(system.memory, name="system.memory")
    watch(system.cpu, name="system.cpu")
    watch(system.pcie, name="system.pcie")

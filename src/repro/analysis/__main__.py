"""CLI dispatcher: ``python -m repro.analysis <tool> ...``.

Tools:

* ``lint`` — AST contract linter (rules R001-R005); also runnable
  directly as ``python -m repro.analysis.lint``.
* ``invariants`` — run the ledger/index conservation checks against a
  freshly exercised engine (a self-test that the checker and the
  engine agree).

The race detector has no standalone CLI: enable it with
``REPRO_RACE_DETECT=1`` around any test or workload run, then read
``repro.analysis.racecheck.reports()`` or the JSON dump.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence


def _run_invariants_selftest() -> int:
    from ..datared.dedup import DedupEngine
    from . import invariants

    engine = DedupEngine()
    payload = bytes(range(256)) * (engine.chunker.chunk_size // 256)
    step = engine.chunker.blocks_per_chunk
    for index in range(64):
        engine.write(index * step, payload[: engine.chunker.chunk_size])
        if index % 3 == 0:  # plant duplicates and overwrites
            engine.write(((index + 1) % 64) * step, payload[: engine.chunker.chunk_size])
    engine.flush()
    engine.collect_garbage(0.5)
    violations = invariants.check_engine(engine, raise_on_violation=False)
    for violation in violations:
        print(f"violation: {violation}")
    print(
        "invariants: "
        + ("OK" if not violations else f"{len(violations)} violation(s)")
    )
    return 1 if violations else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    tool, rest = arguments[0], arguments[1:]
    if tool == "lint":
        from .lint import main as lint_main

        return lint_main(rest)
    if tool == "invariants":
        return _run_invariants_selftest()
    print(f"unknown tool {tool!r}; expected 'lint' or 'invariants'")
    return 2


if __name__ == "__main__":
    sys.exit(main())

"""CLI dispatcher: ``python -m repro.analysis <tool> ...``.

Tools:

* ``lint`` — AST contract linter (rules R001-R012); also runnable
  directly as ``python -m repro.analysis.lint``.
* ``lockgraph`` — whole-program lock-order analysis: static call/lock
  graph over a source tree, merged with observed runtime lockdep edges
  (``--observed lockdep.json``); also runnable directly as
  ``python -m repro.analysis.lockgraph``.
* ``invariants`` — run the ledger/index conservation checks against a
  freshly exercised engine (a self-test that the checker and the
  engine agree).
* ``crash`` — kill-at-random-offset crash/recovery harness for the
  durability tier: tears journal images at every framing-offset class
  and asserts recovery restores exactly the acknowledged state
  (``--smoke`` is the CI leg); also runnable directly as
  ``python -m repro.analysis.crash``.
* ``report`` — run lint + lockgraph + the invariants self-test and
  emit one strict-JSON summary on stdout with a single exit code, so
  CI runs one command instead of three.

The race detector has no standalone CLI: enable it with
``REPRO_RACE_DETECT=1`` around any test or workload run, then read
``repro.analysis.racecheck.reports()`` or the JSON dump.  The runtime
lock-order validator is armed the same way with ``REPRO_LOCKDEP=1``
(see :mod:`repro.sync`); dump its edges with
``repro.sync.lockdep_dump_json`` and feed them to ``lockgraph
--observed``.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence


def _invariants_violations() -> List[str]:
    from ..datared.dedup import DedupEngine
    from . import invariants

    engine = DedupEngine()
    payload = bytes(range(256)) * (engine.chunker.chunk_size // 256)
    step = engine.chunker.blocks_per_chunk
    for index in range(64):
        engine.write(index * step, payload[: engine.chunker.chunk_size])
        if index % 3 == 0:  # plant duplicates and overwrites
            engine.write(((index + 1) % 64) * step, payload[: engine.chunker.chunk_size])
    engine.flush()
    engine.collect_garbage(0.5)
    return [
        str(violation)
        for violation in invariants.check_engine(
            engine, raise_on_violation=False
        )
    ]


def _run_invariants_selftest() -> int:
    violations = _invariants_violations()
    for violation in violations:
        print(f"violation: {violation}")
    print(
        "invariants: "
        + ("OK" if not violations else f"{len(violations)} violation(s)")
    )
    return 1 if violations else 0


def _run_report(rest: Sequence[str]) -> int:
    """Aggregate lint + lockgraph + invariants into one JSON summary.

    Strict JSON on stdout (nothing else is printed) and one exit code:
    0 only when every section passes.  ``rest`` may name the lint
    paths (default ``src/ tests/``); lockgraph always covers
    ``src/repro`` — the acceptance surface for the lock hierarchy.
    """
    from .lint import RULES, lint_paths
    from .lockgraph import analyze_paths

    lint_targets = list(rest) or ["src/", "tests/"]
    findings, files_scanned = lint_paths(lint_targets)
    lockgraph_report = analyze_paths(["src/repro"])
    invariant_violations = _invariants_violations()

    summary = {
        "tool": "repro.analysis report",
        "version": 1,
        "lint": {
            "rules": RULES,
            "paths": lint_targets,
            "files_scanned": files_scanned,
            "findings": [finding.as_dict() for finding in findings],
            "ok": not findings,
        },
        "lockgraph": lockgraph_report.as_dict(),
        "invariants": {
            "violations": invariant_violations,
            "ok": not invariant_violations,
        },
    }
    summary["ok"] = bool(
        summary["lint"]["ok"]  # type: ignore[index]
        and lockgraph_report.ok
        and not invariant_violations
    )
    print(json.dumps(summary, indent=2))
    return 0 if summary["ok"] else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments or arguments[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    tool, rest = arguments[0], arguments[1:]
    if tool == "lint":
        from .lint import main as lint_main

        return lint_main(rest)
    if tool == "lockgraph":
        from .lockgraph import main as lockgraph_main

        return lockgraph_main(rest)
    if tool == "invariants":
        return _run_invariants_selftest()
    if tool == "crash":
        from .crash import main as crash_main

        return crash_main(rest)
    if tool == "report":
        return _run_report(rest)
    print(
        f"unknown tool {tool!r}; expected 'lint', 'lockgraph', "
        "'invariants', 'crash', or 'report'"
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())

"""Analysis: projection/cost modelling and correctness tooling.

Two families live here:

* **Performance analysis** — linear projection, throughput solving,
  scale-out planning, cost modelling (``projection``, ``throughput``,
  ``scaleout``, ``cost``, ``report``).
* **Correctness analysis** — the concurrency-discipline suite
  (``lint``: AST rules R001-R011, ``racecheck``: Eraser-style lock-set
  race detection, ``lockgraph``: whole-program lock-order analysis
  merged with runtime lockdep edges, ``invariants``: ledger/index
  conservation checks).  Run ``python -m repro.analysis --help`` for
  the CLI.

Symbols are resolved lazily (PEP 562) so that importing the lightweight
correctness tools does not pull in the numpy-backed projection stack,
and so the storage stack can import ``racecheck`` at runtime without an
import cycle through ``systems``.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "Comparison": ("report", "Comparison"),
    "CostBreakdown": ("cost", "CostBreakdown"),
    "CostParameters": ("cost", "CostParameters"),
    "DeploymentPlan": ("scaleout", "DeploymentPlan"),
    "LinearFit": ("projection", "LinearFit"),
    "plan_deployment": ("scaleout", "plan_deployment"),
    "StorageCostModel": ("cost", "StorageCostModel"),
    "ThroughputCeilings": ("throughput", "ThroughputCeilings"),
    "fit_least_squares": ("projection", "fit_least_squares"),
    "fit_two_points": ("projection", "fit_two_points"),
    "format_comparisons": ("report", "format_comparisons"),
    "format_table": ("report", "format_table"),
    "gbps": ("report", "gbps"),
    "pct": ("report", "pct"),
    "solve_throughput": ("throughput", "solve_throughput"),
    "sweep": ("projection", "sweep"),
}

__all__ = sorted(_EXPORTS) + ["invariants", "lint", "lockgraph", "racecheck"]

if TYPE_CHECKING:  # pragma: no cover - static-analysis convenience only
    from .cost import CostBreakdown, CostParameters, StorageCostModel  # noqa: F401
    from .projection import (  # noqa: F401
        LinearFit,
        fit_least_squares,
        fit_two_points,
        sweep,
    )
    from .report import (  # noqa: F401
        Comparison,
        format_comparisons,
        format_table,
        gbps,
        pct,
    )
    from .scaleout import DeploymentPlan, plan_deployment  # noqa: F401
    from .throughput import ThroughputCeilings, solve_throughput  # noqa: F401


def __getattr__(name: str) -> object:
    entry = _EXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr = entry
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attr)


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_EXPORTS))

"""Analysis: linear projection, throughput solving, and cost modelling."""

from .cost import CostBreakdown, CostParameters, StorageCostModel
from .projection import LinearFit, fit_least_squares, fit_two_points, sweep
from .report import Comparison, format_comparisons, format_table, gbps, pct
from .scaleout import DeploymentPlan, plan_deployment
from .throughput import ThroughputCeilings, solve_throughput

__all__ = [
    "Comparison",
    "CostBreakdown",
    "CostParameters",
    "DeploymentPlan",
    "LinearFit",
    "plan_deployment",
    "StorageCostModel",
    "ThroughputCeilings",
    "fit_least_squares",
    "fit_two_points",
    "format_comparisons",
    "format_table",
    "gbps",
    "pct",
    "solve_throughput",
    "sweep",
]

"""Report formatting for the experiment harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, alongside the paper's values where we have them.  These
helpers keep that output consistent: fixed-width ASCII tables and a
paper-vs-measured row type with relative error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

__all__ = ["Comparison", "format_table", "format_comparisons", "pct", "gbps"]

Cell = Union[str, float, int, None]


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.1f}%"


def gbps(value_bytes_per_s: float) -> str:
    """Format bytes/s as GB/s (decimal, matching the paper)."""
    return f"{value_bytes_per_s / 1e9:.1f} GB/s"


def _render(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Comparison:
    """One paper-value vs measured-value row."""

    label: str
    paper: Optional[float]
    measured: float
    unit: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return (self.measured - self.paper) / self.paper

    def row(self) -> List[Cell]:
        error = self.relative_error
        return [
            self.label,
            "-" if self.paper is None else f"{self.paper:.3g} {self.unit}".strip(),
            f"{self.measured:.3g} {self.unit}".strip(),
            "-" if error is None else f"{error:+.0%}",
        ]


def format_comparisons(comparisons: Sequence[Comparison], title: str = "") -> str:
    """Render paper-vs-measured rows as a table."""
    return format_table(
        headers=["metric", "paper", "measured", "error"],
        rows=[comparison.row() for comparison in comparisons],
        title=title,
    )

"""Kill-at-random-offset crash harness for the durability tier.

Proves the recovery contract of DESIGN.md §5.10 by *actually crashing*:
run a workload against a journal-armed engine, capture the durable
journal image and the surviving container store at every group-commit
boundary (the ``on_durable`` hook fires before deferred container frees
apply — exactly the state a power cut would leave), then tear the
journal at every byte-offset class inside each appended batch —
mid-header, mid-payload, mid-CRC, on a record boundary short of the
fence, and at the full (fenced) length — recover through
:func:`repro.systems.factory.build_engine`, and assert:

* recovery never raises (truncation is a tear, not corruption) and
  reports ``clean`` exactly when the fence survived,
* every ledger/index invariant holds
  (:mod:`repro.analysis.invariants`),
* every *acknowledged* write reads back byte-identical — a torn batch
  rolls back whole, to the previous acknowledged state, and
* snapshots recover with their pinned contents intact.

The sharded harness additionally tears one or two shards' logs while
the rest stay whole (the mixed-fence crash): cross-shard rewrites and
snapshot fan-outs were in flight, so the cluster check asserts the
resolved state is consistent, non-victim shards keep their exact final
values, and every surviving value was acknowledged at some point.

Run ``python -m repro.analysis crash`` (``--smoke`` for the CI leg,
``--sweep`` to tear at every single byte offset).
"""

from __future__ import annotations

import argparse
import copy
import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datared.container import ContainerStore
from ..datared.journal import MetadataJournal, RecoveryImage
from ..errors import JournalCorruptError
from ..systems.config import DurabilityPolicy, SystemConfig
from ..systems.factory import build_engine
from . import invariants

__all__ = [
    "CrashReport",
    "PlainCrashHarness",
    "ShardedCrashHarness",
    "main",
]

#: Every tear class the harness must exercise to pass (a run that never
#: tears mid-CRC has not tested the CRC check).
TEAR_CLASSES = (
    "mid-header",
    "mid-payload",
    "mid-crc",
    "record-boundary",
    "complete",
)


def classify_offset(image: bytes, offset: int) -> str:
    """Which framing region a tear at ``offset`` lands in."""
    if offset == len(image):
        return "complete"
    for _kind, start, end in MetadataJournal.frame_spans(image):
        if not start < offset <= end:
            continue
        if offset == end:
            return "record-boundary"
        if offset <= start + MetadataJournal.HEADER_SIZE:
            return "mid-header"
        if offset > end - MetadataJournal.CRC_SIZE:
            return "mid-crc"
        return "mid-payload"
    return "record-boundary"


def tear_offsets(
    image: bytes, stable: int, *, every_byte: bool = False
) -> List[int]:
    """Tear points inside the append region ``(stable, len(image)]``.

    Only offsets past ``stable`` are legitimate crash states: the prefix
    was already durable before this append, so a tear cannot reach into
    it.  ``every_byte`` sweeps all of them; the default picks one offset
    per framing class of every appended record plus the full length.
    """
    if every_byte:
        return list(range(stable + 1, len(image) + 1))
    offsets: Set[int] = {len(image)}
    for _kind, start, end in MetadataJournal.frame_spans(image):
        if start < stable:
            continue
        header_end = start + MetadataJournal.HEADER_SIZE
        crc_start = end - MetadataJournal.CRC_SIZE
        offsets.add(min(start + 2, len(image)))  # mid-header
        if crc_start > header_end:  # non-empty payload
            offsets.add(header_end + (crc_start - header_end + 1) // 2)
        offsets.add(end - 2)  # mid-crc
        if end < len(image):
            offsets.add(end)  # record boundary short of the fence
    return sorted(offset for offset in offsets if offset > stable)


@dataclass
class CrashPoint:
    """One durable instant: what a crash right here would leave behind."""

    image: bytes
    stable: int
    #: Container store as of this commit, deep-copied *before* the
    #: commit's deferred frees applied — chunk payloads always hit the
    #: containers before the metadata fence, frees only after it.
    containers: ContainerStore
    #: Acknowledged logical state (lba -> chunk payload) once the
    #: enclosing engine call returns; ``None`` until then.
    state: Optional[Dict[int, bytes]] = None
    snaps: Optional[Dict[str, Dict[int, bytes]]] = None


@dataclass
class TearFailure:
    scenario: str
    offset: int
    tear_class: str
    detail: str


@dataclass
class CrashReport:
    """Aggregate outcome of one harness run."""

    mode: str
    captures: int
    tears: int = 0
    classes: Dict[str, int] = field(default_factory=dict)
    failures: List[TearFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and all(
            self.classes.get(name, 0) > 0 for name in TEAR_CLASSES
        )

    def merge(self, other: "CrashReport") -> None:
        self.captures += other.captures
        self.tears += other.tears
        for name, count in other.classes.items():
            self.classes[name] = self.classes.get(name, 0) + count
        self.failures.extend(other.failures)

    def render(self) -> str:
        lines = [
            f"crash[{self.mode}]: {self.tears} tears across "
            f"{self.captures} durable points"
        ]
        for name in TEAR_CLASSES:
            count = self.classes.get(name, 0)
            mark = "ok" if count else "MISSING"
            lines.append(f"  {name:<16} {count:>5} tears  [{mark}]")
        for failure in self.failures[:20]:
            lines.append(
                f"  FAIL {failure.scenario} @{failure.offset} "
                f"({failure.tear_class}): {failure.detail}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... {len(self.failures) - 20} more failures")
        lines.append(
            f"crash[{self.mode}]: "
            + ("OK" if self.ok else f"{len(self.failures)} failure(s)")
        )
        return "\n".join(lines)


def _run_workload(engine, rng: random.Random, ops: int, tracker) -> None:
    """Drive one deterministic mixed workload against ``engine``.

    ``tracker`` is called after every engine call with a description of
    the acknowledged mutation; the harnesses use it to pair journal
    captures with the logical state a client was acknowledged.
    """
    chunk_size = engine.chunker.chunk_size
    step = engine.chunker.blocks_per_chunk
    pool = [rng.randbytes(chunk_size) for _ in range(6)]
    lba_space = 24
    snap_counter = 0
    live_snaps: List[str] = []

    def payload() -> bytes:
        if rng.random() < 0.45:  # duplicates keep the dedup path hot
            return pool[rng.randrange(len(pool))]
        return rng.randbytes(chunk_size)

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.50:
            lba = rng.randrange(lba_space) * step
            data = payload()
            engine.write(lba, data)
            tracker({lba: data})
        elif roll < 0.68:
            batch = {
                rng.randrange(lba_space) * step: payload()
                for _ in range(rng.randrange(2, 5))
            }
            engine.write_many(sorted(batch.items()))
            tracker(batch)
        elif roll < 0.78:
            lba = rng.randrange(lba_space) * step
            engine.trim(lba)
            tracker({lba: None})
        elif roll < 0.86:
            if live_snaps and rng.random() < 0.5:
                name = live_snaps.pop(rng.randrange(len(live_snaps)))
                engine.delete_snapshot(name)
                tracker(snap_delete=name)
            else:
                name = f"snap-{snap_counter}"
                snap_counter += 1
                engine.create_snapshot(name)
                live_snaps.append(name)
                tracker(snap_create=name)
        elif roll < 0.94:
            engine.collect_garbage(0.9)
            tracker({})
        else:
            engine.flush()
            tracker({})
    engine.flush()
    tracker({})


class PlainCrashHarness:
    """Exact-prefix crash testing of one journal-armed engine.

    Every tear must recover to *precisely* the acknowledged state at the
    last surviving fence — same mappings, same bytes, same snapshots.
    """

    def __init__(
        self,
        *,
        seed: int = 0xC4A5,
        checkpoint_every_commits: int = 5,
        num_buckets: int = 4096,
    ) -> None:
        self.config = SystemConfig(
            durability=DurabilityPolicy(
                journal=True,
                checkpoint_every_commits=checkpoint_every_commits,
            ),
        )
        self.num_buckets = num_buckets
        self.seed = seed
        self.engine = build_engine(self.config, num_buckets=num_buckets)
        assert self.engine.journal is not None
        self.engine.journal.on_durable = self._capture
        self.points: List[CrashPoint] = []
        self._unsealed = 0
        self._state: Dict[int, bytes] = {}
        self._snaps: Dict[str, Dict[int, bytes]] = {}

    def _capture(self, image: bytes, stable: int) -> None:
        # Fires inside commit()/write_checkpoint() under the engine
        # lock, before deferred frees touch the containers: this pair is
        # byte-for-byte what a crash at this instant leaves on disk.
        self.points.append(
            CrashPoint(
                image=image,
                stable=stable,
                containers=copy.deepcopy(self.engine.containers),
            )
        )
        self._unsealed += 1

    def _track(self, writes=None, snap_create=None, snap_delete=None):
        if writes:
            for lba, data in writes.items():
                if data is None:
                    self._state.pop(lba, None)
                else:
                    self._state[lba] = data
        if snap_create is not None:
            self._snaps[snap_create] = dict(self._state)
        if snap_delete is not None:
            self._snaps.pop(snap_delete, None)
        # Every capture the call emitted is acknowledged with this
        # state: an op's commit (and its cadence checkpoint) both fence
        # the same logical contents.
        for point in self.points[len(self.points) - self._unsealed :]:
            point.state = dict(self._state)
            point.snaps = {
                name: dict(pins) for name, pins in self._snaps.items()
            }
        self._unsealed = 0

    def run_workload(self, ops: int = 48) -> None:
        _run_workload(
            self.engine, random.Random(self.seed), ops, self._track
        )
        self.engine.close()

    def _expected(
        self, index: int, offset: int
    ) -> Tuple[Dict[int, bytes], Dict[str, Dict[int, bytes]]]:
        point = self.points[index]
        if offset == len(point.image):
            assert point.state is not None and point.snaps is not None
            return point.state, point.snaps
        if index == 0:
            return {}, {}
        previous = self.points[index - 1]
        assert previous.state is not None and previous.snaps is not None
        return previous.state, previous.snaps

    def verify_tear(self, index: int, offset: int) -> str:
        """Crash at ``offset`` into capture ``index``; '' when sound."""
        point = self.points[index]
        state, snaps = self._expected(index, offset)
        try:
            recovered = build_engine(
                self.config,
                num_buckets=self.num_buckets,
                recover_from=RecoveryImage(
                    journal=point.image[:offset],
                    containers=copy.deepcopy(point.containers),
                ),
            )
        except JournalCorruptError as error:
            return f"recovery refused a pure tear: {error}"
        with recovered:
            report = recovered.recovery
            assert report is not None
            want_clean = offset == len(point.image)
            if report.clean != want_clean:
                return (
                    f"clean={report.clean}, expected {want_clean} "
                    f"(durable_bytes={report.durable_bytes})"
                )
            violations = invariants.check_engine(
                recovered, raise_on_violation=False
            )
            if violations:
                return f"invariants: {violations[0]}"
            mapped = {lba for lba, _pbn in recovered.lba_map.items()}
            if mapped != set(state):
                return (
                    f"mapped LBAs {sorted(mapped)} != acknowledged "
                    f"{sorted(state)}"
                )
            for lba, data in state.items():
                if recovered.read(lba, 1).data != data:
                    return f"LBA {lba} is not byte-identical"
            if sorted(recovered.snapshots()) != sorted(snaps):
                return (
                    f"snapshots {recovered.snapshots()} != "
                    f"{sorted(snaps)}"
                )
            for name, pins in snaps.items():
                for lba, data in pins.items():
                    if recovered.read_snapshot(name, lba).data != data:
                        return f"snapshot {name!r} LBA {lba} diverged"
        return ""

    def verify(self, *, every_byte: bool = False) -> CrashReport:
        report = CrashReport(mode="plain", captures=len(self.points))
        for index, point in enumerate(self.points):
            for offset in tear_offsets(
                point.image, point.stable, every_byte=every_byte
            ):
                tear_class = classify_offset(point.image, offset)
                report.tears += 1
                report.classes[tear_class] = (
                    report.classes.get(tear_class, 0) + 1
                )
                detail = self.verify_tear(index, offset)
                if detail:
                    report.failures.append(
                        TearFailure(
                            scenario=f"capture {index}",
                            offset=offset,
                            tear_class=tear_class,
                            detail=detail,
                        )
                    )
        return report


class ShardedCrashHarness:
    """Mixed-fence crash testing of a journal-armed shard cluster.

    Tears one or two shards' last append regions while the others keep
    their whole logs — the state a real crash leaves when per-shard
    fsyncs raced the power cut.  Exact-prefix equality is impossible to
    demand here (a cross-shard rewrite was mid-flight, never
    acknowledged), so the contract is: the recovered cluster passes
    every consistency law, shards that lost nothing keep their exact
    final values, and every surviving value was acknowledged at some
    commit — old or new, never invented.
    """

    def __init__(
        self,
        *,
        shards: int = 3,
        seed: int = 0x51AB,
        checkpoint_every_commits: int = 6,
        num_buckets: int = 2048,
    ) -> None:
        self.config = SystemConfig(
            shards=shards,
            durability=DurabilityPolicy(
                journal=True,
                checkpoint_every_commits=checkpoint_every_commits,
            ),
        )
        self.num_buckets = num_buckets
        self.seed = seed
        self.engine = build_engine(self.config, num_buckets=num_buckets)
        self._last: Dict[int, CrashPoint] = {}
        for index, shard in enumerate(self.engine.shards):
            assert shard.journal is not None
            shard.journal.on_durable = self._shard_hook(index, shard)
        #: lba -> every payload (or None for trim) ever acknowledged.
        self.history: Dict[int, List[Optional[bytes]]] = {}
        self._state: Dict[int, bytes] = {}
        self.snap_pins: Dict[str, Dict[int, bytes]] = {}
        self.created_snaps: Set[str] = set()
        self.final_state: Dict[int, bytes] = {}
        self.final_images: List[bytes] = []
        self.final_containers: List[ContainerStore] = []

    def _shard_hook(self, index: int, shard):
        def hook(image: bytes, stable: int) -> None:
            self._last[index] = CrashPoint(
                image=image,
                stable=stable,
                containers=copy.deepcopy(shard.containers),
            )

        return hook

    def _track(self, writes=None, snap_create=None, snap_delete=None):
        if writes:
            for lba, data in writes.items():
                self.history.setdefault(lba, [None]).append(data)
                if data is None:
                    self._state.pop(lba, None)
                else:
                    self._state[lba] = data
        if snap_create is not None:
            self.created_snaps.add(snap_create)
            self.snap_pins[snap_create] = dict(self._state)
        if snap_delete is not None:
            pass  # pins stay recorded: a torn delete may resurrect it

    def run_workload(self, ops: int = 40) -> None:
        _run_workload(
            self.engine, random.Random(self.seed), ops, self._track
        )
        self.final_state = dict(self._state)
        # At-rest images and stores: the true on-disk state after the
        # last fence, deferred frees included.
        for shard in self.engine.shards:
            assert shard.journal is not None
            self.final_images.append(shard.journal.to_bytes())
            self.final_containers.append(copy.deepcopy(shard.containers))
        self.engine.close()

    def _recover(
        self, torn: Dict[int, int]
    ) -> Tuple[Optional[object], str]:
        """Rebuild the cluster with shard ``i`` torn at ``torn[i]``."""
        images: List[RecoveryImage] = []
        for index in range(self.config.shards):
            if index in torn:
                point = self._last[index]
                images.append(
                    RecoveryImage(
                        journal=point.image[: torn[index]],
                        containers=copy.deepcopy(point.containers),
                    )
                )
            else:
                images.append(
                    RecoveryImage(
                        journal=self.final_images[index],
                        containers=copy.deepcopy(
                            self.final_containers[index]
                        ),
                    )
                )
        try:
            return (
                build_engine(
                    self.config,
                    num_buckets=self.num_buckets,
                    recover_from=images,
                ),
                "",
            )
        except JournalCorruptError as error:
            return None, f"recovery refused a pure tear: {error}"

    def _verify_cluster(self, recovered, victims: Set[int]) -> str:
        violations = invariants.check_sharded_engine(
            recovered, raise_on_violation=False
        )
        if violations:
            return f"invariants: {violations[0]}"
        directory = recovered._lba_shard
        for lba, values in self.history.items():
            owner = directory.get(lba)
            actual = (
                recovered.read(lba, 1).data if owner is not None else None
            )
            if not victims:
                want = self.final_state.get(lba)
                if actual != want:
                    return (
                        f"LBA {lba}: untorn recovery diverged from the "
                        "final acknowledged state"
                    )
                continue
            if actual not in values:
                return (
                    f"LBA {lba}: recovered value was never acknowledged"
                )
            final_owner = self.engine._lba_shard.get(lba)
            if (
                final_owner is not None
                and final_owner not in victims
                and actual != self.final_state.get(lba)
            ):
                return (
                    f"LBA {lba}: owner shard {final_owner} lost nothing "
                    "but the value moved"
                )
        names = set(recovered.snapshots())
        if not names <= self.created_snaps:
            return f"snapshots {sorted(names)} were never created"
        for name in names:
            for lba, data in self.snap_pins[name].items():
                got = recovered.read_snapshot(name, lba).data
                if got != data:
                    return f"snapshot {name!r} LBA {lba} diverged"
        return ""

    def verify(self, *, every_byte: bool = False) -> CrashReport:
        report = CrashReport(
            mode="sharded", captures=len(self._last)
        )

        def run_scenario(
            scenario: str, torn: Dict[int, int], tear_class: str
        ) -> None:
            report.tears += 1
            report.classes[tear_class] = (
                report.classes.get(tear_class, 0) + 1
            )
            recovered, detail = self._recover(torn)
            if recovered is not None:
                with recovered:
                    detail = self._verify_cluster(
                        recovered, set(torn)
                    )
            if detail:
                report.failures.append(
                    TearFailure(
                        scenario=scenario,
                        offset=next(iter(torn.values()), 0),
                        tear_class=tear_class,
                        detail=detail,
                    )
                )

        # Baseline: nobody torn — recovery must be byte-exact.
        run_scenario("no-victim", {}, "complete")

        # Single victims, every tear class of their last append.
        for index, point in sorted(self._last.items()):
            for offset in tear_offsets(
                point.image, point.stable, every_byte=every_byte
            ):
                run_scenario(
                    f"victim shard {index}",
                    {index: offset},
                    classify_offset(point.image, offset),
                )

        # Double victims: two shards lose their tails at once.
        indexes = sorted(self._last)
        for first, second in zip(indexes, indexes[1:]):
            a, b = self._last[first], self._last[second]
            offsets_a = tear_offsets(a.image, a.stable)
            offsets_b = tear_offsets(b.image, b.stable)
            if not offsets_a or not offsets_b:
                continue
            torn = {
                first: offsets_a[len(offsets_a) // 2],
                second: offsets_b[0],
            }
            run_scenario(
                f"victims shards {first}+{second}",
                torn,
                classify_offset(a.image, torn[first]),
            )
        return report


def run(
    *,
    seed: int = 0xF1D8,
    ops: int = 48,
    shards: int = 3,
    every_byte: bool = False,
    rounds: int = 2,
) -> CrashReport:
    """Run the full harness: plain exact-prefix + sharded mixed-fence."""
    total = CrashReport(mode="plain+sharded", captures=0)
    for round_index in range(rounds):
        plain = PlainCrashHarness(seed=seed + round_index)
        plain.run_workload(ops=ops)
        total.merge(plain.verify(every_byte=every_byte))
        sharded = ShardedCrashHarness(
            shards=shards, seed=seed ^ (round_index + 1)
        )
        sharded.run_workload(ops=ops)
        total.merge(sharded.verify(every_byte=every_byte))
    return total


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis crash",
        description="kill-at-random-offset crash/recovery harness",
    )
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xF1D8)
    parser.add_argument(
        "--ops", type=int, default=48, help="workload ops per round"
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument(
        "--rounds", type=int, default=2, help="independent workload rounds"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one short round (the CI leg)",
    )
    parser.add_argument(
        "--sweep",
        action="store_true",
        help="tear at every byte offset instead of one per class",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    report = run(
        seed=args.seed,
        ops=24 if args.smoke else args.ops,
        shards=args.shards,
        every_byte=args.sweep,
        rounds=1 if args.smoke else args.rounds,
    )
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
